"""Setuptools shim.

The environment has no `wheel` package and no network access, so PEP 660
editable installs are unavailable; this shim lets `pip install -e .` fall
back to the legacy `setup.py develop` path. All metadata lives in
setup.cfg / pyproject.toml.
"""

from setuptools import setup

setup()
