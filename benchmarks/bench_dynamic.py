"""CLAIM-S32-DYN — §3.2/§5: update support across the dynamic indexes.

TOL handles insertions and deletions through its total order; U2-hop's
weaker order makes the same maintenance costlier (the "cannot scale"
remark); DBL is insert-only with near-constant label updates; DAGGER
widens intervals monotonically.  The table reports per-update cost next
to the cost of a full rebuild — maintenance must beat rebuilding.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.experiments import dynamic_rows
from repro.bench.tables import render_table
from repro.core.registry import plain_index
from repro.graphs.generators import random_dag
from repro.traversal.online import bfs_reachable


def test_claim_maintenance_beats_rebuild(benchmark, report):
    update_rows = benchmark.pedantic(dynamic_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["index", "insert (ms)", "delete (ms)", "full rebuild (ms)"],
            [
                (
                    r["name"],
                    f"{r['insert_ms']:.2f}",
                    "-" if r["delete_ms"] is None else f"{r['delete_ms']:.2f}",
                    f"{r['rebuild_ms']:.1f}",
                )
                for r in update_rows
            ],
            title="CLAIM-S32-DYN: per-update maintenance vs rebuild, 400-vertex DAG",
        )
    )
    for r in update_rows:
        assert r["insert_ms"] < r["rebuild_ms"], r["name"]


def _insert_stream(index, rng, count):
    g = index.graph
    for _ in range(count):
        for _attempt in range(200):
            u = rng.randrange(g.num_vertices)
            v = rng.randrange(g.num_vertices)
            if u != v and not g.has_edge(u, v) and not bfs_reachable(g, v, u):
                index.insert_edge(u, v)
                break


@pytest.mark.parametrize("name", ["TOL", "DAGGER", "IP"])
def test_insert_maintenance(benchmark, name):
    def run():
        graph = random_dag(300, 900, seed=10)
        index = plain_index(name).build(graph)
        _insert_stream(index, random.Random(11), 20)
        return index

    index = benchmark.pedantic(run, rounds=3, iterations=1)
    assert index.size_in_entries() > 0


def test_tol_delete_maintenance(benchmark):
    def run():
        graph = random_dag(300, 900, seed=12)
        index = plain_index("TOL").build(graph)
        rng = random.Random(13)
        g = index.graph
        for _ in range(10):
            edges = list(g.edges())
            u, v = edges[rng.randrange(len(edges))]
            index.delete_edge(u, v)
        return index

    index = benchmark.pedantic(run, rounds=3, iterations=1)
    assert index.size_in_entries() > 0
