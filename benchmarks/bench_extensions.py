"""EXT-* — the §5 open challenges, implemented and measured.

* EXT-LCRFILTER: "a partial index without false negatives for
  path-constrained reachability queries" — how many negative LCR queries
  the filter kills without traversal, at what cost;
* EXT-PARALLEL: "the parallel computation of indexes" — label size and
  build behaviour of batch-synchronous PLL across batch sizes;
* EXT-QUERYLOG: "practical path constraints have many more types" — how
  much of a log-shaped workload today's index families can serve.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.tables import format_seconds, render_table
from repro.core.base import TriState
from repro.core.oracle import PathReachabilityOracle
from repro.graphs.generators import random_labeled_digraph, scale_free_dag
from repro.labeled.lcr_filter import LCRFilterIndex
from repro.plain.parallel import batched_pruned_labels
from repro.plain.pruned import degree_order
from repro.workloads.querylog import dispatch_statistics, querylog_workload


def test_lcr_filter_kills_negatives(benchmark, report):
    """EXT-LCRFILTER: negative LCR queries die at the filter."""
    graph = random_labeled_digraph(400, 1200, ["a", "b", "c", "d"], seed=90)
    from repro.workloads.queries import alternation_workload

    workload = alternation_workload(graph, 150, seed=91, max_labels=2)
    build_start = time.perf_counter()
    index = LCRFilterIndex.build(graph)
    build_seconds = time.perf_counter() - build_start

    negatives = [q for q in workload if not q.reachable]
    killed = 0
    for q in negatives:
        mask = graph.label_set_mask(
            label for label in "abcd" if label in q.constraint
        )
        if index.lookup_mask(q.source, q.target, mask) is TriState.NO:
            killed += 1
    answers = benchmark.pedantic(
        lambda: [index.query(q.source, q.target, q.constraint) for q in workload],
        rounds=1,
        iterations=1,
    )
    assert answers == [q.reachable for q in workload]
    report(
        render_table(
            ["metric", "value"],
            [
                ("build", format_seconds(build_seconds)),
                ("entries (words)", f"{index.size_in_entries():,}"),
                ("negative queries", len(negatives)),
                ("killed by lookup alone", killed),
                ("kill rate", f"{killed / max(1, len(negatives)):.0%}"),
            ],
            title="EXT-LCRFILTER: no-false-negative partial LCR index (§5 proposal)",
        )
    )
    assert killed / max(1, len(negatives)) > 0.5


def test_batched_pll_batch_sizes(benchmark, report):
    """EXT-PARALLEL: batch size trades synchronisation for redundancy."""
    graph = scale_free_dag(800, edges_per_vertex=3, seed=92)
    order = degree_order(graph)

    def sweep():
        rows = []
        for batch_size in (1, 8, 32, 128):
            start = time.perf_counter()
            labels = batched_pruned_labels(graph, order, batch_size=batch_size)
            rows.append(
                {
                    "batch": batch_size,
                    "build_seconds": time.perf_counter() - start,
                    "entries": labels.size_in_entries(),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        render_table(
            ["batch size", "build", "entries"],
            [
                (r["batch"], format_seconds(r["build_seconds"]), f"{r['entries']:,}")
                for r in rows
            ],
            title="EXT-PARALLEL: batch-synchronous PLL (batch 1 = sequential)",
        )
    )
    sequential_entries = rows[0]["entries"]
    for r in rows[1:]:
        assert r["entries"] >= sequential_entries
        assert r["entries"] <= 2 * sequential_entries  # validation bounds bloat


def test_querylog_coverage(benchmark, report):
    """EXT-QUERYLOG: index coverage of a log-shaped constraint mix."""
    graph = random_labeled_digraph(150, 450, ["a", "b", "c"], seed=93)
    workload = querylog_workload(graph, 300, seed=94)
    stats = dispatch_statistics(workload)
    oracle = PathReachabilityOracle(graph)
    answers = benchmark.pedantic(
        lambda: [
            oracle.reachable(q.source, q.target, q.constraint) for q in workload
        ],
        rounds=1,
        iterations=1,
    )
    assert answers == [q.reachable for q in workload]
    total = len(workload)
    report(
        render_table(
            ["constraint class", "share", "served by"],
            [
                (
                    "alternation",
                    f"{stats['alternation'] / total:.0%}",
                    "LCR indexes (Table 2)",
                ),
                (
                    "concatenation",
                    f"{stats['concatenation'] / total:.0%}",
                    "RLC index",
                ),
                (
                    "other RPQ shapes",
                    f"{stats['traversal_only'] / total:.0%}",
                    "automaton-guided traversal only",
                ),
            ],
            title="EXT-QUERYLOG: §5's coverage gap on a log-shaped workload",
        )
    )
    # the gap the survey highlights must actually show up
    assert stats["traversal_only"] > 0


def test_scarab_backbone_reduction(benchmark, report):
    """EXT-SCARAB (§3.4): the backbone shrinks what the index must cover."""
    from repro.core.registry import plain_index
    from repro.plain.scarab import ScarabBackboneIndex
    from repro.traversal.online import bfs_reachable

    graph = scale_free_dag(600, edges_per_vertex=2, seed=95)

    def build_both():
        direct = plain_index("PLL").build(graph)
        backboned = ScarabBackboneIndex.build(graph, inner=plain_index("PLL"))
        return direct, backboned

    direct, backboned = benchmark.pedantic(build_both, rounds=1, iterations=1)
    # spot-check exactness of the routed queries
    import random as _random

    rng = _random.Random(96)
    for _ in range(300):
        s = rng.randrange(graph.num_vertices)
        t = rng.randrange(graph.num_vertices)
        assert backboned.query(s, t) == bfs_reachable(graph, s, t)
    report(
        render_table(
            ["variant", "vertices indexed", "inner entries"],
            [
                ("PLL direct", graph.num_vertices, f"{direct.size_in_entries():,}"),
                (
                    "PLL on SCARAB backbone",
                    backboned.backbone_size,
                    f"{backboned.inner.size_in_entries():,}",
                ),
            ],
            title="EXT-SCARAB: backbone reduction (§3.4), 600-vertex scale-free DAG",
        )
    )
    assert backboned.backbone_size < graph.num_vertices
    assert backboned.inner.size_in_entries() < direct.size_in_entries()
