"""CLAIM-ADVISOR — the advisor's pick tracks the best static choice.

The survey's bottom line is that no index family dominates across graph
shapes and workloads; the advisor's job is to land on (or near) the
per-shape winner without being told what the graph looks like.  This
benchmark measures that claim on four shape × workload combinations —
a deep chain, a wide-shallow DAG, a dense cyclic graph, and a community
DAG — by racing the advisor's pick against *every* static candidate:

* for each combo, every candidate family is built on the full graph and
  timed over the same workload (p50 per query);
* the advisor runs with only the graph and the workload sample — no
  oracle access to the static sweep — and its pick's p50 is compared to
  the best and worst static p50;
* the pick must stay within ``PICK_FACTOR`` (1.5×) of the best static
  family on every combo, and the advise() call itself is timed so the
  overhead of being adaptive is part of the artifact.

Run as a benchmark (``pytest benchmarks/bench_advisor.py -s``) or
standalone (``python benchmarks/bench_advisor.py [--tiny] [--json
PATH]``); both emit the measurements as ``BENCH_advisor.json``.
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.advisor import advise
from repro.advisor.cost import build_family
from repro.advisor.rules import DEFAULT_CANDIDATES
from repro.bench.jsonout import add_json_argument, emit
from repro.bench.tables import format_seconds, render_table
from repro.graphs.generators import community_dag, gnp_digraph, layered_dag
from repro.workloads.queries import plain_workload

#: The pick must land within this factor of the best static p50.
PICK_FACTOR = 1.5

#: Absolute slack on the pick bound (seconds).  On shapes whose
#: condensation collapses to a handful of vertices every family answers
#: in a few hundred nanoseconds, and the difference between "best" and
#: "second" is timer resolution, not index quality.
PICK_SLACK_SECONDS = 2e-7

WORKLOAD_SIZE = 400


def _combos(scale: int, seed: int) -> list[dict]:
    """Four shape × workload combinations, ~4*scale² vertices each."""
    return [
        {
            "name": "deep_chain",
            "graph": layered_dag(25 * scale, 4, 2, seed=seed + 1),
            "positive_fraction": 0.5,
        },
        {
            "name": "wide_shallow",
            "graph": layered_dag(4, 25 * scale, 8, seed=seed + 2),
            "positive_fraction": 0.1,
        },
        {
            "name": "dense_cyclic",
            "graph": gnp_digraph(100 * scale, 0.02, seed=seed + 3),
            "positive_fraction": 0.5,
        },
        {
            "name": "community_dag",
            "graph": community_dag(8, 12 * scale + 2, seed=seed + 4),
            "positive_fraction": 0.3,
        },
    ]


def _p50(index, workload) -> float:
    """Best-of-3 median per-query latency (warmed; scheduler-noise proof)."""
    for query in workload:  # warm pass: both sides timed on settled state
        index.query(query.source, query.target)
    medians = []
    for _round in range(3):
        latencies = []
        for query in workload:
            start = time.perf_counter_ns()
            index.query(query.source, query.target)
            latencies.append(time.perf_counter_ns() - start)
        medians.append(statistics.median(latencies))
    return min(medians) / 1e9


def measure(scale: int = 4, workload_size: int = WORKLOAD_SIZE, seed: int = 0) -> dict:
    """Race advisor picks against the full static sweep on every combo."""
    rows: list[dict] = []
    for combo in _combos(scale, seed):
        graph = combo["graph"]
        workload = plain_workload(
            graph,
            workload_size,
            positive_fraction=combo["positive_fraction"],
            seed=seed + 9,
        )

        statics: dict[str, dict] = {}
        for family in DEFAULT_CANDIDATES:
            try:
                start = time.perf_counter()
                index = build_family(family, graph)
                build_s = time.perf_counter() - start
            except Exception as exc:  # noqa: BLE001 — a family may not apply
                statics[family] = {"error": f"{type(exc).__name__}: {exc}"}
                continue
            statics[family] = {
                "build_seconds": build_s,
                "p50_seconds": _p50(index, workload),
                "estimated_bytes": index.estimated_bytes(),
            }

        timed = {k: v for k, v in statics.items() if "p50_seconds" in v}
        best = min(timed, key=lambda k: timed[k]["p50_seconds"])
        worst = max(timed, key=lambda k: timed[k]["p50_seconds"])

        start = time.perf_counter()
        advice = advise(graph, workload, probe_pairs=128, seed=seed)
        advise_s = time.perf_counter() - start
        pick = advice.recommended.family
        pick_p50 = (
            timed[pick]["p50_seconds"]
            if pick in timed
            else _p50(advice.recommended.build(graph), workload)
        )

        rows.append(
            {
                "combo": combo["name"],
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "positive_fraction": combo["positive_fraction"],
                "pick": pick,
                "pick_params": advice.recommended.index_params,
                "pick_p50_seconds": pick_p50,
                "best_static": best,
                "best_p50_seconds": timed[best]["p50_seconds"],
                "worst_static": worst,
                "worst_p50_seconds": timed[worst]["p50_seconds"],
                "ratio_to_best": pick_p50 / timed[best]["p50_seconds"],
                "ratio_to_worst": pick_p50 / timed[worst]["p50_seconds"],
                "within_bound": pick_p50
                <= PICK_FACTOR * timed[best]["p50_seconds"] + PICK_SLACK_SECONDS,
                "advise_seconds": advise_s,
                "statics": statics,
            }
        )
    return {
        "pick_factor": PICK_FACTOR,
        "workload_size": workload_size,
        "candidates": list(DEFAULT_CANDIDATES),
        "combos": rows,
    }


def _render(results: dict) -> str:
    rows = [
        (
            row["combo"],
            f"{row['vertices']:,}/{row['edges']:,}",
            f"{row['pick']}",
            format_seconds(row["pick_p50_seconds"]),
            f"{row['ratio_to_best']:.2f}x of {row['best_static']}",
            f"{row['ratio_to_worst']:.2f}x of {row['worst_static']}",
            format_seconds(row["advise_seconds"]),
        )
        for row in results["combos"]
    ]
    return render_table(
        ["combo", "|V|/|E|", "pick", "pick p50", "vs best", "vs worst", "advise()"],
        rows,
        title=(
            f"CLAIM-ADVISOR: pick within {results['pick_factor']}x of the "
            f"best static family ({len(results['candidates'])} candidates)"
        ),
    )


def test_advisor_tracks_best_static(benchmark, report):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(_render(results))
    emit("advisor", results)
    for row in results["combos"]:
        assert row["within_bound"], (
            f"{row['combo']}: advisor picked {row['pick']} at "
            f"{row['ratio_to_best']:.2f}x the best static family "
            f"({row['best_static']}), above the {PICK_FACTOR}x bound"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test parameters (small graphs, no pick-quality assertion)",
    )
    parser.add_argument("--seed", type=int, default=0)
    add_json_argument(parser, "advisor")
    args = parser.parse_args(argv)
    if args.tiny:
        results = measure(scale=1, workload_size=60, seed=args.seed)
    else:
        results = measure(seed=args.seed)
    print(_render(results))
    if not args.tiny:
        failures = [
            row["combo"] for row in results["combos"] if not row["within_bound"]
        ]
        if failures:
            print(f"FAIL: pick above {PICK_FACTOR}x of best on: {', '.join(failures)}")
            return 1
    print(f"wrote {emit('advisor', results, args.json)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
