"""CLAIM-S4-BUILD — §5: "the index construction cost of path-constrained
reachability indexes is high" relative to plain indexes on the same graph.

Build times of plain indexes on the label-stripped projection against the
labeled indexes on the full graph: every labeled build must cost more
than every plain build (the paper reports hours vs seconds at scale; the
ordering is the reproducible shape).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import lcr_build_rows
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import labeled_index, plain_index
from repro.graphs.generators import random_labeled_digraph


def test_claim_labeled_builds_cost_more(benchmark, report):
    rows = benchmark.pedantic(lcr_build_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["index", "build", "entries"],
            [
                (r["name"], format_seconds(r["build_seconds"]), f"{r['entries']:,}")
                for r in sorted(rows, key=lambda r: r["build_seconds"])
            ],
            title="CLAIM-S4-BUILD: plain vs path-constrained build cost, same graph",
        )
    )
    plain_times = [r["build_seconds"] for r in rows if r["name"].startswith("plain/")]
    complete_labeled = [
        r["build_seconds"]
        for r in rows
        if r["name"].startswith("labeled/") and "Landmark" not in r["name"]
    ]
    # §5's claim targets the complete LCR indexes (hours at paper scale);
    # the partial landmark index trades that cost away, so it is reported
    # but exempt from the ordering.
    assert max(plain_times) < min(complete_labeled), (
        "every complete labeled index build should cost more than every "
        "plain build"
    )


@pytest.fixture(scope="module")
def shared_graph():
    return random_labeled_digraph(200, 600, ["a", "b", "c"], seed=22)


def test_plain_pll_build(benchmark, shared_graph):
    benchmark(plain_index("PLL").build, shared_graph.to_plain())


@pytest.mark.parametrize("name", ["P2H+", "Landmark index"])
def test_labeled_build(benchmark, shared_graph, name):
    benchmark(lambda: labeled_index(name).build(shared_graph.copy()))
