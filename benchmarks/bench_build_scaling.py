"""CLAIM-S3-SCALE — §3.1: partial-index "index building time and index
size scale linearly with the input graph size".

Sweeps |V| with constant average degree and checks the shape: doubling
the graph should roughly double build time and size (we allow a generous
factor for interpreter noise, but rule out quadratic growth).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import build_scaling_rows
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import plain_index
from repro.graphs.generators import random_dag


def test_claim_linear_scaling(benchmark, report):
    scaling_rows = benchmark.pedantic(build_scaling_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["index", "|V|", "|E|", "build", "entries", "entries/|V|"],
            [
                (
                    r["name"],
                    r["vertices"],
                    r["edges"],
                    format_seconds(r["build_seconds"]),
                    f"{r['entries']:,}",
                    f"{r['entries'] / r['vertices']:.2f}",
                )
                for r in scaling_rows
            ],
            title="CLAIM-S3-SCALE: partial-index build across graph sizes",
        )
    )
    by_name: dict[str, list] = {}
    for r in scaling_rows:
        by_name.setdefault(r["name"], []).append(r)
    for name, rows in by_name.items():
        rows.sort(key=lambda r: r["vertices"])
        smallest, largest = rows[0], rows[-1]
        growth = largest["vertices"] / smallest["vertices"]
        # size: strictly linear for the exactly-k/filter indexes
        size_growth = largest["entries"] / max(1, smallest["entries"])
        assert size_growth <= 2.5 * growth, (name, size_growth, growth)
        # time: allow constant-factor noise but rule out quadratic blow-up
        time_growth = largest["build_seconds"] / max(1e-9, smallest["build_seconds"])
        assert time_growth <= growth * growth, (name, time_growth)


@pytest.mark.parametrize("n", [250, 1000, 2000])
def test_grail_build_scaling(benchmark, n):
    graph = random_dag(n, 3 * n, seed=6)
    cls = plain_index("GRAIL")
    benchmark(cls.build, graph)


@pytest.mark.parametrize("n", [250, 1000, 2000])
def test_bfl_build_scaling(benchmark, n):
    graph = random_dag(n, 3 * n, seed=6)
    cls = plain_index("BFL")
    benchmark(cls.build, graph)
