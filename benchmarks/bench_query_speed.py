"""CLAIM-S3-SPEED — §3.1/§5: "reachability processing using these indexes
can be an order of magnitude faster than using only graph traversal".

The table compares per-query time of the online baselines (BFS/DFS/BiBFS)
with every fast Table 1 index on a scale-free DAG; the assertion checks
the claim's shape: the best index beats the best traversal by >= 10x.

Standalone (``python benchmarks/bench_query_speed.py [--json PATH]``)
emits the same rows as ``BENCH_query_speed.json``.
"""

from __future__ import annotations

import argparse

import pytest

from repro.bench.experiments import query_speed_rows
from repro.bench.jsonout import add_json_argument, emit
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import plain_index
from repro.graphs.generators import scale_free_dag
from repro.traversal.online import bfs_reachable
from repro.workloads.queries import plain_workload


def _render(speed_rows) -> str:
    return render_table(
        ["method", "kind", "per-query", "entries", "wrong"],
        [
            (
                r["name"],
                r["kind"],
                format_seconds(r["per_query"]),
                f"{r['entries']:,}",
                r["wrong"],
            )
            for r in sorted(speed_rows, key=lambda r: r["per_query"])
        ],
        title="CLAIM-S3-SPEED: per-query time, 2000-vertex layered DAG",
    )


def test_claim_order_of_magnitude(benchmark, report):
    speed_rows = benchmark.pedantic(query_speed_rows, rounds=1, iterations=1)
    report(_render(speed_rows))
    emit("query_speed", speed_rows)
    # every method must be exact
    assert all(r["wrong"] == 0 for r in speed_rows)
    bfs_time = next(r["per_query"] for r in speed_rows if r["name"] == "BFS")
    best_index = min(r["per_query"] for r in speed_rows if r["kind"] == "index")
    assert best_index * 10 <= bfs_time, (
        f"claimed >=10x speedup not reproduced: index {best_index:.2e}s "
        f"vs BFS {bfs_time:.2e}s"
    )


@pytest.fixture(scope="module")
def standard_setup():
    graph = scale_free_dag(1500, edges_per_vertex=3, seed=5)
    workload = plain_workload(graph, 50, positive_fraction=0.3, seed=6)
    return graph, workload


def test_bfs_baseline(benchmark, standard_setup):
    graph, workload = standard_setup
    benchmark(
        lambda: [bfs_reachable(graph, q.source, q.target) for q in workload]
    )


@pytest.mark.parametrize("name", ["PLL", "GRAIL", "BFL", "Preach"])
def test_indexed_queries(benchmark, standard_setup, name):
    graph, workload = standard_setup
    index = plain_index(name).build(graph)
    result = benchmark(
        lambda: [index.query(q.source, q.target) for q in workload]
    )
    assert result == [q.reachable for q in workload]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--small", action="store_true", help="reduced parameters (quick look)"
    )
    add_json_argument(parser, "query_speed")
    args = parser.parse_args(argv)
    rows = (
        query_speed_rows(layers=6, width=10, num_queries=40)
        if args.small
        else query_speed_rows()
    )
    print(_render(rows))
    print(f"wrote {emit('query_speed', rows, args.json)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
