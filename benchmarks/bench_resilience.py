"""CLAIM-RESIL — the resilience layer's overhead and shedding bounds.

Two measurements back the ``repro.resilience`` design:

* **Deadline-check overhead** — the batch-query hot path (bit-parallel
  kernel sweeps) with a generous ambient deadline installed runs within
  5% of the same sweep with no deadline.  The kernels duplicate their
  tight loops so the no-deadline path is byte-identical to the
  pre-resilience code; the guarded path pays one strided clock read per
  wave.
* **Shed-vs-queue latency** — at 2× offered overload, an admission
  controller that sheds keeps the latency of *admitted* requests near
  the unloaded service time, while an unbounded queue inflates every
  request's latency with accumulated wait.

Run under pytest (``pytest benchmarks/bench_resilience.py -s``) or
standalone (``python benchmarks/bench_resilience.py [--tiny] [--json
PATH]``); both emit the measurements as ``BENCH_resilience.json``.
"""

from __future__ import annotations

import argparse
import threading
import time

from repro.bench.jsonout import add_json_argument, emit
from repro.bench.tables import render_table
from repro.errors import ServiceOverloadedError
from repro.graphs.generators import random_dag
from repro.kernels import batch_reachable, csr_of
from repro.resilience import deadline_scope
from repro.service import AdmissionController

NUM_VERTICES = 20_000
NUM_EDGES = 80_000
BATCH_SIZE = 2_000
ROUNDS = 5
GENEROUS_DEADLINE_MS = 600_000.0

SERVICE_TIME_S = 0.005
WORKERS_OFFERED = 8
MAX_CONCURRENT = 4
REQUESTS_PER_WORKER = 12


def _pairs(num_vertices: int, batch_size: int) -> list[tuple[int, int]]:
    return [
        (s % num_vertices, (s * 13 + 7) % num_vertices) for s in range(batch_size)
    ]


def measure_deadline_overhead(
    num_vertices: int = NUM_VERTICES,
    num_edges: int = NUM_EDGES,
    batch_size: int = BATCH_SIZE,
    rounds: int = ROUNDS,
    seed: int = 0,
) -> dict[str, object]:
    """Best-of-N sweep time without vs with an ambient deadline."""
    graph = random_dag(num_vertices, num_edges, seed=seed)
    csr = csr_of(graph)
    pairs = _pairs(num_vertices, batch_size)
    batch_reachable(csr, pairs)  # warm the CSR/bitset caches

    def timed() -> float:
        start = time.perf_counter()
        batch_reachable(csr, pairs)
        return time.perf_counter() - start

    # Interleave bare/guarded rounds so clock drift (turbo, GC, noisy
    # neighbours) hits both paths equally instead of biasing whichever
    # block runs second.
    bare_rounds, guarded_rounds = [], []
    for _ in range(rounds):
        bare_rounds.append(timed())
        with deadline_scope(GENEROUS_DEADLINE_MS):
            guarded_rounds.append(timed())
    bare_s = min(bare_rounds)
    guarded_s = min(guarded_rounds)
    overhead_pct = (guarded_s - bare_s) / bare_s * 100.0
    return {
        "vertices": num_vertices,
        "edges": num_edges,
        "batch_size": batch_size,
        "rounds": rounds,
        "bare_seconds": bare_s,
        "guarded_seconds": guarded_s,
        "overhead_pct": overhead_pct,
    }


def _overload(
    controller: AdmissionController | None,
    service_time_s: float,
    workers: int,
    requests_per_worker: int,
) -> dict[str, object]:
    """Drive 2x offered load; collect per-request latencies and sheds."""
    latencies: list[float] = []
    sheds = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(workers + 1)

    def request() -> None:
        start = time.perf_counter()
        if controller is not None:
            try:
                slot = controller.admit()
            except ServiceOverloadedError:
                with lock:
                    sheds[0] += 1
                return
            with slot:
                time.sleep(service_time_s)
        else:
            time.sleep(service_time_s)
        with lock:
            latencies.append(time.perf_counter() - start)

    def worker() -> None:
        barrier.wait(30.0)
        for _ in range(requests_per_worker):
            request()

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for thread in threads:
        thread.start()
    barrier.wait(30.0)
    for thread in threads:
        thread.join()
    latencies.sort()

    def percentile(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "completed": len(latencies),
        "shed": sheds[0],
        "p50_s": percentile(0.50),
        "p95_s": percentile(0.95),
        "max_s": latencies[-1] if latencies else 0.0,
    }


def measure_shedding(
    service_time_s: float = SERVICE_TIME_S,
    workers: int = WORKERS_OFFERED,
    max_concurrent: int = MAX_CONCURRENT,
    requests_per_worker: int = REQUESTS_PER_WORKER,
) -> dict[str, object]:
    """Shedding vs unbounded queueing at ~2x offered overload."""
    shedding = AdmissionController(
        max_concurrent=max_concurrent, queue_depth=0, queue_timeout_s=0.0
    )
    shed_stats = _overload(shedding, service_time_s, workers, requests_per_worker)
    queueing = AdmissionController(
        max_concurrent=max_concurrent,
        queue_depth=10_000,
        queue_timeout_s=60.0,
    )
    queue_stats = _overload(queueing, service_time_s, workers, requests_per_worker)
    return {
        "service_time_s": service_time_s,
        "offered_workers": workers,
        "max_concurrent": max_concurrent,
        "requests_per_worker": requests_per_worker,
        "shedding": shed_stats,
        "queueing": queue_stats,
    }


def measure(tiny: bool = False, seed: int = 0) -> dict[str, object]:
    if tiny:
        overhead = measure_deadline_overhead(
            num_vertices=2_000, num_edges=8_000, batch_size=300, rounds=3, seed=seed
        )
        shedding = measure_shedding(
            service_time_s=0.002, workers=4, max_concurrent=2, requests_per_worker=6
        )
    else:
        overhead = measure_deadline_overhead(seed=seed)
        shedding = measure_shedding()
    return {"deadline_overhead": overhead, "shed_vs_queue": shedding}


def _render(results: dict[str, object]) -> str:
    overhead = results["deadline_overhead"]
    shed = results["shed_vs_queue"]
    return "\n".join(
        [
            render_table(
                ["path", "best sweep (ms)"],
                [
                    ("no deadline", f"{overhead['bare_seconds'] * 1e3:.2f}"),
                    ("ambient deadline", f"{overhead['guarded_seconds'] * 1e3:.2f}"),
                    ("overhead", f"{overhead['overhead_pct']:+.2f}%"),
                ],
                title=(
                    f"CLAIM-RESIL: deadline checks on the batch hot path "
                    f"(|V|={overhead['vertices']:,}, batch={overhead['batch_size']})"
                ),
            ),
            "",
            render_table(
                ["policy", "completed", "shed", "p50 (ms)", "p95 (ms)", "max (ms)"],
                [
                    (
                        name,
                        f"{stats['completed']}",
                        f"{stats['shed']}",
                        f"{stats['p50_s'] * 1e3:.1f}",
                        f"{stats['p95_s'] * 1e3:.1f}",
                        f"{stats['max_s'] * 1e3:.1f}",
                    )
                    for name, stats in (
                        ("shed at capacity", shed["shedding"]),
                        ("unbounded queue", shed["queueing"]),
                    )
                ],
                title=(
                    f"CLAIM-RESIL: {shed['offered_workers']} workers vs "
                    f"{shed['max_concurrent']} slots "
                    f"({shed['service_time_s'] * 1e3:.0f}ms service time)"
                ),
            ),
        ]
    )


def test_deadline_overhead_under_5pct(benchmark, report):
    results = benchmark.pedantic(
        lambda: measure_deadline_overhead(), rounds=1, iterations=1
    )
    report(_render({"deadline_overhead": results, "shed_vs_queue": measure_shedding()}))
    emit("resilience", {"deadline_overhead": results})
    assert results["overhead_pct"] < 5.0, (
        f"ambient deadline costs {results['overhead_pct']:.2f}% on the batch "
        "hot path, above the claimed 5% bound"
    )


def test_shedding_bounds_admitted_latency(benchmark, report):
    results = benchmark.pedantic(measure_shedding, rounds=1, iterations=1)
    report(_render({"deadline_overhead": measure_deadline_overhead(
        num_vertices=2_000, num_edges=8_000, batch_size=300, rounds=3
    ), "shed_vs_queue": results}))
    shed, queue = results["shedding"], results["queueing"]
    # Shedding must actually shed at 2x overload...
    assert shed["shed"] > 0
    # ...and what it admits completes near the unloaded service time,
    # while the unbounded queue accumulates wait on every request.
    assert shed["p95_s"] <= queue["p95_s"], (
        f"admitted p95 {shed['p95_s'] * 1e3:.1f}ms exceeds queueing p95 "
        f"{queue['p95_s'] * 1e3:.1f}ms"
    )
    assert shed["p95_s"] < results["service_time_s"] * 4.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test parameters (small graph, no threshold assertions)",
    )
    parser.add_argument("--seed", type=int, default=0)
    add_json_argument(parser, "resilience")
    args = parser.parse_args(argv)
    results = measure(tiny=args.tiny, seed=args.seed)
    print(_render(results))
    print(f"wrote {emit('resilience', results, args.json)}")
    if not args.tiny:
        overhead = results["deadline_overhead"]["overhead_pct"]
        if overhead >= 5.0:
            print(f"FAIL: deadline overhead {overhead:.2f}% >= 5%")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
