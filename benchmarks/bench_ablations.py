"""ABL-* — ablations over the design choices DESIGN.md calls out.

* ABL-GRAIL-K: GRAIL's number of random traversals k;
* ABL-FERRARI-K: Ferrari's interval budget;
* ABL-ORDER: the TOL total-order instantiations (§3.2's TFL/DL/PLL
  unification);
* ABL-REDUCTION: §3.4 graph reduction as orthogonal preprocessing.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    ablation_ferrari_rows,
    ablation_grail_rows,
    ablation_order_rows,
    ablation_reduction_rows,
)
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import plain_index
from repro.graphs.generators import scale_free_dag


def test_grail_k_sweep(benchmark, report):
    rows = benchmark.pedantic(ablation_grail_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["k", "build", "entries", "MAYBEs on negatives", "per-query"],
            [
                (
                    r["k"],
                    format_seconds(r["build_seconds"]),
                    f"{r['entries']:,}",
                    r["maybes_on_negative"],
                    format_seconds(r["per_query"]),
                )
                for r in rows
            ],
            title="ABL-GRAIL-K: more random traversals filter more negatives",
        )
    )
    # more labelings can only tighten the filter (monotone intersection)
    maybes = [r["maybes_on_negative"] for r in rows]
    assert maybes == sorted(maybes, reverse=True)
    # entries are exactly k per vertex
    for r in rows:
        assert r["entries"] == r["k"] * 1200


def test_ferrari_budget_sweep(benchmark, report):
    rows = benchmark.pedantic(ablation_ferrari_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["k", "entries", "exact-YES lookups", "MAYBEs"],
            [
                (r["k"], f"{r['entries']:,}", r["exact_yes"], r["maybes"])
                for r in rows
            ],
            title="ABL-FERRARI-K: the interval budget trades size for exactness",
        )
    )
    entries = [r["entries"] for r in rows]
    assert entries == sorted(entries), "larger budgets must not shrink the index"
    assert rows[-1]["maybes"] <= rows[0]["maybes"]


def test_tol_order_instantiations(benchmark, report):
    rows = benchmark.pedantic(ablation_order_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["total order", "build", "entries"],
            [
                (r["order"], format_seconds(r["build_seconds"]), f"{r['entries']:,}")
                for r in sorted(rows, key=lambda r: r["entries"])
            ],
            title="ABL-ORDER: TOL label size under different total orders (§3.2)",
        )
    )
    entries = [r["entries"] for r in rows]
    # §3.2's point: TOL exists because the order matters — the spread
    # between the best and worst instantiation must be substantial.
    assert max(entries) > 1.3 * min(entries), entries
    by_order = {r["order"]: r["entries"] for r in rows}
    # the product heuristic avoids wasting rank on high-in-degree sinks
    assert by_order["degree product (DL)"] < by_order["degree sum (PLL)"]


def test_reduction_preprocessing(benchmark, report):
    rows = benchmark.pedantic(ablation_reduction_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["index", "entries direct", "entries on reduced", "build direct", "build reduced"],
            [
                (
                    r["name"],
                    f"{r['entries_direct']:,}",
                    f"{r['entries_reduced']:,}",
                    format_seconds(r["build_direct"]),
                    format_seconds(r["build_reduced"]),
                )
                for r in rows
            ],
            title=(
                "ABL-REDUCTION: §3.4 reduction "
                f"(removed {rows[0]['edges_removed']} edges, "
                f"merged {rows[0]['vertices_merged']} vertices)"
            ),
        )
    )
    for r in rows:
        assert r["entries_reduced"] <= r["entries_direct"], r["name"]


@pytest.mark.parametrize("k", [1, 3, 8])
def test_grail_build_vs_k(benchmark, k):
    graph = scale_free_dag(1000, edges_per_vertex=3, seed=12)
    benchmark(plain_index("GRAIL").build, graph, k=k)


def test_guided_traversal_direction(benchmark, report):
    """ABL-GUIDED: the §5 fallback — unidirectional vs bidirectional.

    Partial indexes resolve MAYBEs by traversal; the pruning rules work on
    either frontier.  Measured per query over the MAYBE-heavy cases.
    """
    import time

    from repro.core.base import guided_query, guided_query_bidirectional
    from repro.graphs.generators import layered_dag
    from repro.workloads.queries import plain_workload

    graph = layered_dag(25, 40, 3, seed=16)
    workload = plain_workload(graph, 200, positive_fraction=0.5, seed=17)
    index = plain_index("GRAIL").build(graph, k=2)

    def run_both():
        start = time.perf_counter()
        uni = [guided_query(graph, index, q.source, q.target) for q in workload]
        uni_seconds = time.perf_counter() - start
        start = time.perf_counter()
        bi = [
            guided_query_bidirectional(graph, index, q.source, q.target)
            for q in workload
        ]
        bi_seconds = time.perf_counter() - start
        return uni, uni_seconds, bi, bi_seconds

    uni, uni_seconds, bi, bi_seconds = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    truth = [q.reachable for q in workload]
    assert uni == truth
    assert bi == truth
    report(
        render_table(
            ["fallback", "per-query"],
            [
                ("guided BFS", format_seconds(uni_seconds / len(workload))),
                ("guided BiBFS", format_seconds(bi_seconds / len(workload))),
            ],
            title="ABL-GUIDED: MAYBE-resolution strategy (GRAIL k=2, layered DAG)",
        )
    )


def test_grail_exception_lists(benchmark, report):
    """ABL-GRAIL-EXC: the original paper's exception lists — exact lookups
    bought with extra entries and a TC-flavoured construction pass."""
    import time

    from repro.core.base import TriState
    from repro.graphs.generators import random_dag
    from repro.traversal.online import bfs_reachable

    graph = random_dag(400, 1200, seed=18)

    def build_both():
        start = time.perf_counter()
        partial = plain_index("GRAIL").build(graph, k=2, seed=1)
        partial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        exact = plain_index("GRAIL").build(graph, k=2, seed=1, exceptions=True)
        exact_seconds = time.perf_counter() - start
        return partial, partial_seconds, exact, exact_seconds

    partial, partial_seconds, exact, exact_seconds = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    maybes = sum(
        1
        for s in range(0, 400, 7)
        for t in range(0, 400, 7)
        if partial.lookup(s, t) is TriState.MAYBE
    )
    for s in range(0, 400, 7):
        for t in range(0, 400, 7):
            probe = exact.lookup(s, t)
            assert probe is not TriState.MAYBE
            assert (probe is TriState.YES) == bfs_reachable(graph, s, t)
    report(
        render_table(
            ["variant", "build", "entries", "MAYBEs (sampled)"],
            [
                (
                    "GRAIL k=2",
                    format_seconds(partial_seconds),
                    f"{partial.size_in_entries():,}",
                    maybes,
                ),
                (
                    "GRAIL k=2 + exceptions",
                    format_seconds(exact_seconds),
                    f"{exact.size_in_entries():,}",
                    0,
                ),
            ],
            title="ABL-GRAIL-EXC: exception lists trade construction for exactness",
        )
    )
    assert exact.size_in_entries() >= partial.size_in_entries()
