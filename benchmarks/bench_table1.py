"""TAB1: regenerate Table 1 (plain-index taxonomy) from live metadata.

The printed table matches the paper row for row (verified structurally
by tests/test_taxonomy.py); the benchmark times a standard build of each
Table 1 framework's representative on a common DAG.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import taxonomy_table1_rows
from repro.bench.tables import render_table
from repro.core.registry import plain_index
from repro.graphs.generators import random_dag


def test_table1_taxonomy(benchmark, report):
    rows = benchmark(taxonomy_table1_rows)
    assert len(rows) == 25
    report(
        render_table(
            ["Indexing Technique", "Framework", "Index Type", "Input", "Dynamic"],
            rows,
            title="Table 1: A review of plain reachability indexes (regenerated)",
        )
    )


@pytest.mark.parametrize(
    "name",
    ["Tree cover", "GRAIL", "Ferrari", "PLL", "TOL", "IP", "BFL", "Feline", "Preach"],
)
def test_build_representatives(benchmark, name):
    """Per-framework build cost on a common 800-vertex DAG."""
    graph = random_dag(800, 2400, seed=100)
    cls = plain_index(name)
    index = benchmark(cls.build, graph)
    assert index.size_in_entries() > 0
