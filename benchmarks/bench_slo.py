"""CLAIM-S8-SLO — production telemetry must be close to free.

Two claims about :mod:`repro.slo` riding on the serving tier:

* **Steady-state overhead** — a service with an :class:`SLOTracker`
  evaluating burn rates and a :class:`ShadowAuditor` sampling 0.1% of
  served answers stays within 5% of the bare service's closed-loop
  throughput.  Measured A/B on the same Zipf-skewed query log, arms
  interleaved per round, best-of-rounds per arm (the standard guard
  against one noisy round deciding the verdict).
* **Audit correctness** — at ``sample_rate=1.0`` every served answer
  replayed against the BFS oracle matches: ``slo.audit.mismatches``
  stays 0 across the whole log.

Run standalone (``python benchmarks/bench_slo.py [--tiny]``) or under
pytest (``pytest benchmarks/bench_slo.py -s``).  Emits
``BENCH_slo.json`` whose headline carries ``{"value": ..., "max": ...}``
entries so ``tools/bench_compare.py`` enforces the ceilings.
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.bench.jsonout import add_json_argument, emit
from repro.bench.tables import render_table
from repro.graphs.generators import random_dag
from repro.service import ReachabilityService
from repro.slo import SLOTracker, ShadowAuditor

FULL = {"vertices": 2_000, "edges": 7_000, "queries": 60_000, "rounds": 5}
TINY = {"vertices": 300, "edges": 900, "queries": 30_000, "rounds": 5}

OVERHEAD_MAX_PCT = 5.0
AUDIT_RATE = 0.001

OBJECTIVES = ("reach.p99 < 5ms", "error_rate < 0.1%", "unknown_rate < 1%")


def _query_log(graph, num_queries: int, seed: int) -> list[tuple[int, int]]:
    """A Zipf-skewed pair log: repetition (cache hits) plus cold pairs."""
    rng = random.Random(seed)
    n = graph.num_vertices
    pool = [(rng.randrange(n), rng.randrange(n)) for _ in range(200)]
    weights = [1.0 / (rank + 1) ** 1.3 for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=num_queries)


def _run_arm(service: ReachabilityService, log: list[tuple[int, int]]) -> float:
    """One closed-loop pass over the log; returns wall seconds."""
    reach = service.reach
    start = time.perf_counter()
    for source, target in log:
        reach(source, target)
    return time.perf_counter() - start


def overhead_rows(config: dict[str, int], seed: int = 29) -> dict[str, object]:
    """Interleaved A/B: bare service vs tracker + 0.1% shadow auditor."""
    graph = random_dag(config["vertices"], config["edges"], seed=seed)
    log = _query_log(graph, config["queries"], seed=seed + 1)

    bare = ReachabilityService(graph, index="GRAIL", cache_capacity=4096)
    instrumented = ReachabilityService(graph, index="GRAIL", cache_capacity=4096)
    auditor = ShadowAuditor(
        sample_rate=AUDIT_RATE, metrics=instrumented.metrics, seed=seed
    )
    instrumented.attach_auditor(auditor)
    tracker = SLOTracker(
        OBJECTIVES,
        instrumented.metrics,
        breaker=instrumented.breaker,
        fast_window_s=300.0,
        slow_window_s=3600.0,
    )
    # 20x more aggressive cadences than the production defaults (5s
    # evaluate / 250ms drain poll) so both background threads demonstrably
    # run *inside* the timed rounds — the measured overhead is an upper
    # bound on what the defaults cost.
    auditor.start(poll_s=0.1)
    tracker.start(interval_s=0.25)

    # Warm both caches once so the timed rounds measure steady state.
    _run_arm(bare, log[: len(log) // 4])
    _run_arm(instrumented, log[: len(log) // 4])

    # Interleave the arms and judge each round by its own bare/instrumented
    # ratio: slow drift (thermal throttling, co-tenant CPU steal) hits both
    # arms of a round roughly equally, so the median ratio is robust where
    # best-of-rounds across arms is not.
    ratios: list[float] = []
    bare_s: list[float] = []
    instrumented_s: list[float] = []
    try:
        for _ in range(config["rounds"]):
            seconds_b = _run_arm(bare, log)
            seconds_i = _run_arm(instrumented, log)
            bare_s.append(seconds_b)
            instrumented_s.append(seconds_i)
            ratios.append(seconds_i / seconds_b)
    finally:
        tracker.stop()
        auditor.stop()

    median_ratio = sorted(ratios)[len(ratios) // 2]
    overhead_pct = (median_ratio - 1.0) * 100.0
    return {
        "graph": graph,
        "rounds": config["rounds"],
        "queries_per_round": len(log),
        "bare_qps": len(log) / min(bare_s),
        "instrumented_qps": len(log) / min(instrumented_s),
        "round_ratios": [round(r, 4) for r in ratios],
        "overhead_pct": overhead_pct,
        "audit": auditor.status(),
        "slo_evaluations": instrumented.metrics.counter("slo.evaluations").value,
    }


def audit_rows(config: dict[str, int], seed: int = 31) -> dict[str, object]:
    """Every answer audited (rate 1.0) against the BFS oracle: 0 mismatches."""
    graph = random_dag(config["vertices"] // 2, config["edges"] // 2, seed=seed)
    log = _query_log(graph, config["queries"] // 2, seed=seed + 1)
    service = ReachabilityService(graph, index="GRAIL", cache_capacity=4096)
    auditor = ShadowAuditor(
        sample_rate=1.0,
        metrics=service.metrics,
        max_queue=len(log) + 1,
        seed=seed,
    )
    service.attach_auditor(auditor)
    for source, target in log:
        service.reach(source, target)
        if auditor.queue_depth > 64:
            auditor.drain()
    auditor.drain()
    status = auditor.status()
    return {
        "queries": len(log),
        "checked": status["checked"],
        "mismatches": status["mismatches"],
        "dropped": status["dropped"],
    }


def render(overhead: dict[str, object], audit: dict[str, object]) -> str:
    graph = overhead["graph"]
    return "\n".join(
        [
            render_table(
                ["arm", "throughput (q/s)"],
                [
                    ("bare service", f"{overhead['bare_qps']:,.0f}"),
                    ("tracker + 0.1% auditor", f"{overhead['instrumented_qps']:,.0f}"),
                    ("overhead (median ratio)", f"{overhead['overhead_pct']:+.2f}%"),
                    ("slo evaluations", f"{overhead['slo_evaluations']}"),
                ],
                title=(
                    f"CLAIM-S8-SLO: |V|={graph.num_vertices:,} "
                    f"|E|={graph.num_edges:,} DAG, "
                    f"{overhead['queries_per_round']:,} queries x "
                    f"{overhead['rounds']} rounds, best-of-rounds"
                ),
            ),
            "",
            render_table(
                ["metric", "value"],
                [
                    ("answers audited", f"{audit['checked']:,}"),
                    ("mismatches", f"{audit['mismatches']}"),
                    ("dropped (queue full)", f"{audit['dropped']}"),
                ],
                title="shadow audit at sample_rate=1.0 (BFS oracle)",
            ),
        ]
    )


def headline(overhead: dict[str, object], audit: dict[str, object]) -> dict[str, object]:
    return {
        "slo_overhead_pct": {
            "value": round(float(overhead["overhead_pct"]), 3),
            "max": OVERHEAD_MAX_PCT,
        },
        "audit_mismatches": {"value": int(audit["mismatches"]), "max": 0},
        # Raw throughput is machine-dependent, so the keys deliberately
        # carry no judged suffix: bench_compare reports them without
        # gating.  The portable contracts are the two ceilings above.
        "throughput_bare": float(overhead["bare_qps"]),
        "throughput_instrumented": float(overhead["instrumented_qps"]),
    }


def test_slo_overhead_and_audit(benchmark, report):
    config = dict(TINY, queries=10_000, rounds=2)
    overhead = benchmark.pedantic(
        lambda: overhead_rows(config), rounds=1, iterations=1
    )
    audit = audit_rows(config)
    report(render(overhead, audit))
    assert audit["mismatches"] == 0
    assert overhead["overhead_pct"] <= OVERHEAD_MAX_PCT, (
        f"telemetry overhead {overhead['overhead_pct']:.2f}% "
        f"> {OVERHEAD_MAX_PCT}%"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="CI-sized run (smaller graph and log)"
    )
    add_json_argument(parser, "slo")
    args = parser.parse_args(argv)
    config = TINY if args.tiny else FULL

    overhead = overhead_rows(config)
    audit = audit_rows(config)
    print(render(overhead, audit))

    head = headline(overhead, audit)
    results = {
        "headline": head,
        "overhead": {
            key: value for key, value in overhead.items() if key != "graph"
        },
        "audit": audit,
        "config": dict(config),
    }
    path = emit("slo", results, args.json)
    print(f"\nwrote {path}")

    failures = []
    if audit["mismatches"]:
        failures.append(f"{audit['mismatches']} audit mismatch(es)")
    if overhead["overhead_pct"] > OVERHEAD_MAX_PCT:
        failures.append(
            f"overhead {overhead['overhead_pct']:.2f}% > {OVERHEAD_MAX_PCT}%"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
