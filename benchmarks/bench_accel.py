"""CLAIM-PERF-ACCEL — packed numpy kernels break the pure-Python ceiling.

Two halves of the acceleration-layer claim, measured on uniform random
DAGs and a community DAG:

* **Batch sweep race** — ``batch_reachable`` over the same CSR snapshot
  with the backend pinned to ``python`` (authoritative big-int kernels)
  and to ``numpy`` (packed ``uint64`` level-synchronous sweep).  The
  steady-state numpy sweep (level schedule already built, the state a
  long-lived service reaches after one batch) must be **≥3× faster** at
  10⁵ vertices and stay ahead at 10⁶.
* **Shard transport race** — ``ShardedIndex.build`` with a process pool
  at k ∈ {1, 2, 4, 8}, shipping shard graphs to workers as
  shared-memory snapshot handles (accel on) vs pickled subgraphs
  (accel off).  The handle transport must ship **fewer bytes per
  worker**; wall-clock is recorded alongside the machine's core count
  so multi-core hosts can read real scaling off the same artifact.

Run as a benchmark (``pytest benchmarks/bench_accel.py -s``) or
standalone (``python benchmarks/bench_accel.py [--tiny] [--json PATH]``);
both emit the measurements as ``BENCH_accel.json``.
"""

from __future__ import annotations

import argparse
import os
import random
import statistics
import time

from repro import accel
from repro.bench.jsonout import add_json_argument, emit
from repro.bench.tables import format_seconds, render_table
from repro.graphs.generators import community_dag, random_dag
from repro.kernels import batch_reachable, csr_of
from repro.shard import ShardedIndex

#: (vertices, edges) scales for the batch sweep race.
SWEEP_SCALES = ((100_000, 400_000), (1_000_000, 2_000_000))
BATCH_PAIRS = 2_000
DISTINCT_SOURCES = 256
WARM_ROUNDS = 3
MIN_SWEEP_SPEEDUP = 3.0

SHARD_COUNTS = (1, 2, 4, 8)
SHARD_COMMUNITIES = 8
SHARD_COMMUNITY_SIZE = 400
SHARD_FAMILY = "PLL"


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def _measure_sweep(
    vertices: int, edges: int, batch_pairs: int, distinct_sources: int, seed: int
) -> dict:
    """One scale of the batch sweep race, backend pinned per leg."""
    graph = random_dag(vertices, edges, seed=seed)
    csr = csr_of(graph)
    rng = random.Random(seed + 1)
    sources = [rng.randrange(vertices) for _ in range(distinct_sources)]
    pairs = [
        (rng.choice(sources), rng.randrange(vertices)) for _ in range(batch_pairs)
    ]
    try:
        accel.set_backend("numpy")
        expected, numpy_cold = _timed(lambda: batch_reachable(csr, pairs))
        warm_runs = []
        for _ in range(WARM_ROUNDS):
            answers, elapsed = _timed(lambda: batch_reachable(csr, pairs))
            assert answers == expected
            warm_runs.append(elapsed)
        numpy_warm = statistics.median(warm_runs)
        accel.set_backend("python")
        python_answers, python_s = _timed(lambda: batch_reachable(csr, pairs))
        assert python_answers == expected  # differential check rides along
    finally:
        accel.set_backend("auto")
    return {
        "vertices": vertices,
        "edges": edges,
        "batch_pairs": batch_pairs,
        "distinct_sources": distinct_sources,
        "python_seconds": python_s,
        "numpy_cold_seconds": numpy_cold,
        "numpy_warm_seconds": numpy_warm,
        "speedup_cold": python_s / numpy_cold,
        "speedup_warm": python_s / numpy_warm,
    }


def _measure_shards(
    shard_counts: tuple[int, ...],
    communities: int,
    community_size: int,
    seed: int,
) -> list[dict]:
    """The transport race: shm handles vs pickled subgraphs, per k."""
    graph = community_dag(
        communities,
        community_size,
        seed=seed,
        intra_edge_prob=0.02,
        inter_edge_prob=0.0005,
    )
    rows: list[dict] = []
    for k in shard_counts:
        row: dict = {"num_shards": k}
        for leg, backend in (("shm", "auto"), ("pickle", "python")):
            try:
                accel.set_backend(backend)
                index, wall = _timed(
                    lambda k=k: ShardedIndex.build(
                        graph,
                        family=SHARD_FAMILY,
                        num_shards=k,
                        executor="process",
                        workers=k,
                    )
                )
            finally:
                accel.set_backend("auto")
            report = index.shard_build_report
            row[leg] = {
                "wall_seconds": wall,
                "transport": report.transport,
                "backend": report.backend,
                "bytes_shipped": sum(report.bytes_shipped_per_worker),
                "bytes_per_worker": list(report.bytes_shipped_per_worker),
            }
        rows.append(row)
    return rows


def measure(
    sweep_scales: tuple[tuple[int, int], ...] = SWEEP_SCALES,
    batch_pairs: int = BATCH_PAIRS,
    distinct_sources: int = DISTINCT_SOURCES,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    communities: int = SHARD_COMMUNITIES,
    community_size: int = SHARD_COMMUNITY_SIZE,
    seed: int = 0,
) -> dict:
    """Both measurements as one JSON-serialisable dict."""
    sweeps = [
        _measure_sweep(vertices, edges, batch_pairs, distinct_sources, seed)
        for vertices, edges in sweep_scales
    ]
    shards = _measure_shards(shard_counts, communities, community_size, seed)
    return {
        "accel": accel.describe(),
        "cpu_count": os.cpu_count(),
        "sweeps": sweeps,
        "shards": shards,
    }


def _render(results: dict) -> str:
    rows = []
    for sweep in results["sweeps"]:
        rows.append(
            (
                f"sweep |V|={sweep['vertices']:,}",
                format_seconds(sweep["python_seconds"]),
                format_seconds(sweep["numpy_warm_seconds"]),
                f"{sweep['speedup_warm']:.1f}x",
            )
        )
    for row in results["shards"]:
        shm, pickle_leg = row["shm"], row["pickle"]
        saved = (
            f"{pickle_leg['bytes_shipped']:,}B -> {shm['bytes_shipped']:,}B"
            if pickle_leg["bytes_shipped"] or shm["bytes_shipped"]
            else "inline"
        )
        rows.append(
            (
                f"shard build k={row['num_shards']}",
                format_seconds(pickle_leg["wall_seconds"]),
                format_seconds(shm["wall_seconds"]),
                saved,
            )
        )
    return render_table(
        ["configuration", "python / pickle", "numpy / shm", "speedup / shipped"],
        rows,
        title=(
            f"CLAIM-PERF-ACCEL: backend={results['accel']['backend']}, "
            f"{results['cpu_count']} cores"
        ),
    )


def _assert_claims(results: dict) -> None:
    for sweep in results["sweeps"]:
        assert sweep["speedup_warm"] >= MIN_SWEEP_SPEEDUP, (
            f"numpy sweep at |V|={sweep['vertices']:,} is only "
            f"{sweep['speedup_warm']:.2f}x the python sweep, below the "
            f"claimed {MIN_SWEEP_SPEEDUP:.0f}x"
        )
    for row in results["shards"]:
        if row["num_shards"] < 2:
            continue  # single-shard builds run inline; nothing is shipped
        shm, pickle_leg = row["shm"], row["pickle"]
        if shm["transport"] != "shm" or pickle_leg["transport"] != "pickle":
            continue  # no process pool in this environment
        assert shm["bytes_shipped"] < pickle_leg["bytes_shipped"], (
            f"shm transport at k={row['num_shards']} shipped "
            f"{shm['bytes_shipped']:,} bytes, not below the pickled "
            f"{pickle_leg['bytes_shipped']:,}"
        )


def test_accel_speedups(benchmark, report):
    if not accel.available():  # pragma: no cover - numpy baked into CI
        import pytest

        pytest.skip("numpy not installed")
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(_render(results))
    emit("accel", results)
    _assert_claims(results)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test parameters (small graphs, no speedup assertions)",
    )
    parser.add_argument("--seed", type=int, default=0)
    add_json_argument(parser, "accel")
    args = parser.parse_args(argv)
    if not accel.available():
        print("numpy not installed; nothing to accelerate")
        return 1
    if args.tiny:
        results = measure(
            sweep_scales=((2_000, 8_000),),
            batch_pairs=200,
            distinct_sources=64,
            shard_counts=(1, 2),
            communities=4,
            community_size=50,
            seed=args.seed,
        )
    else:
        results = measure(seed=args.seed)
    print(_render(results))
    print(f"wrote {emit('accel', results, args.json)}")
    if not args.tiny:
        _assert_claims(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
