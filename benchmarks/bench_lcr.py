"""CLAIM-S4-LCR — §4.1: LCR query processing across the index families.

Guided BFS (the §2.3 online strategy) against the landmark partial index,
the complete tree-based indexes (Jin, Chen), the GTC family (Zou) and the
2-hop family (P2H+), all answering the same alternation workload exactly.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import lcr_rows
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import labeled_index
from repro.graphs.generators import random_labeled_digraph
from repro.traversal.rpq import rpq_reachable
from repro.workloads.queries import alternation_workload


def test_claim_indexes_answer_lcr_faster_than_bfs(benchmark, report):
    rows = benchmark.pedantic(lcr_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["method", "per-query", "build", "entries", "wrong"],
            [
                (
                    r["name"],
                    format_seconds(r["per_query"]),
                    format_seconds(r.get("build_seconds", 0.0))
                    if "build_seconds" in r
                    else "-",
                    f"{r.get('entries', 0):,}" if "entries" in r else "-",
                    r["wrong"],
                )
                for r in sorted(rows, key=lambda r: r["per_query"])
            ],
            title="CLAIM-S4-LCR: alternation queries, 300-vertex labeled scale-free",
        )
    )
    assert all(r["wrong"] == 0 for r in rows)
    bfs = next(r for r in rows if r["name"] == "guided BFS")
    p2h = next(r for r in rows if r["name"] == "P2H+")
    assert p2h["per_query"] < bfs["per_query"], "P2H+ should beat online search"


@pytest.fixture(scope="module")
def workload_setup():
    graph = random_labeled_digraph(250, 750, ["a", "b", "c"], seed=20)
    workload = alternation_workload(graph, 40, seed=21)
    return graph, workload


def test_guided_bfs(benchmark, workload_setup):
    graph, workload = workload_setup
    benchmark(
        lambda: [
            rpq_reachable(graph, q.source, q.target, q.constraint) for q in workload
        ]
    )


@pytest.mark.parametrize("name", ["P2H+", "Landmark index"])
def test_lcr_index_queries(benchmark, workload_setup, name):
    graph, workload = workload_setup
    index = labeled_index(name).build(graph.copy())
    result = benchmark(
        lambda: [index.query(q.source, q.target, q.constraint) for q in workload]
    )
    assert result == [q.reachable for q in workload]
