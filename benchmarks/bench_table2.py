"""TAB2: regenerate Table 2 (path-constrained taxonomy) from live metadata."""

from __future__ import annotations

import pytest

from repro.bench.experiments import taxonomy_table2_rows
from repro.bench.tables import render_table
from repro.core.registry import labeled_index
from repro.graphs.generators import random_labeled_digraph


def test_table2_taxonomy(benchmark, report):
    rows = benchmark(taxonomy_table2_rows)
    assert len(rows) == 8
    report(
        render_table(
            ["Indexing Technique", "Framework", "Path Constraint", "Index type", "Input", "Dynamic"],
            rows,
            title="Table 2: A review of path-constrained reachability indexes (regenerated)",
        )
    )


@pytest.mark.parametrize(
    "name", ["P2H+", "Landmark index", "Jin et al.", "Chen et al.", "Zou et al.", "RLC"]
)
def test_build_representatives(benchmark, name):
    """Build cost of each labeled index on a common 120-vertex graph."""
    graph = random_labeled_digraph(120, 360, ["a", "b", "c"], seed=101)
    cls = labeled_index(name)
    index = benchmark(cls.build, graph.copy())
    assert index.size_in_entries() > 0
