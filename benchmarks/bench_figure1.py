"""FIG1a / FIG1b: the running example of Figure 1, timed.

Regenerates the paper's worked example: plain reachability on Figure
1(a), the alternation and concatenation queries on Figure 1(b), and
benchmarks the representative query of each.
"""

from __future__ import annotations

import pytest

from repro.core.condensed import CondensedIndex
from repro.core.registry import labeled_index, plain_index
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable
from repro.workloads.datasets import figure1a, figure1b, vertex_id

A, G, L, B, M = (vertex_id(x) for x in "AGLBM")


@pytest.fixture(scope="module")
def plain_graph():
    return figure1a()


@pytest.fixture(scope="module")
def labeled_graph():
    return figure1b()


def test_fig1a_qr_a_g(benchmark, plain_graph, report):
    """§2.1: Qr(A, G) = true via (A, D, H, G)."""
    index = CondensedIndex.build(plain_graph, inner=plain_index("Tree cover"))
    answer = benchmark(index.query, A, G)
    assert answer is True
    assert bfs_reachable(plain_graph, A, G)
    report("FIG1a: Qr(A, G) = true  (tree-cover index lookup)")


def test_fig1b_alternation_query(benchmark, labeled_graph, report):
    """§2.2: Qr(A, G, (friendOf ∪ follows)*) = false."""
    index = labeled_index("P2H+").build(labeled_graph)
    constraint = "(friendOf | follows)*"
    answer = benchmark(index.query, A, G, constraint)
    assert answer is False
    assert not rpq_reachable(labeled_graph, A, G, constraint)
    report(f"FIG1b: Qr(A, G, {constraint}) = false  (P2H+ lookup)")


def test_fig1b_concatenation_query(benchmark, labeled_graph, report):
    """§4.2: Qr(L, B, (worksFor · friendOf)*) = true."""
    index = labeled_index("RLC").build(labeled_graph, max_period=2)
    constraint = "(worksFor . friendOf)*"
    answer = benchmark(index.query, L, B, constraint)
    assert answer is True
    report(f"FIG1b: Qr(L, B, {constraint}) = true  (RLC lookup)")


def test_fig1b_spls_examples(benchmark, labeled_graph, report):
    """§4.1: SPLS(L→M) = {worksFor}; SPLS(A→M) = {follows, worksFor}."""
    from repro.labeled.gtc import GTCIndex

    index = GTCIndex.build(labeled_graph)
    works_for = 1 << labeled_graph.label_id("worksFor")
    follows = 1 << labeled_graph.label_id("follows")
    assert index.spls(L, M) == [works_for]
    assert index.spls(A, M) == [follows | works_for]
    benchmark(index.spls, A, M)
    report(
        "FIG1b: SPLS(L, M) = {worksFor}; "
        "SPLS(A, M) = {follows, worksFor} (GTC lookups)"
    )
