"""CLAIM-PERF-SHARD — partitioned builds beat monolithic on community DAGs.

Two halves of the §6 scaling claim, measured on an 8-community DAG whose
communities are dense relative to the inter-community cut:

* **Build race** — ``ShardedIndex.build`` partitions the graph, builds a
  PLL index per shard through the parallel executor, and lifts the cut
  into a boundary summary index.  Because PLL's build cost is superlinear
  in the shard size, ``k`` shards of ``n/k`` vertices are cheaper than
  one ``n``-vertex build: sharded wall-time must beat the monolithic
  build at ``k >= 4``.
* **Query race** — cross-shard queries pay the out-border → boundary
  index → in-border composition instead of one label probe.  With warm
  border caches on a Zipf-skewed workload, the cross-shard p50 must stay
  within 5× of the monolithic p50.

Run as a benchmark (``pytest benchmarks/bench_shard.py -s``) or
standalone (``python benchmarks/bench_shard.py [--tiny] [--json PATH]``);
both emit the measurements as ``BENCH_shard.json``.
"""

from __future__ import annotations

import argparse
import random
import statistics
import time

from repro.bench.jsonout import add_json_argument, emit
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import plain_index
from repro.graphs.generators import community_dag
from repro.shard import ShardedIndex

NUM_COMMUNITIES = 8
COMMUNITY_SIZE = 1_000
INTRA_EDGE_PROB = 0.025
INTER_EDGE_PROB = 0.00001
FAMILY = "PLL"
SHARD_COUNTS = (2, 4, 8)
QUERY_SHARDS = 8
DISTINCT_PAIRS = 300
WORKLOAD_SIZE = 2_000


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def measure(
    num_communities: int = NUM_COMMUNITIES,
    community_size: int = COMMUNITY_SIZE,
    intra_edge_prob: float = INTRA_EDGE_PROB,
    inter_edge_prob: float = INTER_EDGE_PROB,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    query_shards: int = QUERY_SHARDS,
    distinct_pairs: int = DISTINCT_PAIRS,
    workload_size: int = WORKLOAD_SIZE,
    seed: int = 0,
) -> dict:
    """Both measurements as one JSON-serialisable dict."""
    graph = community_dag(
        num_communities,
        community_size,
        seed=seed,
        intra_edge_prob=intra_edge_prob,
        inter_edge_prob=inter_edge_prob,
    )

    # -- build race: monolithic family build vs parallel sharded builds --
    monolithic, monolithic_s = _timed(lambda: plain_index(FAMILY).build(graph))
    builds: list[dict] = []
    sharded_by_k: dict[int, ShardedIndex] = {}
    for k in shard_counts:
        index, sharded_s = _timed(
            lambda k=k: ShardedIndex.build(
                graph, family=FAMILY, num_shards=k, executor="thread"
            )
        )
        sharded_by_k[k] = index
        shard_report = index.shard_build_report
        builds.append(
            {
                "num_shards": k,
                "sharded_seconds": sharded_s,
                "speedup": monolithic_s / sharded_s,
                "partition_seconds": shard_report.partition_seconds,
                "shard_build_seconds": shard_report.shard_build_seconds,
                "boundary_seconds": shard_report.boundary_seconds,
                "cut_edges": shard_report.cut_edges,
                "boundary_vertices": shard_report.boundary_vertices,
            }
        )

    query = _measure_queries(
        graph,
        monolithic,
        sharded_by_k[query_shards]
        if query_shards in sharded_by_k
        else sharded_by_k[max(sharded_by_k)],
        distinct_pairs,
        workload_size,
        seed,
    )
    return {
        "graph": {"vertices": graph.num_vertices, "edges": graph.num_edges},
        "family": FAMILY,
        "monolithic_seconds": monolithic_s,
        "builds": builds,
        "query": query,
    }


def _measure_queries(
    graph, monolithic, sharded, distinct_pairs: int, workload_size: int, seed: int
) -> dict:
    """Per-query p50: monolithic label probe vs cross-shard composition.

    The workload is Zipf-skewed over cross-shard pairs so the sharded
    side exercises both fresh compositions and the border/pair caches —
    the steady state a long-lived service sees.  Both sides are warmed
    on the distinct pairs first so neither measures cold-cache noise.
    """
    rng = random.Random(seed + 1)
    shard_of = sharded.partition.shard_of
    n = graph.num_vertices
    distinct: list[tuple[int, int]] = []
    attempts = 0
    while len(distinct) < distinct_pairs and attempts < 100 * distinct_pairs:
        attempts += 1
        s, t = rng.randrange(n), rng.randrange(n)
        if shard_of[s] != shard_of[t]:
            distinct.append((s, t))
    weights = [1.0 / (rank + 1) for rank in range(len(distinct))]
    workload = rng.choices(distinct, weights=weights, k=workload_size)

    for s, t in distinct:  # warm caches on both sides
        assert monolithic.query(s, t) == sharded.query(s, t), (s, t)

    def p50(index) -> float:
        latencies = []
        for s, t in workload:
            start = time.perf_counter_ns()
            index.query(s, t)
            latencies.append(time.perf_counter_ns() - start)
        return statistics.median(latencies) / 1e9

    monolithic_p50 = p50(monolithic)
    sharded_p50 = p50(sharded)
    return {
        "num_shards": sharded.partition.num_shards,
        "distinct_pairs": len(distinct),
        "workload_size": workload_size,
        "monolithic_p50_seconds": monolithic_p50,
        "cross_shard_p50_seconds": sharded_p50,
        "slowdown": sharded_p50 / monolithic_p50,
    }


def _render(results: dict) -> str:
    rows = [
        (
            f"sharded k={row['num_shards']}",
            format_seconds(row["sharded_seconds"]),
            f"{row['speedup']:.2f}x",
            str(row["cut_edges"]),
        )
        for row in results["builds"]
    ]
    rows.insert(
        0,
        (
            f"monolithic {results['family']}",
            format_seconds(results["monolithic_seconds"]),
            "1.00x",
            "-",
        ),
    )
    query = results["query"]
    rows.append(
        (
            f"query p50 (k={query['num_shards']})",
            format_seconds(query["cross_shard_p50_seconds"]),
            f"{query['slowdown']:.2f}x of mono p50",
            "-",
        )
    )
    graph = results["graph"]
    return render_table(
        ["configuration", "wall-time", "vs monolithic", "cut edges"],
        rows,
        title=(
            f"CLAIM-PERF-SHARD: |V|={graph['vertices']:,} "
            f"|E|={graph['edges']:,}, family={results['family']}"
        ),
    )


def test_shard_scaling(benchmark, report):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(_render(results))
    emit("shard", results)
    for row in results["builds"]:
        if row["num_shards"] >= 4:
            assert row["sharded_seconds"] < results["monolithic_seconds"], (
                f"sharded build at k={row['num_shards']} "
                f"({row['sharded_seconds']:.2f}s) did not beat the "
                f"monolithic build ({results['monolithic_seconds']:.2f}s)"
            )
    assert results["query"]["slowdown"] <= 5.0, (
        f"cross-shard p50 is {results['query']['slowdown']:.2f}x the "
        "monolithic p50, above the claimed 5x bound"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test parameters (small graph, no speedup assertions)",
    )
    parser.add_argument("--seed", type=int, default=0)
    add_json_argument(parser, "shard")
    args = parser.parse_args(argv)
    if args.tiny:
        results = measure(
            num_communities=4,
            community_size=40,
            intra_edge_prob=0.1,
            inter_edge_prob=0.01,
            shard_counts=(2, 4),
            query_shards=4,
            distinct_pairs=40,
            workload_size=200,
            seed=args.seed,
        )
    else:
        results = measure(seed=args.seed)
    print(_render(results))
    print(f"wrote {emit('shard', results, args.json)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
