"""CLAIM-S10-WAL — durability must not price out the write path.

A/B cost of the write-ahead log on :meth:`ReachabilityService.apply_updates`:
the same seeded update stream is applied through four arms — no WAL at
all, and a WAL attached under each fsync policy (``off``, ``batch``,
``always``).  Arms are interleaved per round and each round is judged by
its own ratio against the no-WAL baseline, so slow machine drift hits
every arm of a round equally.  The portable contract is the ``batch``
policy (the serving default): its median overhead must stay under 10%.
``always`` is reported but not gated — raw fsync latency is a property
of the disk, not of this code.

Run standalone (``python benchmarks/bench_wal.py [--tiny]``) or under
pytest (``pytest benchmarks/bench_wal.py -s``).  Emits
``BENCH_wal.json`` whose headline carries a ``{"value": ..., "max": ...}``
entry so ``tools/bench_compare.py`` enforces the ceiling.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.bench.jsonout import add_json_argument, emit
from repro.bench.tables import render_table
from repro.graphs.generators import random_dag
from repro.service import ReachabilityService
from repro.wal import WriteAheadLog
from repro.workloads.updates import update_stream

FULL = {"vertices": 1_500, "edges": 4_500, "ops": 400, "batch": 4, "rounds": 5}
# TINY keeps a mid-sized graph on purpose: on very small graphs the
# per-batch base cost shrinks to the point where the constant
# per-append cost dominates the ratio and the gate measures noise.
TINY = {"vertices": 1_000, "edges": 3_000, "ops": 180, "batch": 6, "rounds": 5}

BATCH_OVERHEAD_MAX_PCT = 10.0

# Arm name -> fsync policy (None = no WAL attached at all).
ARMS: list[tuple[str, str | None]] = [
    ("baseline", None),
    ("off", "off"),
    ("batch", "batch"),
    ("always", "always"),
]


def _batches(graph, config: dict[str, int], seed: int) -> list[list]:
    """One seeded op stream, pre-split into apply_updates batches.

    ``keep_acyclic`` keeps every insert legal on the DAG-input DAGGER
    index, so the write path stays on the cheap patch branch and the
    measured difference is the log, not rebuild noise.
    """
    ops = update_stream(
        graph,
        num_ops=config["ops"],
        seed=seed,
        delete_fraction=0.3,
        keep_acyclic=True,
    )
    size = config["batch"]
    return [ops[i : i + size] for i in range(0, len(ops), size)]


def _run_arm(graph, batches: list[list], fsync: str | None) -> float:
    """Apply the full batch stream through one arm; returns wall seconds.

    Each run gets a fresh service over a fresh graph copy (epochs and
    edge state advance as batches apply) and, when a WAL is requested, a
    fresh log directory — recovery replay is not part of this claim.
    """
    service = ReachabilityService(
        graph.copy(), index="DAGGER", patch_audit_pairs=0
    )
    if fsync is None:
        start = time.perf_counter()
        for batch in batches:
            service.apply_updates(batch)
        return time.perf_counter() - start
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as wal_dir:
        wal = WriteAheadLog(wal_dir, fsync=fsync)
        wal.recover()
        service.attach_wal(wal)
        try:
            start = time.perf_counter()
            for batch in batches:
                service.apply_updates(batch)
            return time.perf_counter() - start
        finally:
            service.attach_wal(None)
            wal.close()


def wal_rows(config: dict[str, int], seed: int = 47) -> dict[str, object]:
    """Interleaved A/B/C/D over the same stream; median per-round ratios."""
    graph = random_dag(config["vertices"], config["edges"], seed=seed)
    batches = _batches(graph, config, seed=seed + 1)

    # One untimed warmup pass per arm (page cache, allocator, imports).
    for _, fsync in ARMS:
        _run_arm(graph, batches[: max(1, len(batches) // 4)], fsync)

    seconds: dict[str, list[float]] = {name: [] for name, _ in ARMS}
    ratios: dict[str, list[float]] = {name: [] for name, _ in ARMS[1:]}
    for _ in range(config["rounds"]):
        round_s = {}
        for name, fsync in ARMS:
            round_s[name] = _run_arm(graph, batches, fsync)
            seconds[name].append(round_s[name])
        for name, _ in ARMS[1:]:
            ratios[name].append(round_s[name] / round_s["baseline"])

    def median(values: list[float]) -> float:
        return sorted(values)[len(values) // 2]

    overhead_pct = {
        name: (median(ratios[name]) - 1.0) * 100.0 for name in ratios
    }
    throughput = {
        name: len(batches) / min(seconds[name]) for name, _ in ARMS
    }
    return {
        "graph": graph,
        "rounds": config["rounds"],
        "batches_per_round": len(batches),
        "ops_per_batch": config["batch"],
        "throughput_batches_per_s": throughput,
        "overhead_pct": overhead_pct,
        "round_ratios": {
            name: [round(r, 4) for r in values]
            for name, values in ratios.items()
        },
    }


def render(rows: dict[str, object]) -> str:
    graph = rows["graph"]
    throughput = rows["throughput_batches_per_s"]
    overhead = rows["overhead_pct"]
    table = [("no WAL (baseline)", f"{throughput['baseline']:,.0f}", "—")]
    for name, _ in ARMS[1:]:
        table.append(
            (
                f"WAL fsync={name}",
                f"{throughput[name]:,.0f}",
                f"{overhead[name]:+.2f}%",
            )
        )
    return render_table(
        ["arm", "batches/s (best round)", "overhead (median ratio)"],
        table,
        title=(
            f"CLAIM-S10-WAL: |V|={graph.num_vertices:,} "
            f"|E|={graph.num_edges:,} DAG (DAGGER), "
            f"{rows['batches_per_round']:,} batches x "
            f"{rows['ops_per_batch']} ops x {rows['rounds']} rounds"
        ),
    )


def headline(rows: dict[str, object]) -> dict[str, object]:
    overhead = rows["overhead_pct"]
    throughput = rows["throughput_batches_per_s"]
    return {
        "wal_batch_overhead_pct": {
            "value": round(float(overhead["batch"]), 3),
            "max": BATCH_OVERHEAD_MAX_PCT,
        },
        # fsync=off/always and raw throughput depend on the disk and the
        # machine, so the keys deliberately carry no judged suffix:
        # bench_compare reports them without gating.  The portable
        # contract is the ``batch`` ceiling above.
        "overhead_fsync_off": round(float(overhead["off"]), 3),
        "overhead_fsync_always": round(float(overhead["always"]), 3),
        "throughput_baseline": float(throughput["baseline"]),
        "throughput_fsync_batch": float(throughput["batch"]),
    }


def test_wal_write_overhead(benchmark, report):
    rows = benchmark.pedantic(lambda: wal_rows(TINY), rounds=1, iterations=1)
    report(render(rows))
    assert rows["overhead_pct"]["batch"] <= BATCH_OVERHEAD_MAX_PCT, (
        f"WAL fsync=batch overhead {rows['overhead_pct']['batch']:.2f}% "
        f"> {BATCH_OVERHEAD_MAX_PCT}%"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="CI-sized run (smaller graph and log)"
    )
    add_json_argument(parser, "wal")
    args = parser.parse_args(argv)
    config = TINY if args.tiny else FULL

    rows = wal_rows(config)
    print(render(rows))

    head = headline(rows)
    results = {
        "headline": head,
        "wal": {key: value for key, value in rows.items() if key != "graph"},
        "config": dict(config),
    }
    path = emit("wal", results, args.json)
    print(f"\nwrote {path}")

    if rows["overhead_pct"]["batch"] > BATCH_OVERHEAD_MAX_PCT:
        print(
            f"FAIL: WAL fsync=batch overhead "
            f"{rows['overhead_pct']['batch']:.2f}% > {BATCH_OVERHEAD_MAX_PCT}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
