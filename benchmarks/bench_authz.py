"""CLAIM-S9-AUTHZ — list-objects must ride the enumeration fast paths.

The Zanzibar-style workload's list-objects question ("which of these
10,000 documents can this principal see?") has two implementations:

* **pair probes** — one ``query_batch`` over every ``(subject, doc)``
  pair, the only option before the set-enumeration API existed;
* **enumeration** — one ``reachable_from`` call through the per-family
  fast path (TC: closure read; PLL: label join), then a type filter.

The claim: enumeration beats the batched pair probes by **>= 5x** for
TC and PLL at 10^4 candidate objects, because its cost scales with the
*answer* size while probing scales with the *candidate* size.  Both
arms are verified to return the same allowed set before timing counts.

A second, informational section measures the same comparison end-to-end
over HTTP — one ``POST /authz/expand`` against one batched
``POST /authz/check`` — through a live :class:`ServiceHTTPServer` with
the store attached.  Raw HTTP numbers are machine-dependent, so those
keys carry no judged suffix.

Run standalone (``python benchmarks/bench_authz.py [--tiny]``) or under
pytest (``pytest benchmarks/bench_authz.py -s``).  Emits
``BENCH_authz.json`` whose headline carries ``{"value": ..., "min": 5.0}``
entries so ``tools/bench_compare.py`` enforces the floors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request

from repro.authz import AuthzStore
from repro.bench.jsonout import add_json_argument, emit
from repro.bench.tables import render_table
from repro.workloads.authz import authz_tuples

FULL = {
    "users": 200,
    "groups": 30,
    "objects": 10_000,
    "grants_per_group": 400,
    "enum_rounds": 30,
    "probe_rounds": 3,
}
TINY = {
    "users": 30,
    "groups": 8,
    "objects": 400,
    "grants_per_group": 60,
    "enum_rounds": 10,
    "probe_rounds": 3,
}

FAMILIES = ("TC", "PLL")
SPEEDUP_MIN = 5.0
NAMESPACE = "bench"


def _hot_subject(store: AuthzStore) -> str:
    """The user with the largest reachable set — the Zipf head case."""
    snapshot = store.snapshot(NAMESPACE)
    best, best_size = None, -1
    for name, vid in snapshot.entity_ids.items():
        if not name.startswith("user:"):
            continue
        size = len(snapshot.index.reachable_from(vid))
        if size > best_size:
            best, best_size = name, size
    return best


def family_rows(config: dict[str, int], family: str, seed: int = 9) -> dict[str, object]:
    """Enumeration vs batched pair probes, in process, best-of-rounds."""
    tuples = authz_tuples(
        config["users"],
        config["groups"],
        config["objects"],
        seed=seed,
        grants_per_group=config["grants_per_group"],
    )
    store = AuthzStore(family)
    build_start = time.perf_counter()
    zookie = store.write(NAMESPACE, writes=tuples)
    build_s = time.perf_counter() - build_start
    subject = _hot_subject(store)
    snapshot = store.snapshot(NAMESPACE)
    sid = snapshot.entity_ids[subject]
    docs = sorted(
        name for name in snapshot.entity_ids if name.startswith("doc:")
    )
    doc_ids = [snapshot.entity_ids[name] for name in docs]
    pairs = [(sid, oid) for oid in doc_ids]

    def probe_list_objects() -> tuple[str, ...]:
        """list-objects without the enumeration API: one probe per doc."""
        hits = snapshot.index.query_batch(pairs)
        return tuple(sorted(doc for doc, hit in zip(docs, hits) if hit))

    # both arms must return the same answer before any timing counts
    enum_answer = store.list_objects(
        NAMESPACE, subject, object_type="doc", at_least=zookie
    ).names
    probe_answer = probe_list_objects()
    if enum_answer != probe_answer:
        raise AssertionError(
            f"{family}: enumeration and pair probes disagree "
            f"({len(enum_answer)} vs {len(probe_answer)} docs)"
        )

    enum_s = min(
        _timed(lambda: store.list_objects(NAMESPACE, subject, object_type="doc"))
        for _ in range(config["enum_rounds"])
    )
    probe_s = min(
        _timed(probe_list_objects) for _ in range(config["probe_rounds"])
    )
    return {
        "family": family,
        "subject": subject,
        "tuples": len(tuples),
        "entities": len(snapshot.entities),
        "candidate_objects": len(docs),
        "allowed_objects": len(enum_answer),
        "build_s": build_s,
        "enum_s": enum_s,
        "probe_s": probe_s,
        "speedup": probe_s / enum_s,
        "route": store.list_objects(NAMESPACE, subject, object_type="doc").route,
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def http_rows(config: dict[str, int], seed: int = 9) -> dict[str, object]:
    """End-to-end: one expand call vs one batched check over live HTTP."""
    from repro.graphs.generators import random_dag
    from repro.service.engine import ReachabilityService
    from repro.service.server import serve

    tuples = authz_tuples(
        config["users"],
        config["groups"],
        config["objects"],
        seed=seed,
        grants_per_group=config["grants_per_group"],
    )
    store = AuthzStore("TC")
    store.write(NAMESPACE, writes=tuples)
    subject = _hot_subject(store)
    docs = sorted(
        name for name in store.snapshot(NAMESPACE).entity_ids
        if name.startswith("doc:")
    )
    service = ReachabilityService(random_dag(16, 30, seed=1), index="TC")
    server = serve(service, port=0, authz=store)
    server.start_background()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        expand_body = {
            "namespace": NAMESPACE,
            "entity": subject,
            "direction": "objects",
            "type": "doc",
        }
        probe_body = {"namespace": NAMESPACE, "subject": subject, "objects": docs}
        expand = _post(base, "/authz/expand", expand_body)
        probes = _post(base, "/authz/check", probe_body)
        allowed = {doc for doc, ok in zip(docs, probes["allowed"]) if ok}
        if set(expand["names"]) != allowed:
            raise AssertionError("HTTP expand and check-batch disagree")
        expand_s = min(
            _timed(lambda: _post(base, "/authz/expand", expand_body))
            for _ in range(5)
        )
        probe_s = min(
            _timed(lambda: _post(base, "/authz/check", probe_body))
            for _ in range(3)
        )
    finally:
        server.drain(5.0)
    return {
        "subject": subject,
        "candidate_objects": len(docs),
        "allowed_objects": len(allowed),
        "expand_s": expand_s,
        "probe_s": probe_s,
        "speedup": probe_s / expand_s,
    }


def render(rows: list[dict[str, object]], http: dict[str, object]) -> str:
    body = [
        (
            str(row["family"]),
            str(row["route"]),
            f"{row['candidate_objects']:,}",
            f"{row['allowed_objects']:,}",
            f"{row['probe_s'] * 1e3:.2f}",
            f"{row['enum_s'] * 1e3:.2f}",
            f"{row['speedup']:.1f}x",
        )
        for row in rows
    ]
    first = rows[0]
    return "\n".join(
        [
            render_table(
                [
                    "family",
                    "route",
                    "candidates",
                    "allowed",
                    "probe (ms)",
                    "enum (ms)",
                    "speedup",
                ],
                body,
                title=(
                    f"CLAIM-S9-AUTHZ: list-objects for {first['subject']} over "
                    f"{first['candidate_objects']:,} docs "
                    f"({first['tuples']:,} tuples, {first['entities']:,} entities)"
                ),
            ),
            "",
            render_table(
                ["metric", "value"],
                [
                    ("expand (one call)", f"{http['expand_s'] * 1e3:.2f} ms"),
                    ("check batch (one call)", f"{http['probe_s'] * 1e3:.2f} ms"),
                    ("speedup", f"{http['speedup']:.1f}x"),
                ],
                title=(
                    f"end-to-end HTTP (TC): {http['candidate_objects']:,} "
                    "candidates, single round trips"
                ),
            ),
        ]
    )


def headline(rows: list[dict[str, object]], http: dict[str, object]) -> dict[str, object]:
    head: dict[str, object] = {}
    for row in rows:
        key = f"list_objects_speedup_{str(row['family']).lower()}"
        head[key] = {"value": round(float(row["speedup"]), 2), "min": SPEEDUP_MIN}
    # HTTP latencies depend on the loopback stack and the machine, so the
    # keys deliberately carry no judged suffix: bench_compare reports them
    # without gating.  The portable contracts are the floors above.
    head["http_expand_time"] = round(float(http["expand_s"]), 6)
    head["http_probe_time"] = round(float(http["probe_s"]), 6)
    head["http_speedup_info"] = round(float(http["speedup"]), 2)
    return head


def test_authz_enumeration_speedup(report):
    # family_rows raises if the enumeration and probe arms disagree, so
    # collecting the rows IS the correctness assertion; the >= 5x floor
    # is a full-scale (10^4 candidates) claim gated on the emitted
    # artifact, not at this CI-sized config.
    config = TINY
    rows = [family_rows(config, family) for family in FAMILIES]
    http = http_rows(config)
    report(render(rows, http))
    routes = {row["family"]: row["route"] for row in rows}
    assert routes == {"TC": "enum_closure", "PLL": "enum_label_join"}
    for row in rows:
        assert row["allowed_objects"] <= row["candidate_objects"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true", help="CI-sized run (fewer objects)"
    )
    add_json_argument(parser, "authz")
    args = parser.parse_args(argv)
    config = TINY if args.tiny else FULL

    rows = [family_rows(config, family) for family in FAMILIES]
    http = http_rows(config)
    print(render(rows, http))

    results = {
        "headline": headline(rows, http),
        "families": rows,
        "http": http,
        "config": dict(config),
    }
    path = emit("authz", results, args.json)
    print(f"\nwrote {path}")

    failures = [
        f"{row['family']}: {row['speedup']:.1f}x < {SPEEDUP_MIN}x"
        for row in rows
        if row["speedup"] < SPEEDUP_MIN
    ]
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
