"""CLAIM-S3-SIZE — §2.3/§3: index size across the Table 1 families.

The TC's "high computation and storage costs make it infeasible in
practice": the table shows the TC holding orders of magnitude more
entries than every labeling scheme on the same graph, with the
constant-per-vertex filters (BFL, IP, Feline, DBL) at the small end.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import index_size_rows
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import plain_index
from repro.graphs.generators import random_dag


def test_claim_tc_is_infeasible(benchmark, report):
    size_rows = benchmark.pedantic(index_size_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["index", "entries", "payload bytes", "build"],
            [
                (
                    r["name"],
                    f"{r['entries']:,}",
                    f"{r['bytes']:,}",
                    format_seconds(r["build_seconds"]),
                )
                for r in size_rows
            ],
            title="CLAIM-S3-SIZE: index entries, 300-vertex DAG (|E| = 1200)",
        )
    )
    entries = {r["name"]: r["entries"] for r in size_rows}
    # the TC stores reachable pairs: far larger than any labeling
    for name in ("BFL", "GRAIL", "Ferrari", "PLL", "Feline", "DBL"):
        assert entries["TC"] > 5 * entries[name], (name, entries[name])
    # constant-per-vertex filters sit at the small end
    n = 300
    assert entries["BFL"] == 2 * n
    assert entries["Feline"] == 3 * n
    assert entries["DBL"] == 4 * n


def test_tc_build(benchmark):
    graph = random_dag(300, 1200, seed=7)
    benchmark(plain_index("TC").build, graph)


def test_pll_build(benchmark):
    graph = random_dag(300, 1200, seed=7)
    benchmark(plain_index("PLL").build, graph)


@pytest.mark.parametrize("shortcuts", [10, 80, 300])
def test_dual_labeling_size_grows_quadratically_in_links(benchmark, shortcuts, report):
    """§3.1: dual labeling works "only if the number of non-tree edges is
    very low" — its O(t²) link closure dominates as shortcuts grow."""
    from repro.graphs.generators import tree_with_shortcuts

    graph = tree_with_shortcuts(400, shortcuts, seed=8)
    cls = plain_index("Dual labeling")
    index = benchmark(cls.build, graph)
    assert index.size_in_entries() >= shortcuts * shortcuts
