"""CLAIM-S33-FPR — §3.3: approximate-TC indexes have no false negatives;
false positives exist and are resolved by pruned traversal.

The table reports, per configuration, how many true negatives the filter
kills outright and how many unreachable pairs still look "maybe
reachable" (the lookup-level false positives).  Growing the sketch/filter
must shrink the false-positive count — the paper's accuracy/size dial.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import approx_tc_rows
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import plain_index
from repro.graphs.generators import scale_free_dag
from repro.workloads.queries import plain_workload


def test_claim_no_false_negatives_and_dialable_fp(benchmark, report):
    fpr_rows = benchmark.pedantic(approx_tc_rows, rounds=1, iterations=1)
    report(
        render_table(
            ["config", "entries", "neg killed", "lookup FPs", "per-query"],
            [
                (
                    r["name"],
                    f"{r['entries']:,}",
                    f"{r['negatives_killed']}/{r['negatives_total']}",
                    r["false_positive_maybes"],
                    format_seconds(r["per_query"]),
                )
                for r in fpr_rows
            ],
            title="CLAIM-S33-FPR: approximate-TC lookup outcomes (no-FN asserted)",
        )
    )
    by_family: dict[str, list] = {}
    for r in fpr_rows:
        by_family.setdefault(r["name"].split()[0], []).append(r)
    for family, rows in by_family.items():
        rows.sort(key=lambda r: r["entries"])
        small, big = rows[0], rows[-1]
        assert big["false_positive_maybes"] <= small["false_positive_maybes"], family


@pytest.mark.parametrize("name,params", [("IP", {"k": 4}), ("BFL", {"bits": 160})])
def test_negative_query_latency(benchmark, name, params):
    """Negative queries die at the filter: O(1) per the §5 argument."""
    graph = scale_free_dag(1200, edges_per_vertex=3, seed=8)
    workload = [
        q
        for q in plain_workload(graph, 300, positive_fraction=0.0, seed=9)
    ]
    index = plain_index(name).build(graph, **params)
    result = benchmark(
        lambda: [index.query(q.source, q.target) for q in workload]
    )
    assert not any(result)
