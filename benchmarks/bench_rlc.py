"""CLAIM-S42-RLC — §4.2: the RLC index answers concatenation queries from
lookups, against the automaton-guided product BFS baseline.

Both must agree exactly; the index should win on per-query time once
built (its build absorbs the minimum-repeat computation the baseline
redoes per query).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.tables import format_seconds, render_table
from repro.core.registry import labeled_index
from repro.graphs.generators import random_labeled_digraph
from repro.traversal.automaton import build_dfa
from repro.traversal.rpq import rpq_reachable_with_dfa
from repro.workloads.queries import concatenation_workload


@pytest.fixture(scope="module")
def setup():
    graph = random_labeled_digraph(200, 600, ["a", "b", "c"], seed=23)
    workload = concatenation_workload(graph, 120, seed=24, max_period=2)
    return graph, workload


def test_claim_rlc_exact_and_faster(benchmark, setup, report):
    graph, workload = setup

    build_start = time.perf_counter()
    index = labeled_index("RLC").build(graph.copy(), max_period=2)
    build_seconds = time.perf_counter() - build_start

    start = time.perf_counter()
    online = [
        rpq_reachable_with_dfa(graph, q.source, q.target, build_dfa(q.constraint))
        for q in workload
    ]
    online_seconds = time.perf_counter() - start

    start = time.perf_counter()
    indexed = benchmark.pedantic(
        lambda: [index.query(q.source, q.target, q.constraint) for q in workload],
        rounds=1,
        iterations=1,
    )
    indexed_seconds = time.perf_counter() - start

    truth = [q.reachable for q in workload]
    assert online == truth
    assert indexed == truth

    report(
        render_table(
            ["method", "per-query", "build", "entries"],
            [
                (
                    "product-automaton BFS",
                    format_seconds(online_seconds / len(workload)),
                    "-",
                    "-",
                ),
                (
                    "RLC index",
                    format_seconds(indexed_seconds / len(workload)),
                    format_seconds(build_seconds),
                    f"{index.size_in_entries():,}",
                ),
            ],
            title="CLAIM-S42-RLC: concatenation queries, 200-vertex labeled graph",
        )
    )
    assert indexed_seconds < online_seconds


def test_rlc_queries(benchmark, setup):
    graph, workload = setup
    index = labeled_index("RLC").build(graph.copy(), max_period=2)
    result = benchmark(
        lambda: [index.query(q.source, q.target, q.constraint) for q in workload]
    )
    assert result == [q.reachable for q in workload]


def test_rlc_build(benchmark, setup):
    graph, _workload = setup
    benchmark(lambda: labeled_index("RLC").build(graph.copy(), max_period=2))


@pytest.mark.parametrize("max_period", [1, 2, 3])
def test_rlc_build_grows_with_period_bound(benchmark, max_period):
    """The κ bound is the index's cost dial (the paper's taming rule)."""
    graph = random_labeled_digraph(120, 360, ["a", "b"], seed=25)
    index = benchmark(
        lambda: labeled_index("RLC").build(graph.copy(), max_period=max_period)
    )
    assert index.max_period == max_period
