"""CLAIM-PERF-BATCH — the batched query path amortises per-query cost.

Three layers of the same claim, measured on a 10⁴-vertex random DAG with
Zipf-skewed batches from :func:`repro.workloads.queries.batch_workload`:

* **Traversal fallback** — ``bfs_reachable_batch`` answers a whole batch
  through shared bit-parallel frontiers; ≥ 3× over the per-pair BFS loop
  at batch size ≥ 256.
* **Index families** — ``query_batch`` binds hot arrays once and resolves
  all MAYBEs through one multi-source kernel call instead of per-pair
  guided traversal.
* **Service end-to-end** — one uncached ``POST /reach/batch`` beats the
  equivalent sequence of uncached ``GET /reach`` requests by ≥ 1.5×.

Run as a benchmark (``pytest benchmarks/bench_batch.py -s``) or
standalone (``python benchmarks/bench_batch.py [--tiny] [--json PATH]``);
both emit the measurements as ``BENCH_batch.json``.
"""

from __future__ import annotations

import argparse
import json
import time
import urllib.request

from repro.bench.jsonout import add_json_argument, emit
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import plain_index
from repro.graphs.generators import random_dag
from repro.service import ReachabilityService
from repro.service.server import serve
from repro.traversal.online import bfs_reachable, bfs_reachable_batch
from repro.workloads.queries import batch_workload

NUM_VERTICES = 10_000
NUM_EDGES = 35_000
BATCH_SIZE = 512
NUM_BATCHES = 2
SERVICE_PAIRS = 256
INDEXES = ("GRAIL", "PLL")


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def measure(
    num_vertices: int = NUM_VERTICES,
    num_edges: int = NUM_EDGES,
    batch_size: int = BATCH_SIZE,
    num_batches: int = NUM_BATCHES,
    service_pairs: int = SERVICE_PAIRS,
    seed: int = 0,
) -> dict:
    """All three measurements as one JSON-serialisable dict."""
    graph = random_dag(num_vertices, num_edges, seed=seed)
    batches = batch_workload(
        graph, num_batches, batch_size, positive_fraction=0.3, seed=seed + 1
    )
    pairs = [[(q.source, q.target) for q in batch] for batch in batches]
    truth = [[q.reachable for q in batch] for batch in batches]
    total = num_batches * batch_size
    rows: list[dict] = []

    # -- traversal fallback: per-pair BFS loop vs bit-parallel batch -----
    loop_answers, loop_s = _timed(
        lambda: [[bfs_reachable(graph, s, t) for s, t in batch] for batch in pairs]
    )
    batch_answers, batch_s = _timed(
        lambda: [bfs_reachable_batch(graph, batch) for batch in pairs]
    )
    assert loop_answers == truth and batch_answers == truth
    rows.append(
        {
            "method": "online traversal",
            "loop_seconds": loop_s,
            "batch_seconds": batch_s,
            "speedup": loop_s / batch_s,
        }
    )

    # -- index families: scalar query loop vs query_batch ----------------
    for name in INDEXES:
        index = plain_index(name).build(graph)
        loop_answers, loop_s = _timed(
            lambda: [[index.query(s, t) for s, t in batch] for batch in pairs]
        )
        batch_answers, batch_s = _timed(
            lambda: [index.query_batch(batch) for batch in pairs]
        )
        assert loop_answers == truth and batch_answers == truth
        rows.append(
            {
                "method": name,
                "loop_seconds": loop_s,
                "batch_seconds": batch_s,
                "speedup": loop_s / batch_s,
            }
        )

    service = _measure_service(graph, service_pairs, seed)
    return {
        "graph": {"vertices": num_vertices, "edges": graph.num_edges},
        "batch_size": batch_size,
        "num_batches": num_batches,
        "pairs_total": total,
        "rows": rows,
        "service": service,
    }


def _measure_service(graph, num_pairs: int, seed: int) -> dict:
    """Uncached sequential ``GET /reach`` vs one ``POST /reach/batch``.

    Distinct pairs and a fresh service per side keep the result cache out
    of both measurements; the difference is pure per-request overhead
    plus the engine's scalar-vs-amortised evaluation.
    """
    unique = list(
        dict.fromkeys(
            (q.source, q.target)
            for batch in batch_workload(graph, 4, num_pairs, 0.3, seed=seed + 2)
            for q in batch
        )
    )[:num_pairs]

    def with_server(measure_requests):
        service = ReachabilityService(graph, index="GRAIL")
        server = serve(service, port=0)
        server.start_background()
        port = server.server_address[1]
        try:
            return _timed(lambda: measure_requests(port))
        finally:
            server.shutdown()
            server.server_close()

    def sequential(port: int) -> list[bool]:
        answers = []
        for s, t in unique:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/reach?source={s}&target={t}"
            ) as resp:
                answers.append(json.load(resp)["reachable"])
        return answers

    def batched(port: int) -> list[bool]:
        body = json.dumps({"pairs": [list(p) for p in unique]}).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/reach/batch",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as resp:
            return [r["reachable"] for r in json.load(resp)["results"]]

    sequential_answers, sequential_s = with_server(sequential)
    batch_answers, batch_s = with_server(batched)
    assert sequential_answers == batch_answers
    return {
        "pairs": len(unique),
        "sequential_seconds": sequential_s,
        "batch_seconds": batch_s,
        "speedup": sequential_s / batch_s,
    }


def _render(results: dict) -> str:
    rows = [
        (
            row["method"],
            format_seconds(row["loop_seconds"]),
            format_seconds(row["batch_seconds"]),
            f"{row['speedup']:.1f}x",
        )
        for row in results["rows"]
    ]
    service = results["service"]
    rows.append(
        (
            "service (HTTP)",
            format_seconds(service["sequential_seconds"]),
            format_seconds(service["batch_seconds"]),
            f"{service['speedup']:.1f}x",
        )
    )
    graph = results["graph"]
    return render_table(
        ["method", "per-pair loop", "batched", "speedup"],
        rows,
        title=(
            f"CLAIM-PERF-BATCH: |V|={graph['vertices']:,} |E|={graph['edges']:,}, "
            f"{results['num_batches']} batches of {results['batch_size']}"
        ),
    )


def test_batch_amortisation(benchmark, report):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(_render(results))
    emit("batch", results)
    traversal = next(r for r in results["rows"] if r["method"] == "online traversal")
    assert traversal["speedup"] >= 3.0, (
        f"batched traversal speedup {traversal['speedup']:.2f}x below the "
        "claimed 3x at batch size >= 256"
    )
    assert results["service"]["speedup"] >= 1.5, (
        f"end-to-end batch speedup {results['service']['speedup']:.2f}x "
        "below the claimed 1.5x"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test parameters (small graph, no speedup assertions)",
    )
    parser.add_argument("--seed", type=int, default=0)
    add_json_argument(parser, "batch")
    args = parser.parse_args(argv)
    if args.tiny:
        results = measure(
            num_vertices=300,
            num_edges=900,
            batch_size=64,
            num_batches=2,
            service_pairs=32,
            seed=args.seed,
        )
    else:
        results = measure(seed=args.seed)
    print(_render(results))
    print(f"wrote {emit('batch', results, args.json)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
