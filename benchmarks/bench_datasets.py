"""DATASETS — the headline comparison across the motivating domains.

§1 motivates reachability with biological, financial, social and
citation networks.  This suite runs the traversal baseline and the main
index families over one synthetic stand-in per domain (see
`repro.workloads.datasets` and DESIGN.md §1), producing the dataset ×
method matrix an evaluation section would open with.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import build_index, time_workload
from repro.bench.tables import format_seconds, render_table
from repro.core.registry import plain_index
from repro.graphs.generators import rmat_digraph
from repro.graphs.stats import graph_statistics
from repro.traversal.online import bfs_reachable
from repro.workloads.datasets import (
    citation_network,
    protein_network,
    social_network,
    transaction_network,
)
from repro.workloads.queries import plain_workload

INDEXES = ("GRAIL", "BFL", "PLL", "Preach")


def _datasets():
    return {
        "citation (scale-free DAG)": citation_network(num_vertices=400, seed=11),
        "protein (layered DAG)": protein_network(num_layers=12, width=30, seed=13),
        "social (labeled, plain view)": social_network(
            num_vertices=400, seed=7
        ).to_plain(),
        "finance (cyclic, plain view)": transaction_network(
            num_vertices=300, seed=17
        ).to_plain(),
        "web (R-MAT)": rmat_digraph(9, 1536, seed=19),
    }


def test_dataset_matrix(benchmark, report):
    def run():
        rows = []
        for name, graph in _datasets().items():
            workload = plain_workload(graph, 200, positive_fraction=0.3, seed=23)
            start = time.perf_counter()
            for q in workload:
                bfs_reachable(graph, q.source, q.target)
            bfs_per_query = (time.perf_counter() - start) / len(workload)
            cells = {"bfs": bfs_per_query}
            for index_name in INDEXES:
                built = build_index(plain_index(index_name), graph)
                result = time_workload(index_name, built.index.query, workload)
                assert result.wrong_answers == 0, (name, index_name)
                cells[index_name] = result.per_query_seconds
            stats = graph_statistics(graph)
            rows.append((name, stats, cells))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        render_table(
            ["dataset", "|V|", "|E|", "reach-density", "BFS"] + list(INDEXES),
            [
                (
                    name,
                    stats.num_vertices,
                    stats.num_edges,
                    f"{stats.reachability_density:.3f}",
                    format_seconds(cells["bfs"]),
                )
                + tuple(format_seconds(cells[i]) for i in INDEXES)
                for name, stats, cells in rows
            ],
            title="DATASETS: per-query time across the §1 domain stand-ins",
        )
    )
    # the complete 2-hop index wins or ties the traversal everywhere
    for name, _stats, cells in rows:
        assert cells["PLL"] <= cells["bfs"], name


@pytest.mark.parametrize("name", ["citation", "protein", "finance"])
def test_dataset_builds(benchmark, name):
    graphs = {
        "citation": citation_network(num_vertices=400, seed=11),
        "protein": protein_network(num_layers=12, width=30, seed=13),
        "finance": transaction_network(num_vertices=300, seed=17).to_plain(),
    }
    graph = graphs[name]
    benchmark(lambda: build_index(plain_index("PLL"), graph))
