"""CLAIM-S5-SERVE — the serving tier under skewed, concurrent traffic.

Two demonstrations of the §5 GDBMS sketch grown into a service:

* **Caching claim** — on a 10⁴-vertex random DAG with a Zipf-skewed
  query log (the repetition the Wikidata query-log study reports), the
  epoch-tagged result cache lifts closed-loop throughput to ≥ 5× the
  uncached per-query path.
* **Serving under churn** — a closed-loop load generator replays
  :mod:`repro.workloads.querylog` traffic from N reader threads while a
  writer applies update batches; the service keeps answering across
  snapshot swaps and its metrics (per-route latency percentiles, cache
  hit rate, epoch/invalidation counters) reconcile with the applied
  batches.

Run as a benchmark (``pytest benchmarks/bench_service.py -s``) or
standalone (``python benchmarks/bench_service.py``).
"""

from __future__ import annotations

import random
import threading
import time

from repro.bench.tables import render_table
from repro.graphs.generators import random_dag, random_labeled_digraph
from repro.service import ReachabilityService
from repro.traversal.online import descendants
from repro.workloads.querylog import querylog_workload
from repro.workloads.updates import labeled_update_stream

NUM_VERTICES = 10_000
NUM_EDGES = 35_000
POOL_SIZE = 200
POSITIVE_POOL = 160
ZIPF_SKEW = 1.3
NUM_QUERIES = 2_000
NUM_THREADS = 4


def skewed_plain_log(
    graph, num_queries: int, seed: int
) -> list[tuple[int, int]]:
    """A Zipf-skewed plain query log over a small positive-heavy pool.

    Skew produces the repetition that makes result caching pay;
    positives dominate so the uncached path exercises guided traversal
    rather than O(1) interval rejections.
    """
    rng = random.Random(seed)
    n = graph.num_vertices
    pool: list[tuple[int, int]] = []
    while len(pool) < POSITIVE_POOL:
        source = rng.randrange(n)
        below = sorted(descendants(graph, source) - {source})
        if below:
            pool.append((source, rng.choice(below)))
    while len(pool) < POOL_SIZE:
        pool.append((rng.randrange(n), rng.randrange(n)))
    weights = [1.0 / (rank + 1) ** ZIPF_SKEW for rank in range(len(pool))]
    return rng.choices(pool, weights=weights, k=num_queries)


def closed_loop(work, shards) -> tuple[int, float]:
    """Run one worker thread per shard; returns (completed, seconds)."""
    done = [0] * len(shards)
    barrier = threading.Barrier(len(shards) + 1)

    def worker(slot: int, shard) -> None:
        barrier.wait(30.0)
        count = 0
        for item in shard:
            work(item)
            count += 1
        done[slot] = count

    threads = [
        threading.Thread(target=worker, args=(slot, shard))
        for slot, shard in enumerate(shards)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(30.0)
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return sum(done), time.perf_counter() - start


def _shard(items, num_shards: int):
    return [items[i::num_shards] for i in range(num_shards)]


def caching_rows(seed: int = 13) -> dict[str, object]:
    """Measure cached vs uncached closed-loop service throughput."""
    graph = random_dag(NUM_VERTICES, NUM_EDGES, seed=seed)
    log = skewed_plain_log(graph, NUM_QUERIES, seed=seed + 1)

    uncached = ReachabilityService(graph, index="GRAIL", cache_capacity=None)
    # Prime-free: measure a slice, every query pays the index/traversal.
    uncached_slice = log[: NUM_QUERIES // 4]
    count_u, seconds_u = closed_loop(
        lambda q: uncached.reach(q[0], q[1]), _shard(uncached_slice, NUM_THREADS)
    )

    cached = ReachabilityService(graph, index="GRAIL", cache_capacity=8192)
    count_c, seconds_c = closed_loop(
        lambda q: cached.reach(q[0], q[1]), _shard(log, NUM_THREADS)
    )

    metrics = cached.metrics_dict()
    throughput_u = count_u / seconds_u
    throughput_c = count_c / seconds_c
    return {
        "graph": graph,
        "uncached_qps": throughput_u,
        "cached_qps": throughput_c,
        "speedup": throughput_c / throughput_u,
        "hit_rate": metrics["cache"]["hit_rate"],
        "latency": metrics["service"]["latency"],
        "queries": metrics["service"]["queries"],
    }


def churn_rows(seed: int = 17) -> dict[str, object]:
    """Replay querylog traffic from N threads against a mutating graph.

    Readers loop over the query log until the writer has applied every
    update batch, so query traffic and snapshot swaps always overlap.
    """
    graph = random_labeled_digraph(1_200, 3_600, ["a", "b", "c", "d"], seed=seed)
    log = querylog_workload(graph, 90, seed=seed + 1)
    stream = labeled_update_stream(graph, 40, seed=seed + 2)
    batches = [stream[i : i + 10] for i in range(0, 40, 10)]

    service = ReachabilityService(graph, index="GRAIL", cache_capacity=4096)
    shards = _shard(log, NUM_THREADS)
    writer_done = threading.Event()
    barrier = threading.Barrier(NUM_THREADS + 2)
    done = [0] * NUM_THREADS

    def reader(slot: int) -> None:
        barrier.wait(60.0)
        count = 0
        while True:  # at least one full pass, then until the writer is done
            for query in shards[slot]:
                service.lreach(query.source, query.target, query.constraint)
                count += 1
            if writer_done.is_set():
                break
        done[slot] = count

    def writer() -> None:
        barrier.wait(60.0)
        for batch in batches:
            service.apply_updates(batch)
        writer_done.set()

    threads = [
        threading.Thread(target=reader, args=(slot,)) for slot in range(NUM_THREADS)
    ]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    barrier.wait(60.0)
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start

    count = sum(done)
    metrics = service.metrics_dict()
    return {
        "qps": count / seconds,
        "completed": count,
        "batches": len(batches),
        "metrics": metrics,
    }


def _latency_row(name: str, summary: dict[str, object]) -> tuple[str, ...]:
    return (
        name,
        f"{summary['count']}",
        f"{summary['p50_s'] * 1e6:.0f}",
        f"{summary['p95_s'] * 1e6:.0f}",
        f"{summary['p99_s'] * 1e6:.0f}",
    )


def render_caching(rows: dict[str, object]) -> str:
    graph = rows["graph"]
    lines = [
        render_table(
            ["path", "throughput (q/s)"],
            [
                ("uncached per-query", f"{rows['uncached_qps']:,.0f}"),
                ("cached service", f"{rows['cached_qps']:,.0f}"),
                ("speedup", f"{rows['speedup']:.1f}x"),
                ("cache hit rate", f"{rows['hit_rate']:.1%}"),
            ],
            title=(
                f"CLAIM-S5-SERVE: |V|={graph.num_vertices:,} |E|={graph.num_edges:,} "
                f"DAG, {NUM_QUERIES} Zipf-skewed queries, {NUM_THREADS} threads"
            ),
        ),
        "",
        render_table(
            ["route", "count", "p50 (us)", "p95 (us)", "p99 (us)"],
            [
                _latency_row(route, summary)
                for route, summary in sorted(rows["latency"].items())
                if summary["count"]
            ],
            title="per-route latency percentiles (cached run)",
        ),
    ]
    return "\n".join(lines)


def render_churn(rows: dict[str, object]) -> str:
    metrics = rows["metrics"]
    service = metrics["service"]
    return "\n".join(
        [
            render_table(
                ["metric", "value"],
                [
                    ("querylog replays", f"{rows['completed']}"),
                    ("throughput (q/s)", f"{rows['qps']:,.0f}"),
                    ("update batches", f"{rows['batches']}"),
                    ("final epoch", f"{service['epoch']}"),
                    ("snapshot swaps", f"{service['swaps']}"),
                    ("cache invalidation cycles", f"{metrics['cache']['invalidation_cycles']}"),
                    ("cache hit rate", f"{metrics['cache']['hit_rate']:.1%}"),
                ],
                title="CLAIM-S5-SERVE: querylog replay against a mutating graph",
            ),
            "",
            render_table(
                ["route", "count", "p50 (us)", "p95 (us)", "p99 (us)"],
                [
                    _latency_row(route, summary)
                    for route, summary in sorted(service["latency"].items())
                    if summary["count"]
                ],
                title="per-route latency percentiles (under churn)",
            ),
        ]
    )


def test_claim_cached_throughput(benchmark, report):
    rows = benchmark.pedantic(caching_rows, rounds=1, iterations=1)
    report(render_caching(rows))
    assert rows["hit_rate"] > 0.5
    assert rows["speedup"] >= 5.0, f"cache speedup only {rows['speedup']:.1f}x"


def test_serving_survives_churn(benchmark, report):
    rows = benchmark.pedantic(churn_rows, rounds=1, iterations=1)
    report(render_churn(rows))
    metrics = rows["metrics"]
    # Every reader completes at least one full pass over its shard.
    assert rows["completed"] >= 90
    # Epoch/invalidation counters reconcile with the applied batches.
    assert metrics["service"]["epoch"] == rows["batches"]
    assert metrics["service"]["swaps"] == rows["batches"]
    assert metrics["cache"]["invalidation_cycles"] == rows["batches"]


if __name__ == "__main__":
    print(render_caching(caching_rows()))
    print()
    print(render_churn(churn_rows()))
