"""Shared configuration for the benchmark suite.

Run with:  pytest benchmarks/ --benchmark-only -s

Each file regenerates one paper artifact (table / figure / prose claim —
see the experiment index in DESIGN.md) and prints it as an ASCII table;
the pytest-benchmark fixture additionally times the representative
operation of that experiment.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def report():
    """Print a rendered experiment table (visible with -s / on failures)."""

    def _print(text: str) -> None:
        print("\n" + text + "\n")

    return _print
