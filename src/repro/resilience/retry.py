"""Retry with exponential backoff and (deterministic) jitter.

Shard-build workers are the stack's first genuinely parallel failure
domain: a process-pool worker can die, a thread can hit a transient
fault-injection error.  :func:`retry_call` wraps one attempt-able call
with capped exponential backoff — ``base_delay_s * 2**attempt`` bounded
by ``max_delay_s`` — plus full jitter drawn from a caller-supplied
``random.Random``, so tests seed it and the schedule replays exactly.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from typing import TypeVar

from repro.obs.metrics import global_registry

__all__ = ["RetryBudgetExceeded", "retry_call"]

T = TypeVar("T")


class RetryBudgetExceeded(Exception):
    """Internal marker: re-raised as the last attempt's real exception."""


def retry_call(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay_s: float = 0.01,
    max_delay_s: float = 0.5,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    rng: random.Random | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> tuple[T, int]:
    """Call ``fn`` up to ``attempts`` times; returns ``(result, attempts_used)``.

    Backoff before attempt ``k`` (k >= 2) sleeps a jittered
    ``uniform(0, min(max_delay_s, base_delay_s * 2**(k-2)))``.  Only
    exceptions in ``retry_on`` are retried; anything else — and the
    final failure — propagates unchanged.  ``on_retry(attempt, exc)``
    fires before each backoff sleep (attempt counters, logs).
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if rng is None:
        rng = random.Random()
    registry = global_registry()
    for attempt in range(1, attempts + 1):
        try:
            result = fn()
        except retry_on as exc:
            if attempt == attempts:
                raise
            registry.counter("resilience.retry.retries").increment()
            if on_retry is not None:
                on_retry(attempt, exc)
            cap = min(max_delay_s, base_delay_s * (2 ** (attempt - 1)))
            time.sleep(rng.uniform(0.0, cap))
        else:
            return result, attempt
    raise RetryBudgetExceeded  # pragma: no cover - loop always returns/raises
