"""A circuit breaker keyed on consecutive failures.

DAGGER and the index-size-restricted designs treat degraded operating
conditions as first-class; the serving tier does the same with a
classic three-state breaker per protected dependency (here: the snapshot
index).  CLOSED passes everything through; :data:`failure_threshold`
*consecutive* failures trip it OPEN, where calls are refused for
``cooldown_s``; after the cooldown one trial call probes HALF_OPEN —
success closes the breaker, failure re-opens it.

The engine consults :meth:`CircuitBreaker.allow` before querying the
index and serves a degraded (lookup-only, three-valued) answer while the
breaker is open, so a persistently broken index turns into bounded
UNKNOWNs instead of an error storm.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import global_registry

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str = "default",
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._trip_reason = ""

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (open flips to half_open
        lazily, on the first :meth:`allow` after the cooldown)."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?

        OPEN refuses until ``cooldown_s`` has passed, then admits exactly
        one HALF_OPEN trial at a time; its outcome (reported through
        :meth:`record_success` / :meth:`record_failure`) decides whether
        the breaker closes or re-opens.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if time.monotonic() - self._opened_at < self.cooldown_s:
                    return False
                self._state = self.HALF_OPEN
                self._probe_in_flight = False
            # HALF_OPEN: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            global_registry().counter("resilience.breaker.probes").increment()
            return True

    def record_success(self) -> None:
        """A protected call completed: reset failures, close the breaker."""
        with self._lock:
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                global_registry().counter("resilience.breaker.closes").increment()
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._trip_reason = ""

    def record_failure(self) -> None:
        """A protected call failed; trip OPEN at the consecutive threshold."""
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                self._state == self.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            )
            if tripped and self._state != self.OPEN:
                self._state = self.OPEN
                self._opened_at = time.monotonic()
                global_registry().counter("resilience.breaker.trips").increment()
            self._probe_in_flight = False

    def trip(self, reason: str = "") -> None:
        """Force the breaker OPEN now, regardless of failure counts.

        The pre-emptive path: the SLO tracker calls this when burn rates
        breach, so the engine starts serving bounded degraded answers
        *before* queries fail outright.  The normal recovery machinery
        is untouched — after ``cooldown_s`` one HALF_OPEN probe runs and
        a success closes the breaker (the tracker re-trips while the
        burn persists).
        """
        with self._lock:
            if self._state != self.OPEN:
                global_registry().counter("resilience.breaker.trips").increment()
                global_registry().counter(
                    "resilience.breaker.preemptive_trips"
                ).increment()
            self._state = self.OPEN
            self._opened_at = time.monotonic()
            self._consecutive_failures = max(
                self._consecutive_failures, self.failure_threshold
            )
            self._probe_in_flight = False
            self._trip_reason = reason

    def snapshot(self) -> dict[str, object]:
        """State + counters as plain data (metrics/debug payloads)."""
        with self._lock:
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "trip_reason": self._trip_reason,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, state={self.state})"
