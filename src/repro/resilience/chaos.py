"""Deterministic fault injection for the whole query stack.

Robustness claims are only testable if failures can be *produced on
demand*.  This harness registers named **injection points** at the
stack's trust boundaries — persistence reads, shard-build workers,
kernel sweeps, service handlers — and an installed :class:`ChaosPolicy`
decides, from a seeded schedule, whether a given hit of a point

* **delays** (sleeps ``delay_s`` — a slow shard, a stalled disk),
* **errors** (raises :class:`~repro.errors.ChaosInjectedError` — a dead
  worker, a failed read), or
* **corrupts** (deterministically flips bytes in the payload passing
  through — a torn write).

Everything is driven by per-fault ``random.Random`` instances derived
from the policy seed, so a chaos schedule replays identically run to
run; tests assert on exact outcomes, not probabilities.  With no policy
installed (the default), :func:`chaos_point` is a single module-global
``is None`` test — production code pays one branch.

Injection is process-local: points fired inside a ``process`` executor
worker do not see a policy installed in the parent (use the ``thread``
or ``serial`` executors to chaos-test shard builds).
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Iterable
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import ChaosInjectedError
from repro.obs.metrics import global_registry

__all__ = [
    "INJECTION_POINTS",
    "Fault",
    "ChaosPolicy",
    "chaos",
    "chaos_active",
    "chaos_point",
    "install_chaos",
    "uninstall_chaos",
]

#: The registered injection points (name → where it fires).
INJECTION_POINTS: dict[str, str] = {
    "persistence.read": "repro.persistence.load_index, after the payload is read",
    "shard.build_worker": "repro.shard one per-shard index build (worker)",
    "kernels.sweep": "repro.kernels.batch_reachable, before the sweep",
    "service.handler": "repro.service.server, at request dispatch",
    "service.query": "repro.service.engine, inside the timed query path",
    "wal.append": "repro.wal.log, on the framed record before it hits disk",
    "wal.fsync": "repro.wal.log, before the per-policy fsync",
    "wal.replay": "repro.wal.log, on each segment's raw bytes during replay",
}


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: what to do when ``point`` fires.

    ``probability`` gates each hit through the fault's seeded RNG;
    ``after`` skips the first N *matching* hits and ``times`` caps total
    injections — together they express schedules like "fail the second
    and third build attempts only".
    """

    point: str
    kind: str  # "delay" | "error" | "corrupt"
    probability: float = 1.0
    delay_s: float = 0.0
    after: int = 0
    times: int | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("delay", "error", "corrupt"):
            raise ValueError(
                f"fault kind must be delay/error/corrupt, got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    @classmethod
    def parse(cls, spec: str) -> "Fault":
        """``POINT=KIND[:PROB][:MS]`` — the ``repro chaos --fault`` syntax.

        Examples: ``shard.build_worker=error``,
        ``kernels.sweep=delay:1.0:50`` (always, 50 ms),
        ``persistence.read=corrupt:0.5`` (half the reads).
        """
        point, separator, rest = spec.partition("=")
        if not separator or not point or not rest:
            raise ValueError(f"--fault needs POINT=KIND[:PROB][:MS], got {spec!r}")
        parts = rest.split(":")
        kind = parts[0]
        try:
            probability = float(parts[1]) if len(parts) > 1 else 1.0
            delay_s = float(parts[2]) / 1000.0 if len(parts) > 2 else 0.0
        except ValueError:
            raise ValueError(
                f"--fault PROB and MS must be numbers, got {spec!r}"
            ) from None
        if kind == "delay" and delay_s == 0.0:
            delay_s = 0.01
        return cls(point=point, kind=kind, probability=probability, delay_s=delay_s)


class ChaosPolicy:
    """A seeded, replayable schedule of faults over the injection points."""

    def __init__(self, faults: Iterable[Fault], seed: int = 0) -> None:
        self.faults = tuple(faults)
        self.seed = seed
        self._lock = threading.Lock()
        self._rngs = [
            random.Random(f"chaos:{seed}:{position}")
            for position in range(len(self.faults))
        ]
        self._hits = [0] * len(self.faults)
        self._fired = [0] * len(self.faults)

    def decide(self, point: str) -> list[tuple[Fault, random.Random]]:
        """The faults that fire for this hit of ``point`` (seeded, ordered)."""
        firing: list[tuple[Fault, random.Random]] = []
        with self._lock:
            for position, fault in enumerate(self.faults):
                if not _matches(fault.point, point):
                    continue
                hit = self._hits[position]
                self._hits[position] += 1
                if hit < fault.after:
                    continue
                if fault.times is not None and self._fired[position] >= fault.times:
                    continue
                rng = self._rngs[position]
                if fault.probability < 1.0 and rng.random() >= fault.probability:
                    continue
                self._fired[position] += 1
                firing.append((fault, rng))
        return firing

    def injected_counts(self) -> dict[str, int]:
        """Per-fault injection tallies (``point/kind`` → count)."""
        with self._lock:
            counts: dict[str, int] = {}
            for fault, fired in zip(self.faults, self._fired):
                key = f"{fault.point}/{fault.kind}"
                counts[key] = counts.get(key, 0) + fired
        return counts

    def __repr__(self) -> str:
        return f"ChaosPolicy(faults={len(self.faults)}, seed={self.seed})"


def _matches(pattern: str, point: str) -> bool:
    if pattern.endswith("*"):
        return point.startswith(pattern[:-1])
    return pattern == point


_ACTIVE: ChaosPolicy | None = None
_INSTALL_LOCK = threading.Lock()


def install_chaos(policy: ChaosPolicy) -> None:
    """Activate ``policy`` process-wide (tests and the ``repro chaos`` CLI)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = policy


def uninstall_chaos() -> None:
    """Deactivate fault injection (back to the zero-cost no-op path)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = None


def chaos_active() -> bool:
    """Is a policy currently installed?"""
    return _ACTIVE is not None


@contextmanager
def chaos(policy: ChaosPolicy):
    """Install ``policy`` for the extent of a ``with`` block (test helper)."""
    install_chaos(policy)
    try:
        yield policy
    finally:
        uninstall_chaos()


def chaos_point(name: str, payload: bytes | None = None) -> bytes | None:
    """Fire the injection point ``name``; returns the (possibly corrupted)
    ``payload``.

    Call sites pass payloads only where corruption makes sense
    (persistence reads); elsewhere the return value is ignored.  Order
    when multiple faults fire on one hit: delays sleep first, corruption
    mutates next, errors raise last — so an error fault still observes
    the delay a paired slow-fault asked for.
    """
    policy = _ACTIVE
    if policy is None:
        return payload
    firing = policy.decide(name)
    if not firing:
        return payload
    registry = global_registry()
    error: ChaosInjectedError | None = None
    for fault, rng in firing:
        registry.counter(f"chaos.injected.{fault.kind}").increment()
        if fault.kind == "delay":
            time.sleep(fault.delay_s)
        elif fault.kind == "corrupt":
            if payload:
                payload = _corrupt(payload, rng)
        else:
            error = ChaosInjectedError(
                fault.message
                or f"chaos: injected {fault.kind} at {name!r} "
                f"(seed={policy.seed})"
            )
    if error is not None:
        raise error
    return payload


def _corrupt(payload: bytes, rng: random.Random) -> bytes:
    """Deterministically flip a few bytes of ``payload`` (never a no-op)."""
    mutated = bytearray(payload)
    flips = max(1, min(8, len(mutated) // 16))
    for _ in range(flips):
        position = rng.randrange(len(mutated))
        mutated[position] ^= 1 + rng.randrange(255)
    return bytes(mutated)
