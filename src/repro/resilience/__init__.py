"""Resilience primitives threaded through the whole query stack.

The cross-cutting robustness layer of the serving story: deadlines with
cooperative cancellation (:mod:`repro.resilience.deadline`), a
consecutive-failure circuit breaker (:mod:`repro.resilience.breaker`),
deterministic fault injection (:mod:`repro.resilience.chaos`), and
seeded retry with exponential backoff (:mod:`repro.resilience.retry`).
Everything meters through ``repro.obs`` (``resilience.deadline.*``,
``resilience.breaker.*``, ``resilience.retry.*``, ``chaos.injected.*``)
and is strictly additive on the happy path: no deadline, no policy, and
a closed breaker cost one branch each.
"""

from repro.errors import ChaosInjectedError, DeadlineExceeded, ServiceOverloadedError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.chaos import (
    INJECTION_POINTS,
    ChaosPolicy,
    Fault,
    chaos,
    chaos_active,
    chaos_point,
    install_chaos,
    uninstall_chaos,
)
from repro.resilience.deadline import (
    CHECK_STRIDE,
    Deadline,
    current_deadline,
    deadline_scope,
    remaining_ms,
)
from repro.resilience.retry import retry_call

__all__ = [
    "CHECK_STRIDE",
    "ChaosInjectedError",
    "ChaosPolicy",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "Fault",
    "INJECTION_POINTS",
    "ServiceOverloadedError",
    "chaos",
    "chaos_active",
    "chaos_point",
    "current_deadline",
    "deadline_scope",
    "install_chaos",
    "remaining_ms",
    "retry_call",
    "uninstall_chaos",
]
