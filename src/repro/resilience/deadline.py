"""Deadline propagation with cooperative cancellation.

The survey's partial indexes (GRAIL, Ferrari) exist because exact
answers can be too expensive; a serving system needs the same lever at
runtime — *bounded work per query*.  This module provides it as an
ambient, contextvar-scoped :class:`Deadline`:

* :func:`deadline_scope` installs a deadline for the dynamic extent of a
  ``with`` block (propagating to everything the block calls, including
  code that has never heard of deadlines);
* hot loops fetch :func:`current_deadline` **once** and, only when one
  is set, call :meth:`Deadline.check` at a bounded stride
  (:data:`CHECK_STRIDE` iterations) — so the no-deadline happy path pays
  a single ``is not None`` branch, or nothing at all where the loop is
  duplicated;
* an expired check raises the typed
  :class:`~repro.errors.DeadlineExceeded`, which the serving tier
  degrades to an UNKNOWN answer rather than an error.

Contextvars make the deadline thread- and task-local: each service
worker thread carries its own request deadline without any plumbing
through the index APIs.
"""

from __future__ import annotations

import contextvars
import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.errors import DeadlineExceeded
from repro.obs.metrics import global_registry

__all__ = [
    "CHECK_STRIDE",
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "remaining_ms",
]

#: Iterations between deadline checks inside tight loops.  Chosen so the
#: clock read (≈50 ns) amortises to noise against per-iteration work.
CHECK_STRIDE = 256

_DEADLINE: contextvars.ContextVar["Deadline | None"] = contextvars.ContextVar(
    "repro_deadline", default=None
)


class Deadline:
    """An absolute monotonic expiry with a typed overrun.

    Constructed from a relative budget (``Deadline(timeout_ms=50)``) or
    an absolute :func:`time.monotonic` instant (``expires_at=...``).
    """

    __slots__ = ("expires_at", "timeout_ms")

    def __init__(
        self,
        timeout_ms: float | None = None,
        expires_at: float | None = None,
    ) -> None:
        if (timeout_ms is None) == (expires_at is None):
            raise ValueError("Deadline needs exactly one of timeout_ms/expires_at")
        if expires_at is None:
            if timeout_ms < 0:
                raise ValueError(f"timeout_ms must be >= 0, got {timeout_ms}")
            expires_at = time.monotonic() + timeout_ms / 1000.0
            self.timeout_ms = float(timeout_ms)
        else:
            self.timeout_ms = max(0.0, (expires_at - time.monotonic()) * 1000.0)
        self.expires_at = expires_at

    def remaining_s(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """True once the budget has run out."""
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out."""
        if time.monotonic() >= self.expires_at:
            global_registry().counter("resilience.deadline.expired").increment()
            raise DeadlineExceeded(
                f"deadline exceeded (budget {self.timeout_ms:.1f}ms)"
            )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining_s() * 1e3:.1f}ms)"


def current_deadline() -> Deadline | None:
    """The ambient deadline of this thread/task, or None.

    Hot loops call this **once** before iterating and branch on the
    result, not per iteration.
    """
    return _DEADLINE.get()


def remaining_ms() -> float | None:
    """Milliseconds left on the ambient deadline, or None without one."""
    deadline = _DEADLINE.get()
    return None if deadline is None else deadline.remaining_s() * 1000.0


@contextmanager
def deadline_scope(timeout_ms: float | None) -> Iterator[Deadline | None]:
    """Install a deadline for the dynamic extent of the block.

    ``timeout_ms=None`` is a no-op passthrough (keeps call sites
    unconditional).  Nested scopes keep the *tighter* deadline: an inner
    scope never extends an outer budget.
    """
    if timeout_ms is None:
        yield _DEADLINE.get()
        return
    deadline = Deadline(timeout_ms=timeout_ms)
    outer = _DEADLINE.get()
    if outer is not None and outer.expires_at < deadline.expires_at:
        deadline = outer
    token = _DEADLINE.set(deadline)
    global_registry().counter("resilience.deadline.scopes").increment()
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)
