"""repro — reachability indexes on graphs.

A complete, from-scratch reproduction of the index families surveyed in
*"An Overview of Reachability Indexes on Graphs"* (Zhang, Bonifati, Özsu —
SIGMOD-Companion 2023): the tree-cover, 2-hop and approximate-TC plain
indexes of §3 and the path-constrained (alternation / concatenation)
indexes of §4, behind one unified API.

Quickstart::

    from repro import DiGraph, plain_index

    graph = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
    index = plain_index("PLL").build(graph)
    assert index.query(0, 3)
"""

from repro.advisor import Advice, Recommendation, advise
from repro.core import (
    CondensedIndex,
    Explanation,
    IndexMetadata,
    LabelConstrainedIndex,
    ReachabilityIndex,
    TriState,
    all_labeled_indexes,
    all_plain_indexes,
    labeled_index,
    plain_index,
)
from repro.obs import (
    build_phase,
    disable_tracing,
    enable_tracing,
    global_registry,
)
from repro.errors import (
    ConstraintSyntaxError,
    EdgeError,
    GraphError,
    IndexBuildError,
    NotADAGError,
    PersistenceError,
    QueryError,
    ReproError,
    ServiceError,
    UnsupportedConstraintError,
    UnsupportedOperationError,
    VertexError,
)
from repro.graphs import DiGraph, LabeledDiGraph, condense
from repro.traversal import (
    bfs_reachable,
    bibfs_reachable,
    dfs_reachable,
    parse_constraint,
    rpq_reachable,
)

__version__ = "1.0.0"

__all__ = [
    "Advice",
    "Recommendation",
    "advise",
    "CondensedIndex",
    "Explanation",
    "IndexMetadata",
    "build_phase",
    "disable_tracing",
    "enable_tracing",
    "global_registry",
    "LabelConstrainedIndex",
    "ReachabilityIndex",
    "TriState",
    "all_labeled_indexes",
    "all_plain_indexes",
    "labeled_index",
    "plain_index",
    "ConstraintSyntaxError",
    "EdgeError",
    "GraphError",
    "IndexBuildError",
    "NotADAGError",
    "PersistenceError",
    "QueryError",
    "ReproError",
    "ServiceError",
    "UnsupportedConstraintError",
    "UnsupportedOperationError",
    "VertexError",
    "DiGraph",
    "LabeledDiGraph",
    "condense",
    "bfs_reachable",
    "bibfs_reachable",
    "dfs_reachable",
    "parse_constraint",
    "rpq_reachable",
    "__version__",
]
