"""The advisor's cost model: micro-probes calibrate the analytic priors.

A :class:`Prior` ranks families on asymptotics; this module turns that
ranking into *predicted seconds and bytes* by actually building each
viable candidate on a probe graph and timing a handful of queries
against it.  Two regimes keep probing time-boxed without ever killing a
build mid-flight (pure-Python builds cannot be safely interrupted):

* small graphs (≤ :data:`PROBE_MAX_VERTICES` vertices) are probed
  whole — measured bytes and build time are exact;
* larger graphs are probed on a random induced subgraph of that size,
  and bytes/build time are extrapolated through each family's
  ``size_exponent`` (``bytes ≈ probe_bytes · (n/probe_n)^exponent`` —
  quadratic for the closure, near-linear for per-vertex labels).

The final score is the quantity the service actually pays per query:

    score = predicted_query_seconds + predicted_build_seconds / amortize_queries

so build cost matters exactly as much as the expected query volume says
it should.  Budget filtering uses predicted bytes from the same probe.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro import accel
from repro.advisor.features import GraphFeatures
from repro.advisor.rules import Prior
from repro.core.base import ReachabilityIndex
from repro.core.condensed import CondensedIndex
from repro.core.registry import plain_index
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import is_dag

__all__ = [
    "PROBE_MAX_VERTICES",
    "CostEstimate",
    "ProbeResult",
    "build_family",
    "estimate_costs",
    "micro_probe",
    "probe_graph",
]

# Probe builds stay under this many vertices so even the quadratic
# families finish in milliseconds — the time-box is enforced by input
# size, not by interrupting threads.
PROBE_MAX_VERTICES = 400

# Default amortisation horizon: the advisor assumes the index will
# serve about a million queries before the graph changes shape enough
# to re-advise, so one second of build time is worth one microsecond
# of per-query latency.
DEFAULT_AMORTIZE_QUERIES = 1_000_000


def build_family(
    name: str, graph: DiGraph, params: dict[str, object] | None = None
) -> ReachabilityIndex:
    """Build a registered family on ``graph``, condensing when required.

    DAG-only families get the :class:`CondensedIndex` wrapper on cyclic
    input — the same lifting the CLI and the service apply — so every
    recommendation is buildable on the graph it was made for.
    """
    cls = plain_index(name)
    params = dict(params or {})
    if cls.metadata.input_kind == "DAG" and not is_dag(graph):
        return CondensedIndex.build(graph, inner=cls, **params)
    return cls.build(graph, **params)


@dataclass(frozen=True)
class ProbeResult:
    """Measured numbers from one micro-probe build."""

    family: str
    probe_vertices: int
    probe_edges: int
    build_seconds: float
    estimated_bytes: int
    entries: int
    query_p50_seconds: float
    sampled: bool  # True when probed on an induced subgraph
    error: str | None = None
    #: Kernel backend active during the probe ("python" or "numpy").
    backend: str = "python"

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> dict[str, object]:
        return {
            "family": self.family,
            "probe_vertices": self.probe_vertices,
            "probe_edges": self.probe_edges,
            "build_seconds": self.build_seconds,
            "estimated_bytes": self.estimated_bytes,
            "entries": self.entries,
            "query_p50_seconds": self.query_p50_seconds,
            "sampled": self.sampled,
            "error": self.error,
            "backend": self.backend,
        }


@dataclass(frozen=True)
class CostEstimate:
    """One family's predicted costs, analytic prior + optional probe."""

    prior: Prior
    probe: ProbeResult | None
    predicted_build_seconds: float
    predicted_bytes: int
    predicted_query_seconds: float
    score: float
    fits_budget: bool

    @property
    def family(self) -> str:
        return self.prior.family

    def as_dict(self) -> dict[str, object]:
        return {
            "family": self.family,
            "predicted_build_seconds": self.predicted_build_seconds,
            "predicted_bytes": self.predicted_bytes,
            "predicted_query_seconds": self.predicted_query_seconds,
            "score": self.score,
            "fits_budget": self.fits_budget,
            "probe": self.probe.as_dict() if self.probe else None,
            "prior": self.prior.as_dict(),
        }


def probe_graph(
    graph: DiGraph, max_vertices: int = PROBE_MAX_VERTICES, seed: int = 0
) -> tuple[DiGraph, bool]:
    """The graph micro-probes build on: the input itself when small,
    otherwise a random induced subgraph of ``max_vertices`` vertices."""
    n = graph.num_vertices
    if n <= max_vertices:
        return graph, False
    rng = random.Random(seed)
    keep = sorted(rng.sample(range(n), max_vertices))
    remap = {v: i for i, v in enumerate(keep)}
    kept = set(keep)
    edges = [
        (remap[u], remap[v])
        for u in keep
        for v in graph.out_neighbors(u)
        if v in kept
    ]
    return DiGraph(max_vertices, edges), True


def _probe_pairs(graph: DiGraph, count: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    n = graph.num_vertices
    if n == 0:
        return []
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def micro_probe(
    prior: Prior,
    graph: DiGraph,
    sampled: bool,
    pairs: list[tuple[int, int]],
) -> ProbeResult:
    """Build one family on the probe graph and measure it.

    Never raises: a family that fails to build on the probe (bad
    params, unexpected input shape) comes back with ``error`` set and
    is dropped from the ranking rather than sinking the whole advise
    call.
    """
    try:
        start = time.perf_counter()
        index = build_family(prior.family, graph, dict(prior.index_params))
        build_seconds = time.perf_counter() - start
        for s, t in pairs:  # warm-up pass: JIT-less, but caches/branches settle
            index.query(s, t)
        samples = []
        for s, t in pairs:
            tick = time.perf_counter_ns()
            index.query(s, t)
            samples.append(time.perf_counter_ns() - tick)
        samples.sort()
        p50 = samples[len(samples) // 2] / 1e9 if samples else 0.0
        return ProbeResult(
            family=prior.family,
            probe_vertices=graph.num_vertices,
            probe_edges=graph.num_edges,
            build_seconds=build_seconds,
            estimated_bytes=index.estimated_bytes(),
            entries=index.size_in_entries(),
            query_p50_seconds=p50,
            sampled=sampled,
            backend=accel.backend_name(),
        )
    except Exception as exc:  # noqa: BLE001 - probe failures must not sink advise()
        return ProbeResult(
            family=prior.family,
            probe_vertices=graph.num_vertices,
            probe_edges=graph.num_edges,
            build_seconds=0.0,
            estimated_bytes=0,
            entries=0,
            query_p50_seconds=0.0,
            sampled=sampled,
            error=f"{type(exc).__name__}: {exc}",
            backend=accel.backend_name(),
        )


# When no probe ran, analytic units are converted to seconds/bytes at
# these deliberately rough rates (pure-Python edge visit, pickled label
# entry) so scores stay comparable across probed and unprobed paths.
_SECONDS_PER_BUILD_UNIT = 2e-7
_SECONDS_PER_QUERY_UNIT = 1.5e-6
_BYTES_PER_ENTRY = 40


def _from_probe(
    prior: Prior, probe: ProbeResult, full: GraphFeatures
) -> tuple[float, int, float]:
    """Extrapolate probe measurements to the full graph."""
    if not probe.sampled:
        return probe.build_seconds, probe.estimated_bytes, probe.query_p50_seconds
    scale = max(1.0, full.num_vertices / max(1, probe.probe_vertices))
    size_scale = scale**prior.size_exponent
    # Build work tracks index size plus a linear pass over the edges.
    build = probe.build_seconds * max(
        size_scale, full.num_edges / max(1, probe.probe_edges)
    )
    # Per-query cost grows with label size per vertex, which the size
    # exponent already captures relative to n.
    query = probe.query_p50_seconds * scale ** max(0.0, prior.size_exponent - 1.0)
    return build, int(probe.estimated_bytes * size_scale), query


def estimate_costs(
    graph: DiGraph,
    features: GraphFeatures,
    ranked_priors: list[Prior],
    budget_bytes: int | None = None,
    probe: bool = True,
    probe_pairs: int = 64,
    amortize_queries: int = DEFAULT_AMORTIZE_QUERIES,
    seed: int = 0,
) -> list[CostEstimate]:
    """Score every viable prior, best (lowest score) first.

    With ``probe=True`` each family is built once on the shared probe
    graph and its measured numbers replace the analytic ones; families
    whose probe fails are dropped.  Excluded priors (e.g. TC past the
    materialisation cap) are never built but still appear in the
    returned list — last, with infinite score — so the rationale can
    name them.
    """
    pg, sampled = (probe_graph(graph, seed=seed) if probe else (graph, False))
    pairs = _probe_pairs(pg, probe_pairs, seed) if probe else []
    estimates: list[CostEstimate] = []
    for prior in ranked_priors:
        if not prior.viable:
            estimates.append(
                CostEstimate(
                    prior=prior,
                    probe=None,
                    predicted_build_seconds=float("inf"),
                    predicted_bytes=0,
                    predicted_query_seconds=float("inf"),
                    score=float("inf"),
                    fits_budget=False,
                )
            )
            continue
        result: ProbeResult | None = None
        if probe:
            result = micro_probe(prior, pg, sampled, pairs)
            if not result.ok:
                estimates.append(
                    CostEstimate(
                        prior=prior,
                        probe=result,
                        predicted_build_seconds=float("inf"),
                        predicted_bytes=0,
                        predicted_query_seconds=float("inf"),
                        score=float("inf"),
                        fits_budget=False,
                    )
                )
                continue
            build, size_bytes, query = _from_probe(prior, result, features)
        else:
            build = prior.build_units * _SECONDS_PER_BUILD_UNIT
            size_bytes = int(prior.size_entries * _BYTES_PER_ENTRY)
            query = prior.query_units * _SECONDS_PER_QUERY_UNIT
        fits = budget_bytes is None or size_bytes <= budget_bytes
        score = query + build / max(1, amortize_queries)
        estimates.append(
            CostEstimate(
                prior=prior,
                probe=result,
                predicted_build_seconds=build,
                predicted_bytes=size_bytes,
                predicted_query_seconds=query,
                score=score,
                fits_budget=fits,
            )
        )
    estimates.sort(key=lambda e: (not e.fits_budget, e.score))
    return estimates
