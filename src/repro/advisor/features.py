"""Feature extraction: the signals the survey's taxonomy is stated in.

The survey's central claim is two-dimensional — *which index wins* is a
function of **graph shape** (density, DAG depth/width after
condensation, SCC structure, degree skew, label cardinality) and
**workload shape** (positive/negative mix, hot-vertex concentration,
read/write ratio).  This module reduces both dimensions to small frozen
feature vectors the cost model (:mod:`repro.advisor.cost`) and the
ruleset (:mod:`repro.advisor.rules`) score against.

Graph features come from one structural pass (Tarjan condensation plus
topological levelling, the same machinery :mod:`repro.graphs.stats`
uses); workload features come either from an explicit query sample
(e.g. :func:`repro.workloads.queries.plain_workload`, or raw ``(s, t)``
pairs from a query log) or from the live telemetry the obs layer
already collects — ``index.route.*`` counters, the service's per-route
query tallies and cache statistics — via :func:`workload_from_metrics`.
"""

from __future__ import annotations

import random
import statistics
from collections import Counter
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.graphs.scc import condense, strongly_connected_components
from repro.graphs.topo import topological_levels
from repro.traversal.online import descendants

__all__ = [
    "GraphFeatures",
    "WorkloadFeatures",
    "graph_features",
    "workload_features",
    "workload_from_metrics",
]


@dataclass(frozen=True)
class GraphFeatures:
    """The graph-shape axis of the advisor's decision space."""

    num_vertices: int
    num_edges: int
    density: float  # m / n(n-1)
    avg_degree: float  # m / n
    max_out_degree: int
    max_in_degree: int
    degree_skew: float  # coefficient of variation of out-degrees
    is_dag: bool
    num_sccs: int
    largest_scc_fraction: float  # |largest SCC| / n
    condensation_vertices: int
    condensation_edges: int
    dag_depth: int  # longest path in the condensation, in levels
    dag_width: int  # widest topological level of the condensation
    non_tree_fraction: float  # condensation edges beyond a spanning forest
    reachability_density: float  # sampled fraction of reachable pairs
    label_cardinality: int  # 0 for plain graphs

    @property
    def aspect_ratio(self) -> float:
        """depth / width of the condensation — >1 deep-and-narrow, <1 wide."""
        return self.dag_depth / max(1, self.dag_width)

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable plain data (the ``Advice`` payload shape)."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "density": self.density,
            "avg_degree": self.avg_degree,
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "degree_skew": self.degree_skew,
            "is_dag": self.is_dag,
            "num_sccs": self.num_sccs,
            "largest_scc_fraction": self.largest_scc_fraction,
            "condensation_vertices": self.condensation_vertices,
            "condensation_edges": self.condensation_edges,
            "dag_depth": self.dag_depth,
            "dag_width": self.dag_width,
            "non_tree_fraction": self.non_tree_fraction,
            "reachability_density": self.reachability_density,
            "label_cardinality": self.label_cardinality,
        }


@dataclass(frozen=True)
class WorkloadFeatures:
    """The workload axis: what the queries look like, not the graph."""

    num_queries: int
    positive_fraction: float | None  # None when ground truth is unknown
    distinct_pair_fraction: float  # unique (s, t) pairs / volume
    hot_pair_fraction: float  # share of volume on the top-10% pairs
    cache_hit_rate: float | None  # from telemetry, when available
    update_fraction: float | None  # updates / (updates + queries)

    @property
    def negative_heavy(self) -> bool:
        """True when most queries are known to be non-reachable (§5)."""
        return self.positive_fraction is not None and self.positive_fraction < 0.4

    @property
    def skewed(self) -> bool:
        """True when a small hot set dominates query volume."""
        return self.hot_pair_fraction > 0.5

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable plain data (the ``Advice`` payload shape)."""
        return {
            "num_queries": self.num_queries,
            "positive_fraction": self.positive_fraction,
            "distinct_pair_fraction": self.distinct_pair_fraction,
            "hot_pair_fraction": self.hot_pair_fraction,
            "cache_hit_rate": self.cache_hit_rate,
            "update_fraction": self.update_fraction,
        }


def graph_features(
    graph: DiGraph | LabeledDiGraph,
    sample_sources: int = 48,
    seed: int = 0,
) -> GraphFeatures:
    """Profile a graph for the advisor (one condensation + one sampling pass).

    Accepts a plain or labeled graph; labeled graphs are profiled on
    their label-forgetting projection with ``label_cardinality`` set.
    """
    label_cardinality = 0
    if isinstance(graph, LabeledDiGraph):
        label_cardinality = len(graph.labels())
        graph = graph.to_plain()
    n = graph.num_vertices
    m = graph.num_edges
    out_degrees = [graph.out_degree(v) for v in graph.vertices()]
    mean_out = m / n if n else 0.0
    skew = (
        statistics.pstdev(out_degrees) / mean_out
        if n and mean_out > 0
        else 0.0
    )
    components = strongly_connected_components(graph)
    acyclic = all(len(c) == 1 for c in components)
    largest = max((len(c) for c in components), default=0)
    if acyclic:
        dag = graph
    else:
        dag = condense(graph).dag
    levels = topological_levels(dag)
    depth = max(levels, default=0)
    width = max(Counter(levels).values(), default=0)
    nc, mc = dag.num_vertices, dag.num_edges
    non_tree = max(0, mc - max(0, nc - 1)) / mc if mc else 0.0
    if n == 0:
        reach_density = 0.0
    else:
        rng = random.Random(seed)
        chosen = (
            list(graph.vertices())
            if n <= sample_sources
            else rng.sample(list(graph.vertices()), sample_sources)
        )
        reachable_pairs = sum(len(descendants(graph, v)) - 1 for v in chosen)
        reach_density = reachable_pairs / (len(chosen) * max(1, n - 1))
    return GraphFeatures(
        num_vertices=n,
        num_edges=m,
        density=m / (n * (n - 1)) if n > 1 else 0.0,
        avg_degree=mean_out,
        max_out_degree=max(out_degrees, default=0),
        max_in_degree=max((graph.in_degree(v) for v in graph.vertices()), default=0),
        degree_skew=skew,
        is_dag=acyclic,
        num_sccs=len(components),
        largest_scc_fraction=largest / n if n else 0.0,
        condensation_vertices=nc,
        condensation_edges=mc,
        dag_depth=depth,
        dag_width=width,
        non_tree_fraction=non_tree,
        reachability_density=reach_density,
        label_cardinality=label_cardinality,
    )


def _pairs_of(workload: Sequence[object]) -> tuple[list[tuple[int, int]], float | None]:
    """Normalise a workload sample to (s, t) pairs plus its positive share.

    Accepts :class:`~repro.workloads.queries.PlainQuery` objects (ground
    truth known) or raw ``(source, target)`` tuples from a query log
    (ground truth unknown → ``positive_fraction`` is None).
    """
    pairs: list[tuple[int, int]] = []
    positives = 0
    truths = 0
    for query in workload:
        if hasattr(query, "source"):
            pairs.append((query.source, query.target))
            reachable = getattr(query, "reachable", None)
            if reachable is not None:
                truths += 1
                positives += bool(reachable)
        else:
            s, t = query  # type: ignore[misc]
            pairs.append((int(s), int(t)))
    positive_fraction = positives / truths if truths else None
    return pairs, positive_fraction


def workload_features(
    workload: Sequence[object] | None = None,
    metrics: Mapping[str, object] | None = None,
) -> WorkloadFeatures | None:
    """Summarise a query sample (and/or live telemetry) for the advisor.

    ``workload`` is a sequence of queries (``PlainQuery`` or raw pairs);
    ``metrics`` is a nested metrics dict as produced by
    :meth:`~repro.service.engine.ReachabilityService.metrics_dict`.
    Returns None when neither carries any signal.
    """
    if workload:
        pairs, positive_fraction = _pairs_of(workload)
        volume = Counter(pairs)
        distinct = len(volume)
        hot_count = max(1, distinct // 10)
        hot_volume = sum(count for _pair, count in volume.most_common(hot_count))
        features = WorkloadFeatures(
            num_queries=len(pairs),
            positive_fraction=positive_fraction,
            distinct_pair_fraction=distinct / len(pairs),
            hot_pair_fraction=hot_volume / len(pairs),
            cache_hit_rate=_cache_hit_rate(metrics),
            update_fraction=_update_fraction(metrics),
        )
        return features
    if metrics:
        return workload_from_metrics(metrics)
    return None


def workload_from_metrics(metrics: Mapping[str, object]) -> WorkloadFeatures | None:
    """Workload features from live service telemetry alone.

    Uses the ``service.queries.*`` route counters for volume, the cache
    statistics for hot-set concentration (a high hit rate *is* the
    hot-pair signal once per-pair identities are aggregated away), and
    ``service.updates_applied`` for the read/write ratio.
    """
    queries = _query_volume(metrics)
    if queries <= 0:
        return None
    hit_rate = _cache_hit_rate(metrics)
    return WorkloadFeatures(
        num_queries=queries,
        positive_fraction=None,
        distinct_pair_fraction=1.0 - (hit_rate or 0.0),
        hot_pair_fraction=hit_rate or 0.0,
        cache_hit_rate=hit_rate,
        update_fraction=_update_fraction(metrics),
    )


def _nested_get(metrics: Mapping[str, object], *path: str) -> object | None:
    node: object = metrics
    for key in path:
        if not isinstance(node, Mapping) or key not in node:
            return None
        node = node[key]
    return node


def _query_volume(metrics: Mapping[str, object]) -> int:
    queries = _nested_get(metrics, "service", "queries")
    if not isinstance(queries, Mapping):
        return 0
    return sum(int(v) for v in queries.values() if isinstance(v, (int, float)))


def _cache_hit_rate(metrics: Mapping[str, object] | None) -> float | None:
    if not metrics:
        return None
    rate = _nested_get(metrics, "cache", "hit_rate")
    return float(rate) if isinstance(rate, (int, float)) else None


def _update_fraction(metrics: Mapping[str, object] | None) -> float | None:
    if not metrics:
        return None
    updates = _nested_get(metrics, "service", "updates_applied")
    if not isinstance(updates, (int, float)):
        return None
    queries = _query_volume(metrics)
    total = float(updates) + queries
    return float(updates) / total if total > 0 else None
