"""repro.advisor — workload-adaptive index selection (survey §6 applied).

The survey's conclusion is that no reachability index dominates: the
winner depends on graph shape and workload mix.  This package operationalises
that finding as an *advisor*: profile the graph and the query log
(:mod:`~repro.advisor.features`), rank the registered families with
taxonomy-derived priors (:mod:`~repro.advisor.rules`), calibrate the
ranking with time-boxed micro-probe builds (:mod:`~repro.advisor.cost`),
and return a ranked, budget-aware :class:`~repro.advisor.advise.Advice`
(:func:`~repro.advisor.advise.advise`).  The service layer re-runs the
same pipeline online (:mod:`repro.service.advisor`) to swap indexes as
telemetry drifts.
"""

from repro.advisor.advise import Advice, Recommendation, advise
from repro.advisor.cost import (
    PROBE_MAX_VERTICES,
    CostEstimate,
    ProbeResult,
    build_family,
    estimate_costs,
    micro_probe,
    probe_graph,
)
from repro.advisor.features import (
    GraphFeatures,
    WorkloadFeatures,
    graph_features,
    workload_features,
    workload_from_metrics,
)
from repro.advisor.rules import DEFAULT_CANDIDATES, NO_FALSE_NEGATIVE, Prior, priors

__all__ = [
    "Advice",
    "Recommendation",
    "advise",
    "PROBE_MAX_VERTICES",
    "CostEstimate",
    "ProbeResult",
    "build_family",
    "estimate_costs",
    "micro_probe",
    "probe_graph",
    "GraphFeatures",
    "WorkloadFeatures",
    "graph_features",
    "workload_features",
    "workload_from_metrics",
    "DEFAULT_CANDIDATES",
    "NO_FALSE_NEGATIVE",
    "Prior",
    "priors",
]
