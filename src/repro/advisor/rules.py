"""The advisor's ruleset: analytic priors from the survey's taxonomy.

Every candidate family gets a :class:`Prior` — order-of-magnitude
predictions for build cost, label size, and per-query cost, stated in
abstract *units* so they rank families against each other before any
micro-probe runs.  The formulas are the survey's asymptotics made
concrete: transitive closure is ``O(n·m)`` build and ``O(n²)`` space,
interval/tree-cover labels are ``O(k·n)``, 2-hop labellings sit between
linear and quadratic depending on how well hub vertices cover paths.

Workload shape then *adjusts* the priors: §5's observation that
pruned-search families (GRAIL, Ferrari, BFL, IP, Feline, Preach,
O'Reach, DBL) answer negative queries from the filter alone but pay a
guided DFS on positives is encoded as a query-cost multiplier keyed to
``positive_fraction``; update-heavy telemetry penalises static families
that would force full rebuilds.

The priors deliberately stay crude — their job is to *order* the probe
queue and to carry the ranking when probing is disabled, not to predict
wall-clock times.  :mod:`repro.advisor.cost` replaces them with
measured numbers whenever probes run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.advisor.features import GraphFeatures, WorkloadFeatures

__all__ = [
    "DEFAULT_CANDIDATES",
    "NO_FALSE_NEGATIVE",
    "Prior",
    "priors",
]

# The families the advisor considers unless the caller narrows the set.
# One representative per taxonomy cell that scales past toy graphs:
# full materialisation (TC), 2-hop labellings (PLL, TOL), interval /
# tree covers (GRAIL, Ferrari, Tree cover), and constant-size filters
# (BFL, IP, Feline, O'Reach).
DEFAULT_CANDIDATES: tuple[str, ...] = (
    "TC",
    "PLL",
    "TOL",
    "GRAIL",
    "Ferrari",
    "BFL",
    "IP",
    "Feline",
    "O'Reach",
    "Tree cover",
)

# Partial families whose MAYBE never hides a reachable pair — safe to
# pair with a BFS fallback and still answer exactly (the hybrid the
# advisor recommends under tight byte budgets).
NO_FALSE_NEGATIVE: frozenset[str] = frozenset(
    {"GRAIL", "Ferrari", "BFL", "IP", "Feline", "Preach", "DBL", "O'Reach"}
)


@dataclass(frozen=True)
class Prior:
    """Analytic prediction for one family on one (graph, workload) pair."""

    family: str
    build_units: float  # relative build cost (edges-visited scale)
    size_entries: float  # predicted label entries
    query_units: float  # relative per-query cost (1.0 = hash probe)
    index_params: dict[str, object] = field(default_factory=dict)
    size_exponent: float = 1.0  # bytes ~ n^exponent, for probe extrapolation
    partial: bool = False
    notes: tuple[str, ...] = ()
    excluded: str | None = None  # reason this family was ruled out a priori

    @property
    def viable(self) -> bool:
        return self.excluded is None

    def as_dict(self) -> dict[str, object]:
        return {
            "family": self.family,
            "build_units": self.build_units,
            "size_entries": self.size_entries,
            "query_units": self.query_units,
            "index_params": dict(self.index_params),
            "size_exponent": self.size_exponent,
            "partial": self.partial,
            "notes": list(self.notes),
            "excluded": self.excluded,
        }


# Past this many predicted closure entries the advisor refuses to even
# probe TC — building it would blow the probe time-box on its own.
_TC_ENTRY_CAP = 5_000_000


def _tc_prior(f: GraphFeatures) -> Prior:
    n, m = f.condensation_vertices, f.condensation_edges
    entries = max(1.0, f.reachability_density * n * n)
    notes = ["full materialisation: O(1) lookups, O(n·m) build, O(n²) worst-case space"]
    excluded = None
    if entries > _TC_ENTRY_CAP:
        excluded = (
            f"predicted closure of ~{entries:,.0f} entries exceeds the "
            f"{_TC_ENTRY_CAP:,} materialisation cap"
        )
    if f.largest_scc_fraction > 0.5:
        notes.append(
            "one giant SCC collapses the condensation — the closure is tiny here"
        )
    return Prior(
        family="TC",
        build_units=float(n) * max(1.0, float(m)),
        size_entries=entries,
        query_units=1.0,
        size_exponent=2.0,
        notes=tuple(notes),
        excluded=excluded,
    )


def _two_hop_prior(family: str, f: GraphFeatures) -> Prior:
    n = max(1, f.condensation_vertices)
    m = max(1, f.condensation_edges)
    # Hub labellings degenerate toward the closure on dense wide graphs
    # and stay near-linear on sparse ones; log n per vertex is the
    # usual planted middle ground.
    per_vertex = 2.0 + math.log2(n + 1) * (0.5 + min(1.0, f.reachability_density * 4))
    entries = n * per_vertex
    notes = [
        "2-hop labelling: sorted-list intersection per query, strong on wide/shallow DAGs"
    ]
    if f.aspect_ratio < 1.0:
        notes.append("wide-shallow condensation favours hub coverage")
    build = entries * max(1.0, m / n)
    query = max(2.0, per_vertex / 8.0)
    if family == "TOL":
        build *= 1.3  # total-order bookkeeping on top of pruned PLL
        notes.append("maintains labels under vertex insert/delete (dynamic)")
    return Prior(
        family=family,
        build_units=build,
        size_entries=entries,
        query_units=query,
        size_exponent=1.2,
        notes=tuple(notes),
    )


def _interval_prior(family: str, f: GraphFeatures) -> Prior:
    n = max(1, f.condensation_vertices)
    m = max(1, f.condensation_edges)
    if family == "GRAIL":
        k, partial = 3, True
        params: dict[str, object] = {"k": 3}
        notes = ["k random interval labels; certain-NO on miss, guided DFS on overlap"]
    elif family == "Ferrari":
        k, partial = 3, True
        params = {"k": 3}
        notes = ["budgeted exact+approximate intervals; fewer DFS fallbacks than GRAIL"]
    else:  # Tree cover
        k, partial = 1, False
        params = {}
        notes = [
            "Agrawal et al. optimal tree cover: exact intervals, size grows with "
            "non-tree edges"
        ]
    entries = float(k * n)
    if family == "Tree cover":
        # Every non-tree edge copies interval lists downstream.
        entries *= 1.0 + f.non_tree_fraction * math.log2(n + 1)
    build = float(k * m + k * n)
    query = 1.5 * k
    if f.aspect_ratio > 4.0:
        notes.append("deep-narrow condensation: interval containment is near-exact here")
    return Prior(
        family=family,
        build_units=build,
        size_entries=entries,
        query_units=query,
        index_params=params,
        size_exponent=1.0,
        partial=partial,
        notes=tuple(notes),
    )


def _filter_prior(family: str, f: GraphFeatures) -> Prior:
    n = max(1, f.condensation_vertices)
    m = max(1, f.condensation_edges)
    notes = {
        "BFL": ["Bloom-filter labels: O(1) certain-NO, DFS fallback on MAYBE"],
        "IP": ["independent permutation sketches; supports online edge inserts"],
        "Feline": ["two coordinate orders; dominance miss is certain-NO"],
        "O'Reach": ["supportive-vertex observations resolve most queries in O(1)"],
    }[family]
    params: dict[str, object] = {}
    per_vertex = {"BFL": 2.0, "IP": 2.5, "Feline": 2.0, "O'Reach": 3.0}[family]
    return Prior(
        family=family,
        build_units=float(m) * 2.0 + n,
        size_entries=n * per_vertex,
        query_units=2.0,
        index_params=params,
        size_exponent=1.0,
        partial=True,
        notes=tuple(notes),
    )


def _base_prior(family: str, f: GraphFeatures) -> Prior:
    if family == "TC":
        return _tc_prior(f)
    if family in ("PLL", "TOL"):
        return _two_hop_prior(family, f)
    if family in ("GRAIL", "Ferrari", "Tree cover"):
        return _interval_prior(family, f)
    if family in ("BFL", "IP", "Feline", "O'Reach"):
        return _filter_prior(family, f)
    # Unknown-to-the-ruleset family supplied by the caller: neutral
    # linear prior so probes can still rank it.
    n = max(1, f.condensation_vertices)
    return Prior(
        family=family,
        build_units=float(max(1, f.condensation_edges)),
        size_entries=float(n),
        query_units=4.0,
        notes=("no analytic prior for this family; ranking relies on probes",),
    )


def _apply_workload(prior: Prior, f: GraphFeatures, w: WorkloadFeatures | None) -> Prior:
    if w is None:
        return prior
    notes = list(prior.notes)
    query = prior.query_units
    if prior.partial:
        if w.positive_fraction is not None:
            # Positive queries fall through the filter into a guided
            # DFS whose cost scales with how much graph it must touch.
            fallback = 1.0 + f.avg_degree * math.log2(f.num_vertices + 2)
            query = (
                (1.0 - w.positive_fraction) * prior.query_units
                + w.positive_fraction * fallback
            )
            if w.negative_heavy:
                notes.append(
                    "negative-heavy workload: the certain-NO filter answers most "
                    "queries without traversal"
                )
            elif w.positive_fraction > 0.6:
                notes.append(
                    "positive-heavy workload: expect frequent DFS fallbacks past "
                    "the filter"
                )
    if w.skewed:
        notes.append("hot-pair skew: the service cache absorbs repeated pairs")
    if w.update_fraction is not None and w.update_fraction > 0.05:
        if prior.family in ("TOL", "IP"):
            notes.append("dynamic family: survives the observed update rate in place")
        else:
            notes.append(
                "static family under an update-heavy workload: each batch forces "
                "a rebuild"
            )
    return replace(prior, query_units=query, notes=tuple(notes))


def priors(
    features: GraphFeatures,
    workload: WorkloadFeatures | None = None,
    candidates: tuple[str, ...] | list[str] | None = None,
) -> list[Prior]:
    """Analytic priors for every candidate family, best-first.

    The ordering key mirrors the cost model's score — query units plus
    amortised build units — so the probe queue starts with the
    analytically promising families.
    """
    names = tuple(candidates) if candidates is not None else DEFAULT_CANDIDATES
    out = [_apply_workload(_base_prior(name, features), features, workload) for name in names]
    out.sort(key=lambda p: (not p.viable, p.query_units + p.build_units / 1e6))
    return out
