"""``advise()`` — the advisor's public entry point.

Ties the three layers together: :mod:`repro.advisor.features` profiles
the graph and workload, :mod:`repro.advisor.rules` turns the profile
into analytic priors, :mod:`repro.advisor.cost` calibrates them with
micro-probes, and this module packages the ranked result as an
:class:`Advice` — the recommended family with exact ``index_params``,
ranked alternatives, a human-readable rationale, and the same
provenance envelope the ``BENCH_*.json`` artifacts carry, so a stored
recommendation records which code produced it.

Under a byte budget no complete family fits, the advisor degrades
deliberately rather than failing: it recommends the best-scoring
no-false-negative partial family that *does* fit and attaches a
``hybrid`` plan — filter answers certain-NO instantly, a guided BFS
resolves MAYBE exactly, and a hot-pair cache (sized from workload
skew) absorbs the repeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.advisor.cost import (
    DEFAULT_AMORTIZE_QUERIES,
    CostEstimate,
    build_family,
    estimate_costs,
)
from repro.advisor.features import (
    GraphFeatures,
    WorkloadFeatures,
    graph_features,
    workload_features,
)
from repro.advisor.rules import NO_FALSE_NEGATIVE, priors
from repro.bench.jsonout import provenance
from repro.core.base import ReachabilityIndex
from repro.core.registry import plain_index
from repro.errors import ReproError
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph

__all__ = ["Advice", "Recommendation", "advise"]


@dataclass(frozen=True)
class Recommendation:
    """One ranked candidate: the family, its params, and why."""

    family: str
    index_params: dict[str, object]
    complete: bool
    fits_budget: bool
    predicted_build_seconds: float
    predicted_bytes: int
    predicted_query_seconds: float
    score: float
    rationale: tuple[str, ...]
    probed: bool

    def build(self, graph: DiGraph) -> ReachabilityIndex:
        """Instantiate this recommendation on ``graph`` (condensing
        DAG-only families on cyclic input, like the CLI and service)."""
        return build_family(self.family, graph, dict(self.index_params))

    def as_dict(self) -> dict[str, object]:
        return {
            "family": self.family,
            "index_params": dict(self.index_params),
            "complete": self.complete,
            "fits_budget": self.fits_budget,
            "predicted_build_seconds": self.predicted_build_seconds,
            "predicted_bytes": self.predicted_bytes,
            "predicted_query_seconds": self.predicted_query_seconds,
            "score": self.score,
            "rationale": list(self.rationale),
            "probed": self.probed,
        }


@dataclass(frozen=True)
class Advice:
    """The advisor's full answer: pick, alternatives, and evidence."""

    recommended: Recommendation
    alternatives: tuple[Recommendation, ...]
    features: GraphFeatures
    workload: WorkloadFeatures | None
    budget_bytes: int | None
    hybrid: dict[str, object] | None
    provenance: dict[str, str]

    def as_dict(self) -> dict[str, object]:
        return {
            "recommended": self.recommended.as_dict(),
            "alternatives": [alt.as_dict() for alt in self.alternatives],
            "features": self.features.as_dict(),
            "workload": self.workload.as_dict() if self.workload else None,
            "budget_bytes": self.budget_bytes,
            "hybrid": dict(self.hybrid) if self.hybrid else None,
            "provenance": dict(self.provenance),
        }

    def render_text(self) -> str:
        """The ``repro advise`` terminal report."""
        lines = [
            f"recommended: {self.recommended.family}"
            + (f" {self.recommended.index_params}" if self.recommended.index_params else ""),
            f"  predicted query p50: {self.recommended.predicted_query_seconds * 1e6:.1f} us"
            f"   build: {self.recommended.predicted_build_seconds:.3f} s"
            f"   size: ~{self.recommended.predicted_bytes:,} bytes",
        ]
        if self.budget_bytes is not None:
            verdict = "fits" if self.recommended.fits_budget else "EXCEEDS"
            lines.append(f"  budget: {self.budget_bytes:,} bytes ({verdict})")
        for note in self.recommended.rationale:
            lines.append(f"  - {note}")
        if self.hybrid:
            lines.append("hybrid plan (no complete index fits the budget):")
            for key, value in self.hybrid.items():
                lines.append(f"  {key}: {value}")
        if self.alternatives:
            lines.append("alternatives:")
            for alt in self.alternatives:
                mark = "" if alt.fits_budget else "  [over budget]"
                lines.append(
                    f"  {alt.family:12} score {alt.score * 1e6:9.1f}"
                    f"  ~{alt.predicted_bytes:,} bytes{mark}"
                )
        shape = (
            f"graph: {self.features.num_vertices} vertices, "
            f"{self.features.num_edges} edges, "
            f"{'DAG' if self.features.is_dag else f'{self.features.num_sccs} SCCs'}, "
            f"depth {self.features.dag_depth} x width {self.features.dag_width}"
        )
        lines.append(shape)
        return "\n".join(lines)


def _recommendation(estimate: CostEstimate, extra_notes: tuple[str, ...] = ()) -> Recommendation:
    cls = plain_index(estimate.family)
    return Recommendation(
        family=estimate.family,
        index_params=dict(estimate.prior.index_params),
        complete=cls.metadata.complete,
        fits_budget=estimate.fits_budget,
        predicted_build_seconds=estimate.predicted_build_seconds,
        predicted_bytes=estimate.predicted_bytes,
        predicted_query_seconds=estimate.predicted_query_seconds,
        score=estimate.score,
        rationale=tuple(estimate.prior.notes) + extra_notes,
        probed=estimate.probe is not None and estimate.probe.ok,
    )


def _cache_capacity(workload: WorkloadFeatures | None) -> int:
    """Hot-pair cache size for the hybrid plan, from workload skew."""
    if workload is None or workload.num_queries == 0:
        return 4096
    hot = int(workload.num_queries * max(0.1, workload.hot_pair_fraction))
    return max(1024, min(hot, 65536))


def advise(
    graph: DiGraph | LabeledDiGraph,
    workload: Sequence[object] | None = None,
    budget_bytes: int | None = None,
    *,
    metrics: Mapping[str, object] | None = None,
    candidates: Sequence[str] | None = None,
    probe: bool = True,
    probe_pairs: int = 64,
    amortize_queries: int = DEFAULT_AMORTIZE_QUERIES,
    seed: int = 0,
) -> Advice:
    """Recommend a reachability index for ``graph`` under ``workload``.

    ``workload`` is an optional query sample (``PlainQuery`` objects or
    raw ``(s, t)`` pairs); ``metrics`` optionally supplies live service
    telemetry; ``budget_bytes`` caps the index's serialized size.
    Probing builds each candidate on a ≤400-vertex probe graph — pass
    ``probe=False`` for a purely analytic (instant) answer.
    """
    features = graph_features(graph, seed=seed)
    if isinstance(graph, LabeledDiGraph):
        graph = graph.to_plain()
    if features.num_vertices == 0:
        raise ReproError("cannot advise on an empty graph")
    wl = workload_features(workload, metrics)
    ranked = priors(features, wl, tuple(candidates) if candidates else None)
    estimates = estimate_costs(
        graph,
        features,
        ranked,
        budget_bytes=budget_bytes,
        probe=probe,
        probe_pairs=probe_pairs,
        amortize_queries=amortize_queries,
        seed=seed,
    )
    usable = [e for e in estimates if e.score != float("inf")]
    if not usable:
        raise ReproError(
            "no candidate family could be scored; tried: "
            + ", ".join(p.family for p in ranked)
        )
    fitting = [e for e in usable if e.fits_budget]
    hybrid: dict[str, object] | None = None
    extra: tuple[str, ...] = ()
    if fitting:
        complete_fits = any(
            plain_index(e.family).metadata.complete for e in fitting
        )
        pick = fitting[0]
        if not complete_fits and budget_bytes is not None:
            # Only partial families fit: prefer one whose MAYBE is safe
            # to resolve with a BFS fallback, and say how to run it.
            safe = [e for e in fitting if e.family in NO_FALSE_NEGATIVE]
            pick = safe[0] if safe else fitting[0]
            hybrid = {
                "strategy": "partial index + guided-BFS fallback",
                "filter": pick.family,
                "cache_capacity": _cache_capacity(wl),
                "note": (
                    "no complete index fits the budget; the filter answers "
                    "certain-NO in O(1) and positives fall back to a guided "
                    "search, with a hot-pair cache absorbing repeats"
                ),
            }
            extra = (
                f"chosen as hybrid filter under the {budget_bytes:,}-byte budget",
            )
    else:
        # Nothing fits at all: recommend the smallest candidate and be
        # explicit that the budget is below any index's floor.
        pick = min(usable, key=lambda e: e.predicted_bytes)
        extra = (
            f"smallest candidate at ~{pick.predicted_bytes:,} bytes still "
            f"exceeds the {budget_bytes:,}-byte budget; raise the budget or "
            "fall back to online BFS",
        )
    recommended = _recommendation(pick, extra)
    alternatives = tuple(
        _recommendation(e)
        for e in estimates
        if e is not pick and e.score != float("inf")
    )
    return Advice(
        recommended=recommended,
        alternatives=alternatives[:5],
        features=features,
        workload=wl,
        budget_bytes=budget_bytes,
        hybrid=hybrid,
        provenance=provenance(),
    )
