"""Witness paths: not just *whether* ``t`` is reachable, but *how*.

A reachability answer is more actionable with the path behind it — the
money-laundering chain, the citation trail, the interaction pathway.
These helpers recover witness paths by parent-tracked BFS, including the
path-constrained case (parents tracked through the product automaton, so
the returned label sequence satisfies the constraint).
"""

from __future__ import annotations

from collections import deque

from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.traversal.automaton import build_dfa
from repro.traversal.regex import RegexNode

__all__ = ["witness_path", "constrained_witness_path"]


def witness_path(graph: DiGraph, source: int, target: int) -> list[int] | None:
    """A shortest ``source``-``target`` path as a vertex list, or None.

    ``[source]`` when ``source == target`` (the empty path).
    """
    if source == target:
        return [source]
    parent: dict[int, int] = {source: source}
    queue: deque[int] = deque((source,))
    while queue:
        v = queue.popleft()
        for w in graph.out_neighbors(v):
            if w in parent:
                continue
            parent[w] = v
            if w == target:
                path = [w]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(w)
    return None


def constrained_witness_path(
    graph: LabeledDiGraph,
    source: int,
    target: int,
    constraint: str | RegexNode,
) -> list[tuple[int, str]] | None:
    """A constrained witness as ``[(vertex, label-to-next), …, (target, "")]``.

    The concatenated labels form a word in the constraint's language.
    Returns ``[(source, "")]`` when the empty path satisfies the
    constraint, and None when no satisfying path exists.
    """
    dfa = build_dfa(constraint)
    if source == target and dfa.start in dfa.accepting:
        return [(source, "")]
    start_state = (source, dfa.start)
    # parent[(v, q)] = ((pv, pq), label) — the product-automaton BFS tree
    parent: dict[tuple[int, int], tuple[tuple[int, int], str]] = {
        start_state: (start_state, "")
    }
    queue: deque[tuple[int, int]] = deque((start_state,))
    while queue:
        v, state = queue.popleft()
        transitions = dfa.transitions[state]
        for w, label_id in graph.out_edges(v):
            label = str(graph.label_name(label_id))
            next_state = transitions.get(label)
            if next_state is None:
                continue
            product = (w, next_state)
            if product in parent:
                continue
            parent[product] = ((v, state), label)
            if w == target and next_state in dfa.accepting:
                steps: list[tuple[int, str]] = [(w, "")]
                current = product
                while current != start_state:
                    previous, label_taken = parent[current]
                    steps.append((previous[0], label_taken))
                    current = previous
                steps.reverse()
                return steps
            queue.append(product)
    return None
