"""Finite automata over edge labels.

A path constraint is compiled to a Thompson NFA and then determinised by
subset construction.  The resulting DFA guides graph traversal in
:mod:`repro.traversal.rpq` — the standard online strategy for regular path
queries the survey describes in §2.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.traversal.regex import (
    ConcatNode,
    LabelNode,
    PlusNode,
    RegexNode,
    StarNode,
    UnionNode,
    parse_constraint,
)

__all__ = ["NFA", "DFA", "build_nfa", "build_dfa"]

_EPSILON = None  # label used for epsilon transitions


@dataclass
class NFA:
    """A Thompson-construction NFA; state 0..num_states-1.

    ``transitions[state]`` maps a label (or ``None`` for epsilon) to a list
    of successor states.
    """

    num_states: int
    start: int
    accept: int
    transitions: list[dict[str | None, list[int]]] = field(default_factory=list)

    def epsilon_closure(self, states: frozenset[int]) -> frozenset[int]:
        """All states reachable from ``states`` via epsilon moves."""
        closure = set(states)
        stack = list(states)
        while stack:
            s = stack.pop()
            for nxt in self.transitions[s].get(_EPSILON, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)


class _NFABuilder:
    """Accumulates states/transitions during Thompson construction."""

    def __init__(self) -> None:
        self.transitions: list[dict[str | None, list[int]]] = []

    def new_state(self) -> int:
        self.transitions.append({})
        return len(self.transitions) - 1

    def add(self, src: int, label: str | None, dst: int) -> None:
        self.transitions[src].setdefault(label, []).append(dst)

    def fragment(self, node: RegexNode) -> tuple[int, int]:
        """Compile ``node`` to an (entry, exit) state pair."""
        if isinstance(node, LabelNode):
            entry, exit_ = self.new_state(), self.new_state()
            self.add(entry, node.label, exit_)
            return entry, exit_
        if isinstance(node, ConcatNode):
            l_in, l_out = self.fragment(node.left)
            r_in, r_out = self.fragment(node.right)
            self.add(l_out, _EPSILON, r_in)
            return l_in, r_out
        if isinstance(node, UnionNode):
            entry, exit_ = self.new_state(), self.new_state()
            l_in, l_out = self.fragment(node.left)
            r_in, r_out = self.fragment(node.right)
            self.add(entry, _EPSILON, l_in)
            self.add(entry, _EPSILON, r_in)
            self.add(l_out, _EPSILON, exit_)
            self.add(r_out, _EPSILON, exit_)
            return entry, exit_
        if isinstance(node, StarNode):
            entry, exit_ = self.new_state(), self.new_state()
            i_in, i_out = self.fragment(node.inner)
            self.add(entry, _EPSILON, i_in)
            self.add(entry, _EPSILON, exit_)
            self.add(i_out, _EPSILON, i_in)
            self.add(i_out, _EPSILON, exit_)
            return entry, exit_
        if isinstance(node, PlusNode):
            i_in, i_out = self.fragment(node.inner)
            exit_ = self.new_state()
            self.add(i_out, _EPSILON, i_in)
            self.add(i_out, _EPSILON, exit_)
            return i_in, exit_
        raise TypeError(f"unknown node type {type(node).__name__}")


def build_nfa(constraint: str | RegexNode) -> NFA:
    """Compile a path constraint to a Thompson NFA."""
    node = parse_constraint(constraint)
    builder = _NFABuilder()
    start, accept = builder.fragment(node)
    return NFA(
        num_states=len(builder.transitions),
        start=start,
        accept=accept,
        transitions=builder.transitions,
    )


@dataclass
class DFA:
    """A deterministic automaton over edge labels.

    ``transitions[state]`` maps a label to the successor state; missing
    labels are dead.  State 0 is the start state.
    """

    num_states: int
    start: int
    accepting: frozenset[int]
    transitions: list[dict[str, int]]

    def step(self, state: int, label: str) -> int | None:
        """The successor of ``state`` on ``label``, or None if dead."""
        return self.transitions[state].get(label)

    def accepts(self, word: list[str] | tuple[str, ...]) -> bool:
        """Whether the DFA accepts a whole label sequence."""
        state: int | None = self.start
        for label in word:
            state = self.transitions[state].get(label)
            if state is None:
                return False
        return state in self.accepting


def build_dfa(constraint: str | RegexNode) -> DFA:
    """Compile a path constraint to a DFA via subset construction."""
    nfa = build_nfa(constraint)
    start_set = nfa.epsilon_closure(frozenset((nfa.start,)))
    state_ids: dict[frozenset[int], int] = {start_set: 0}
    transitions: list[dict[str, int]] = [{}]
    pending = [start_set]
    while pending:
        current = pending.pop()
        current_id = state_ids[current]
        # collect all labels leaving this subset
        labels: set[str] = set()
        for s in current:
            for label in nfa.transitions[s]:
                if label is not None:
                    labels.add(label)
        for label in sorted(labels):
            targets: set[int] = set()
            for s in current:
                targets.update(nfa.transitions[s].get(label, ()))
            closure = nfa.epsilon_closure(frozenset(targets))
            if closure not in state_ids:
                state_ids[closure] = len(transitions)
                transitions.append({})
                pending.append(closure)
            transitions[current_id][label] = state_ids[closure]
    accepting = frozenset(
        state_id for subset, state_id in state_ids.items() if nfa.accept in subset
    )
    return DFA(
        num_states=len(transitions),
        start=0,
        accepting=accepting,
        transitions=transitions,
    )
