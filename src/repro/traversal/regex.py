"""Parser for path-constraint regular expressions (§2.2).

The grammar from the survey is ``α ::= l | α·α | α∪α | α+ | α*`` with edge
labels as literal characters.  The surface syntax accepted here:

* labels: identifiers (letters, digits, ``_``, ``-``) or quoted strings;
* concatenation: ``·`` or ``.`` or simple juxtaposition;
* alternation: ``∪`` or ``|``;
* Kleene: postfix ``*`` and ``+``;
* grouping: parentheses.

Precedence (loosest to tightest): alternation, concatenation, Kleene.

The module also classifies a parsed constraint into the two query families
of §4 — alternation-based ``(l1 ∪ l2 ∪ ...)*`` and concatenation-based
``(l1 · l2 · ...)*`` — which is how :mod:`repro.core.oracle` dispatches to
LCR and RLC indexes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConstraintSyntaxError

__all__ = [
    "RegexNode",
    "LabelNode",
    "ConcatNode",
    "UnionNode",
    "StarNode",
    "PlusNode",
    "parse_constraint",
    "alternation_label_set",
    "concatenation_sequence",
    "regex_to_string",
]


class RegexNode:
    """Base class for path-constraint AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class LabelNode(RegexNode):
    """A single edge label literal."""

    label: str


@dataclass(frozen=True)
class ConcatNode(RegexNode):
    """``left · right``."""

    left: RegexNode
    right: RegexNode


@dataclass(frozen=True)
class UnionNode(RegexNode):
    """``left ∪ right``."""

    left: RegexNode
    right: RegexNode


@dataclass(frozen=True)
class StarNode(RegexNode):
    """``inner*`` — zero or more repeats."""

    inner: RegexNode


@dataclass(frozen=True)
class PlusNode(RegexNode):
    """``inner+`` — one or more repeats."""

    inner: RegexNode


_CONCAT_CHARS = {"·", "."}
_UNION_CHARS = {"∪", "|"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch == "(":
            tokens.append(("LPAREN", ch))
            i += 1
        elif ch == ")":
            tokens.append(("RPAREN", ch))
            i += 1
        elif ch == "*":
            tokens.append(("STAR", ch))
            i += 1
        elif ch == "+":
            tokens.append(("PLUS", ch))
            i += 1
        elif ch in _CONCAT_CHARS:
            tokens.append(("CONCAT", ch))
            i += 1
        elif ch in _UNION_CHARS:
            tokens.append(("UNION", ch))
            i += 1
        elif ch in "\"'":
            end = text.find(ch, i + 1)
            if end == -1:
                raise ConstraintSyntaxError(f"unterminated quote at position {i}")
            tokens.append(("LABEL", text[i + 1 : end]))
            i = end + 1
        elif ch.isalnum() or ch == "_":
            j = i
            while j < len(text) and (text[j].isalnum() or text[j] in "_-"):
                j += 1
            tokens.append(("LABEL", text[i:j]))
            i = j
        else:
            raise ConstraintSyntaxError(f"unexpected character {ch!r} at position {i}")
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self._tokens = tokens
        self._pos = 0

    def parse(self) -> RegexNode:
        node = self._union()
        if self._pos != len(self._tokens):
            kind, value = self._tokens[self._pos]
            raise ConstraintSyntaxError(f"trailing input at token {value!r}")
        return node

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos][0]
        return None

    def _union(self) -> RegexNode:
        node = self._concat()
        while self._peek() == "UNION":
            self._pos += 1
            node = UnionNode(node, self._concat())
        return node

    def _concat(self) -> RegexNode:
        node = self._postfix()
        while True:
            kind = self._peek()
            if kind == "CONCAT":
                self._pos += 1
                node = ConcatNode(node, self._postfix())
            elif kind in ("LABEL", "LPAREN"):  # juxtaposition
                node = ConcatNode(node, self._postfix())
            else:
                return node

    def _postfix(self) -> RegexNode:
        node = self._atom()
        while True:
            kind = self._peek()
            if kind == "STAR":
                self._pos += 1
                node = StarNode(node)
            elif kind == "PLUS":
                self._pos += 1
                node = PlusNode(node)
            else:
                return node

    def _atom(self) -> RegexNode:
        kind = self._peek()
        if kind == "LABEL":
            _, value = self._tokens[self._pos]
            self._pos += 1
            return LabelNode(value)
        if kind == "LPAREN":
            self._pos += 1
            node = self._union()
            if self._peek() != "RPAREN":
                raise ConstraintSyntaxError("missing closing parenthesis")
            self._pos += 1
            return node
        raise ConstraintSyntaxError("expected a label or '('")


def parse_constraint(text: str | RegexNode) -> RegexNode:
    """Parse a path-constraint expression into an AST (idempotent)."""
    if isinstance(text, RegexNode):
        return text
    tokens = _tokenize(text)
    if not tokens:
        raise ConstraintSyntaxError("empty path constraint")
    return _Parser(tokens).parse()


def alternation_label_set(node: RegexNode) -> frozenset[str] | None:
    """If the constraint is alternation-based, its label set; else None.

    Alternation-based (§4.1) means ``(l1 ∪ l2 ∪ ...)*`` or the ``+``
    variant; a bare ``l*``/``l+`` counts with a singleton set.
    """
    if not isinstance(node, (StarNode, PlusNode)):
        return None
    labels: set[str] = set()
    stack = [node.inner]
    while stack:
        current = stack.pop()
        if isinstance(current, LabelNode):
            labels.add(current.label)
        elif isinstance(current, UnionNode):
            stack.append(current.left)
            stack.append(current.right)
        else:
            return None
    return frozenset(labels)


def concatenation_sequence(node: RegexNode) -> tuple[str, ...] | None:
    """If the constraint is concatenation-based, its label sequence; else None.

    Concatenation-based (§4.2) means ``(l1 · l2 · ...)*`` or the ``+``
    variant; the sequence under the Kleene operator is returned in order.
    """
    if not isinstance(node, (StarNode, PlusNode)):
        return None
    sequence: list[str] = []

    def flatten(current: RegexNode) -> bool:
        if isinstance(current, LabelNode):
            sequence.append(current.label)
            return True
        if isinstance(current, ConcatNode):
            return flatten(current.left) and flatten(current.right)
        return False

    if not flatten(node.inner):
        return None
    return tuple(sequence)


def regex_to_string(node: RegexNode) -> str:
    """Render an AST back to surface syntax (canonical, fully parenthesised)."""
    if isinstance(node, LabelNode):
        return node.label
    if isinstance(node, ConcatNode):
        return f"({regex_to_string(node.left)} . {regex_to_string(node.right)})"
    if isinstance(node, UnionNode):
        return f"({regex_to_string(node.left)} | {regex_to_string(node.right)})"
    if isinstance(node, StarNode):
        return f"{regex_to_string(node.inner)}*"
    if isinstance(node, PlusNode):
        return f"{regex_to_string(node.inner)}+"
    raise TypeError(f"unknown node type {type(node).__name__}")
