"""Online traversal: plain BFS/DFS/BiBFS and automaton-guided RPQ search."""

from repro.traversal.automaton import DFA, NFA, build_dfa, build_nfa
from repro.traversal.online import (
    ancestors,
    bfs_reachable,
    bfs_reachable_batch,
    bibfs_reachable,
    descendants,
    dfs_reachable,
)
from repro.traversal.regex import (
    alternation_label_set,
    concatenation_sequence,
    parse_constraint,
    regex_to_string,
)
from repro.traversal.rpq import constrained_descendants, rpq_reachable
from repro.traversal.witness import constrained_witness_path, witness_path

__all__ = [
    "DFA",
    "NFA",
    "build_dfa",
    "build_nfa",
    "ancestors",
    "bfs_reachable",
    "bfs_reachable_batch",
    "bibfs_reachable",
    "descendants",
    "dfs_reachable",
    "alternation_label_set",
    "concatenation_sequence",
    "parse_constraint",
    "regex_to_string",
    "constrained_descendants",
    "rpq_reachable",
    "constrained_witness_path",
    "witness_path",
]
