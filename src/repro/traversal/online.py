"""Online reachability processing without an index (§2.3 baselines).

Breadth-first, depth-first and bidirectional breadth-first traversal.
These are both the baselines every benchmark compares indexes against and
the fallback machinery partial indexes delegate to.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.digraph import DiGraph

__all__ = ["bfs_reachable", "dfs_reachable", "bibfs_reachable", "descendants", "ancestors"]


def bfs_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Breadth-first search from ``source``; True iff ``target`` is reached."""
    if source == target:
        return True
    seen = bytearray(graph.num_vertices)
    seen[source] = 1
    queue: deque[int] = deque((source,))
    while queue:
        v = queue.popleft()
        for w in graph.out_neighbors(v):
            if w == target:
                return True
            if not seen[w]:
                seen[w] = 1
                queue.append(w)
    return False


def dfs_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Iterative depth-first search from ``source``."""
    if source == target:
        return True
    seen = bytearray(graph.num_vertices)
    seen[source] = 1
    stack = [source]
    while stack:
        v = stack.pop()
        for w in graph.out_neighbors(v):
            if w == target:
                return True
            if not seen[w]:
                seen[w] = 1
                stack.append(w)
    return False


def bibfs_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Bidirectional BFS: alternate expanding the smaller frontier.

    Meets-in-the-middle; typically explores far fewer vertices than BFS on
    graphs with high fan-out in both directions.
    """
    if source == target:
        return True
    n = graph.num_vertices
    seen_fwd = bytearray(n)
    seen_bwd = bytearray(n)
    seen_fwd[source] = 1
    seen_bwd[target] = 1
    frontier_fwd = [source]
    frontier_bwd = [target]
    while frontier_fwd and frontier_bwd:
        if len(frontier_fwd) <= len(frontier_bwd):
            next_frontier: list[int] = []
            for v in frontier_fwd:
                for w in graph.out_neighbors(v):
                    if seen_bwd[w]:
                        return True
                    if not seen_fwd[w]:
                        seen_fwd[w] = 1
                        next_frontier.append(w)
            frontier_fwd = next_frontier
        else:
            next_frontier = []
            for v in frontier_bwd:
                for w in graph.in_neighbors(v):
                    if seen_fwd[w]:
                        return True
                    if not seen_bwd[w]:
                        seen_bwd[w] = 1
                        next_frontier.append(w)
            frontier_bwd = next_frontier
    return False


def descendants(graph: DiGraph, source: int) -> set[int]:
    """All vertices reachable from ``source`` (including itself)."""
    seen = {source}
    queue: deque[int] = deque((source,))
    while queue:
        v = queue.popleft()
        for w in graph.out_neighbors(v):
            if w not in seen:
                seen.add(w)
                queue.append(w)
    return seen


def ancestors(graph: DiGraph, target: int) -> set[int]:
    """All vertices that reach ``target`` (including itself)."""
    seen = {target}
    queue: deque[int] = deque((target,))
    while queue:
        v = queue.popleft()
        for u in graph.in_neighbors(v):
            if u not in seen:
                seen.add(u)
                queue.append(u)
    return seen
