"""Online reachability processing without an index (§2.3 baselines).

Breadth-first, depth-first and bidirectional breadth-first traversal.
These are both the baselines every benchmark compares indexes against and
the fallback machinery partial indexes delegate to.

The hot loops bind the graph's raw adjacency lists (``graph._out`` /
``graph._in``) to locals once per call instead of paying an accessor
call plus bounds check per visited vertex; endpoint validation happens
exactly once up front.  Whole-graph sweeps (:func:`descendants` /
:func:`ancestors`) and the batched entry point
(:func:`bfs_reachable_batch`) run over the shared CSR snapshot from
:mod:`repro.kernels`, so repeated calls against an unchanged graph reuse
one flattened adjacency build.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.errors import VertexError
from repro.graphs.digraph import DiGraph
from repro.kernels import ancestors_set, batch_reachable, csr_of, descendants_set
from repro.resilience.deadline import CHECK_STRIDE, current_deadline

__all__ = [
    "bfs_reachable",
    "dfs_reachable",
    "bibfs_reachable",
    "bfs_reachable_batch",
    "descendants",
    "ancestors",
]


def _check_vertices(graph: DiGraph, *vertices: int) -> None:
    n = graph.num_vertices
    for v in vertices:
        if not (0 <= v < n):
            raise VertexError(f"vertex {v} out of range [0, {n})")


def bfs_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Breadth-first search from ``source``; True iff ``target`` is reached."""
    _check_vertices(graph, source, target)
    if source == target:
        return True
    deadline = current_deadline()
    expanded = 0
    out = graph._out
    seen = bytearray(len(out))
    seen[source] = 1
    queue: deque[int] = deque((source,))
    popleft = queue.popleft
    append = queue.append
    while queue:
        if deadline is not None:
            expanded += 1
            if not expanded % CHECK_STRIDE:
                deadline.check()
        for w in out[popleft()]:
            if w == target:
                return True
            if not seen[w]:
                seen[w] = 1
                append(w)
    return False


def dfs_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Iterative depth-first search from ``source``."""
    _check_vertices(graph, source, target)
    if source == target:
        return True
    deadline = current_deadline()
    expanded = 0
    out = graph._out
    seen = bytearray(len(out))
    seen[source] = 1
    stack = [source]
    pop = stack.pop
    push = stack.append
    while stack:
        if deadline is not None:
            expanded += 1
            if not expanded % CHECK_STRIDE:
                deadline.check()
        for w in out[pop()]:
            if w == target:
                return True
            if not seen[w]:
                seen[w] = 1
                push(w)
    return False


def bibfs_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Bidirectional BFS: alternate expanding the smaller frontier.

    Meets-in-the-middle; typically explores far fewer vertices than BFS on
    graphs with high fan-out in both directions.
    """
    _check_vertices(graph, source, target)
    if source == target:
        return True
    out = graph._out
    inn = graph._in
    n = len(out)
    seen_fwd = bytearray(n)
    seen_bwd = bytearray(n)
    seen_fwd[source] = 1
    seen_bwd[target] = 1
    deadline = current_deadline()
    frontier_fwd = [source]
    frontier_bwd = [target]
    while frontier_fwd and frontier_bwd:
        if deadline is not None:
            deadline.check()
        if len(frontier_fwd) <= len(frontier_bwd):
            next_frontier: list[int] = []
            for v in frontier_fwd:
                for w in out[v]:
                    if seen_bwd[w]:
                        return True
                    if not seen_fwd[w]:
                        seen_fwd[w] = 1
                        next_frontier.append(w)
            frontier_fwd = next_frontier
        else:
            next_frontier = []
            for v in frontier_bwd:
                for w in inn[v]:
                    if seen_fwd[w]:
                        return True
                    if not seen_bwd[w]:
                        seen_bwd[w] = 1
                        next_frontier.append(w)
            frontier_bwd = next_frontier
    return False


def bfs_reachable_batch(
    graph: DiGraph, pairs: Sequence[tuple[int, int]]
) -> list[bool]:
    """Exact reachability for a batch of pairs, amortising traversal.

    Pairs sharing a source are answered from one sweep, and distinct
    sources advance together through the bit-parallel multi-source
    frontier of :func:`repro.kernels.batch_reachable` — the batched
    counterpart of calling :func:`bfs_reachable` per pair.  Answers are
    returned in input order; duplicates are answered consistently.
    """
    n = graph.num_vertices
    for s, t in pairs:
        if not (0 <= s < n and 0 <= t < n):
            raise VertexError(f"vertex pair ({s}, {t}) out of range [0, {n})")
    if not pairs:
        return []
    return batch_reachable(csr_of(graph), pairs)


def descendants(graph: DiGraph, source: int) -> set[int]:
    """All vertices reachable from ``source`` (including itself)."""
    _check_vertices(graph, source)
    return descendants_set(csr_of(graph), source)


def ancestors(graph: DiGraph, target: int) -> set[int]:
    """All vertices that reach ``target`` (including itself)."""
    _check_vertices(graph, target)
    return ancestors_set(csr_of(graph), target)
