"""Automaton-guided traversal for path-constrained reachability (§2.3).

The general online strategy for a regular path query: build a DFA from the
constraint and BFS over the product of the graph and the automaton.  Works
for *any* constraint in the §2.2 grammar — this is the baseline every
path-constrained index is compared against, and the exactness reference the
test suite checks index answers with.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.labeled import LabeledDiGraph
from repro.resilience.deadline import CHECK_STRIDE, current_deadline
from repro.traversal.automaton import DFA, build_dfa
from repro.traversal.regex import RegexNode

__all__ = ["rpq_reachable", "rpq_reachable_with_dfa", "constrained_descendants"]


def rpq_reachable(
    graph: LabeledDiGraph, source: int, target: int, constraint: str | RegexNode
) -> bool:
    """Does an ``source``-``target`` path satisfying ``constraint`` exist?

    The empty path (source == target) counts iff the constraint's language
    contains the empty word, matching the semantics used by the survey's
    examples (a ``*`` constraint is trivially satisfied by s == t).
    """
    return rpq_reachable_with_dfa(graph, source, target, build_dfa(constraint))


def rpq_reachable_with_dfa(
    graph: LabeledDiGraph, source: int, target: int, dfa: DFA
) -> bool:
    """Product-automaton BFS with a pre-built DFA (amortises compilation)."""
    if source == target and dfa.start in dfa.accepting:
        return True
    deadline = current_deadline()
    expanded = 0
    seen: set[tuple[int, int]] = {(source, dfa.start)}
    queue: deque[tuple[int, int]] = deque(((source, dfa.start),))
    while queue:
        v, state = queue.popleft()
        if deadline is not None:
            expanded += 1
            if not expanded % CHECK_STRIDE:
                deadline.check()
        transitions = dfa.transitions[state]
        for w, label_id in graph.out_edges(v):
            next_state = transitions.get(graph.label_name(label_id))
            if next_state is None:
                continue
            if w == target and next_state in dfa.accepting:
                return True
            pair = (w, next_state)
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return False


def constrained_descendants(
    graph: LabeledDiGraph, source: int, constraint: str | RegexNode
) -> set[int]:
    """All vertices reachable from ``source`` under ``constraint``.

    ``source`` itself is included iff the constraint accepts the empty word.
    """
    dfa = build_dfa(constraint)
    result: set[int] = set()
    if dfa.start in dfa.accepting:
        result.add(source)
    seen: set[tuple[int, int]] = {(source, dfa.start)}
    queue: deque[tuple[int, int]] = deque(((source, dfa.start),))
    while queue:
        v, state = queue.popleft()
        transitions = dfa.transitions[state]
        for w, label_id in graph.out_edges(v):
            next_state = transitions.get(graph.label_name(label_id))
            if next_state is None:
                continue
            pair = (w, next_state)
            if pair not in seen:
                seen.add(pair)
                if next_state in dfa.accepting:
                    result.add(w)
                queue.append(pair)
    return result
