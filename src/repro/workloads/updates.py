"""Update-stream workloads for the dynamic indexes (§3.2, §5).

Seeded insert/delete streams with the invariants the dynamic indexes
need: DAG preservation for the Table 1 DAG-input techniques, insert-only
streams for DBL, and labeled streams for Zou/DLCR.  The generators
return the operations *without* applying them, so the same stream can be
replayed through an index's maintenance API and through a rebuild
baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.authz.tuples import RelationTuple
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.traversal.online import bfs_reachable

__all__ = [
    "EdgeOp",
    "LabeledEdgeOp",
    "TupleOp",
    "update_stream",
    "labeled_update_stream",
    "tuple_churn_stream",
]


@dataclass(frozen=True)
class EdgeOp:
    """One update of a plain-graph stream."""

    kind: str  # "insert" or "delete"
    source: int
    target: int


@dataclass(frozen=True)
class TupleOp:
    """One grant/revoke of a relation-tuple churn stream."""

    kind: str  # "grant" or "revoke"
    subject: str
    relation: str
    object: str

    def tuple(self) -> RelationTuple:
        """The relation tuple the op grants or revokes."""
        return RelationTuple(self.subject, self.relation, self.object)


@dataclass(frozen=True)
class LabeledEdgeOp:
    """One update of a labeled-graph stream."""

    kind: str
    source: int
    target: int
    label: str


def update_stream(
    graph: DiGraph,
    num_ops: int,
    seed: int,
    delete_fraction: float = 0.4,
    keep_acyclic: bool = False,
) -> list[EdgeOp]:
    """A seeded stream of edge updates, generated against a working copy.

    ``keep_acyclic`` restricts inserts to DAG-preserving edges (and
    assumes the input is a DAG), which is what the Table 1 DAG-input
    dynamic indexes require.  Deletes always target existing edges at the
    time of the operation.
    """
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(f"delete_fraction must be in [0, 1], got {delete_fraction}")
    rng = random.Random(seed)
    working = graph.copy()
    ops: list[EdgeOp] = []
    attempts_budget = 200
    while len(ops) < num_ops:
        do_delete = rng.random() < delete_fraction and working.num_edges > 0
        if do_delete:
            edges = list(working.edges())
            u, v = edges[rng.randrange(len(edges))]
            working.remove_edge(u, v)
            ops.append(EdgeOp("delete", u, v))
            continue
        placed = False
        for _attempt in range(attempts_budget):
            u = rng.randrange(working.num_vertices)
            v = rng.randrange(working.num_vertices)
            if u == v or working.has_edge(u, v):
                continue
            if keep_acyclic and bfs_reachable(working, v, u):
                continue
            working.add_edge(u, v)
            ops.append(EdgeOp("insert", u, v))
            placed = True
            break
        if not placed:
            # graph saturated for inserts: fall back to a delete if possible
            if working.num_edges == 0:
                break
            edges = list(working.edges())
            u, v = edges[rng.randrange(len(edges))]
            working.remove_edge(u, v)
            ops.append(EdgeOp("delete", u, v))
    return ops


def labeled_update_stream(
    graph: LabeledDiGraph,
    num_ops: int,
    seed: int,
    delete_fraction: float = 0.4,
) -> list[LabeledEdgeOp]:
    """A seeded stream of labeled edge updates (general graphs)."""
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(f"delete_fraction must be in [0, 1], got {delete_fraction}")
    rng = random.Random(seed)
    working = graph.copy()
    labels = [str(label) for label in working.labels()]
    if not labels:
        raise ValueError("graph has no labels")
    ops: list[LabeledEdgeOp] = []
    while len(ops) < num_ops:
        do_delete = rng.random() < delete_fraction and working.num_edges > 0
        if do_delete:
            edges = list(working.edges())
            u, v, label = edges[rng.randrange(len(edges))]
            working.remove_edge(u, v, label)
            ops.append(LabeledEdgeOp("delete", u, v, str(label)))
            continue
        for _attempt in range(200):
            u = rng.randrange(working.num_vertices)
            v = rng.randrange(working.num_vertices)
            label = rng.choice(labels)
            if u != v and not working.has_edge(u, v, label):
                working.add_edge(u, v, label)
                ops.append(LabeledEdgeOp("insert", u, v, label))
                break
        else:
            break
    return ops


def tuple_churn_stream(
    initial: list[RelationTuple],
    num_ops: int,
    seed: int,
    revoke_fraction: float = 0.4,
) -> list[TupleOp]:
    """A seeded grant/revoke stream over an authz namespace's tuples.

    Generated against a working copy of ``initial`` so every revoke
    targets a tuple present at the time of the op and every grant is
    fresh; subjects, relations and objects are drawn from the pools the
    initial tuples establish.  Replay the stream through
    :meth:`repro.authz.store.AuthzStore.apply_updates` — each op becomes
    one write, so zookies advance monotonically with epochs.
    """
    if not initial:
        raise ValueError("tuple_churn_stream needs a non-empty initial tuple set")
    if not 0.0 <= revoke_fraction <= 1.0:
        raise ValueError(f"revoke_fraction must be in [0, 1], got {revoke_fraction}")
    rng = random.Random(seed)
    working = set(initial)
    subjects = sorted({t.subject for t in initial})
    relations = sorted({t.relation for t in initial})
    objects = sorted({t.object for t in initial})
    ops: list[TupleOp] = []
    while len(ops) < num_ops:
        do_revoke = rng.random() < revoke_fraction and working
        if do_revoke:
            victim = rng.choice(sorted(working))
            working.discard(victim)
            ops.append(TupleOp("revoke", victim.subject, victim.relation, victim.object))
            continue
        for _attempt in range(200):
            subject = rng.choice(subjects)
            obj = rng.choice(objects)
            if subject == obj:
                continue
            candidate = RelationTuple(subject, rng.choice(relations), obj)
            if candidate not in working:
                working.add(candidate)
                ops.append(
                    TupleOp(
                        "grant",
                        candidate.subject,
                        candidate.relation,
                        candidate.object,
                    )
                )
                break
        else:
            if not working:
                break
            victim = rng.choice(sorted(working))
            working.discard(victim)
            ops.append(TupleOp("revoke", victim.subject, victim.relation, victim.object))
    return ops
