"""Named datasets, including the survey's Figure 1 running examples.

:func:`figure1a` and :func:`figure1b` reproduce the two 9-vertex graphs
the paper's examples are stated on; every claim made about them in the
text is verified by ``tests/test_figure1.py``.  The remaining factories
are seeded synthetic stand-ins for the application domains the
introduction motivates (social, citation, biological, financial networks)
— see DESIGN.md §1 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    cyclic_communities,
    layered_dag,
    random_labeled_digraph,
    scale_free_dag,
    with_random_labels,
)
from repro.graphs.labeled import LabeledDiGraph

__all__ = [
    "FIGURE1_VERTICES",
    "figure1a",
    "figure1b",
    "vertex_id",
    "social_network",
    "citation_network",
    "protein_network",
    "transaction_network",
]

#: Vertex names of Figure 1, in id order.
FIGURE1_VERTICES = ("A", "B", "C", "D", "G", "H", "K", "L", "M")

_NAME_TO_ID = {name: i for i, name in enumerate(FIGURE1_VERTICES)}


def vertex_id(name: str) -> int:
    """Dense id of a Figure 1 vertex name (``"A"`` … ``"M"``)."""
    return _NAME_TO_ID[name]


def figure1a() -> DiGraph:
    """The plain graph of Figure 1(a).

    The figure draws vertices A, B, C, D, G, H, K, L, M.  The edge set
    below realises every reachability relationship the paper's text
    relies on — most importantly the s-t path (A, D, H, G) behind
    ``Qr(A, G) = true`` — and is the plain projection of Figure 1(b), as
    in the paper (the two subfigures show the same graph, unlabeled and
    labeled).
    """
    return figure1b().to_plain()


def figure1b() -> LabeledDiGraph:
    """The edge-labeled social network of Figure 1(b).

    Labels: ``friendOf``, ``follows``, ``worksFor``.  The edge set
    realises every example in the text:

    * ``Qr(A, G, (friendOf ∪ follows)*) = false`` — every A-G path
      includes a ``worksFor`` edge (§2.2);
    * ``Qr(A, G) = true`` via (A, D, H, G) (§2.1);
    * L reaches M via ``p1 = (L, worksFor, C, worksFor, M)`` and
      ``p2 = (L, follows, K, worksFor, M)`` — the SPLS of p1 is a subset
      of p2's (§4.1);
    * the SPLS from A to L is {follows} and from A to M is
      {follows, worksFor} (§4.1 transitivity example);
    * H is reachable from L via ``p3 = (L, worksFor, C, worksFor, H)``
      and ``p4 = (L, worksFor, D, friendOf, H)`` (§4.1.2 Dijkstra
      example — p3 has one distinct label, p4 two);
    * the path (L, worksFor, D, friendOf, H, worksFor, G, friendOf, B)
      has minimum repeat (worksFor, friendOf), so
      ``Qr(L, B, (worksFor · friendOf)*) = true`` (§4.2).
    """
    graph = LabeledDiGraph(len(FIGURE1_VERTICES))
    edges = [
        ("A", "D", "follows"),
        ("A", "L", "follows"),
        ("D", "H", "friendOf"),
        ("H", "G", "worksFor"),
        ("G", "B", "friendOf"),
        ("K", "A", "friendOf"),
        ("K", "M", "worksFor"),
        ("L", "C", "worksFor"),
        ("L", "D", "worksFor"),
        ("L", "K", "follows"),
        ("C", "M", "worksFor"),
        ("C", "H", "worksFor"),
        ("M", "G", "worksFor"),
        ("B", "M", "worksFor"),
    ]
    for u, v, label in edges:
        graph.add_edge(_NAME_TO_ID[u], _NAME_TO_ID[v], label)
    return graph


@dataclass(frozen=True)
class _DatasetSpec:
    """Descriptor of a synthetic dataset family (for docs and CLI)."""

    name: str
    description: str


def social_network(
    num_vertices: int = 400, seed: int = 7, num_labels: int = 3
) -> LabeledDiGraph:
    """A labeled social graph: skewed degrees, relationship-type labels."""
    labels = ["friendOf", "follows", "worksFor", "memberOf", "knows"][:num_labels]
    base = scale_free_dag(num_vertices, edges_per_vertex=3, seed=seed)
    return with_random_labels(base, labels, seed=seed + 1, skew=0.7)


def citation_network(num_vertices: int = 400, seed: int = 11) -> DiGraph:
    """A plain citation-style DAG (papers cite earlier papers)."""
    return scale_free_dag(num_vertices, edges_per_vertex=4, seed=seed)


def protein_network(num_layers: int = 12, width: int = 30, seed: int = 13) -> DiGraph:
    """A layered interaction-pathway DAG (long reachability chains)."""
    return layered_dag(num_layers, width, edges_per_vertex=2, seed=seed)


def transaction_network(
    num_vertices: int = 300, seed: int = 17, num_labels: int = 4
) -> LabeledDiGraph:
    """A cyclic financial-transaction graph with transfer-type labels."""
    labels = ["transfer", "withdraw", "deposit", "exchange"][:num_labels]
    base = cyclic_communities(
        num_communities=max(2, num_vertices // 25),
        community_size=25,
        inter_edges=num_vertices // 3,
        seed=seed,
    )
    return with_random_labels(base, labels, seed=seed + 1, skew=0.4)
