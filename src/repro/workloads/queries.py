"""Reproducible query workloads.

Benchmarking reachability indexes needs controlled mixes of positive
(reachable) and negative (non-reachable) queries — the survey's §5
argument for no-false-negative partial indexes hinges on real workloads
being negative-heavy.  These generators produce seeded workloads with an
exact positive fraction, plus label-constraint workloads for the §4
families.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass

from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.traversal.online import descendants

__all__ = [
    "PlainQuery",
    "ConstrainedQuery",
    "plain_workload",
    "batch_workload",
    "alternation_workload",
    "concatenation_workload",
]


@dataclass(frozen=True)
class PlainQuery:
    """One plain reachability query with its ground-truth answer."""

    source: int
    target: int
    reachable: bool


@dataclass(frozen=True)
class ConstrainedQuery:
    """One path-constrained query (constraint in surface syntax)."""

    source: int
    target: int
    constraint: str
    reachable: bool


def plain_workload(
    graph: DiGraph,
    num_queries: int,
    positive_fraction: float,
    seed: int,
) -> list[PlainQuery]:
    """A seeded workload with an exact share of positive queries.

    Positives are drawn by sampling a source and one of its descendants;
    negatives by rejection sampling of non-reachable pairs.
    """
    if not 0.0 <= positive_fraction <= 1.0:
        raise ValueError(f"positive_fraction must be in [0, 1], got {positive_fraction}")
    rng = random.Random(seed)
    n = graph.num_vertices
    wanted_positive = round(num_queries * positive_fraction)
    queries: list[PlainQuery] = []
    # cache descendant sets of sampled sources (sampling hits few sources)
    cache: dict[int, list[int]] = {}
    attempts = 0
    while len(queries) < wanted_positive and attempts < 100 * num_queries:
        attempts += 1
        s = rng.randrange(n)
        if s not in cache:
            cache[s] = sorted(descendants(graph, s) - {s})
        if cache[s]:
            queries.append(PlainQuery(s, rng.choice(cache[s]), True))
    while len(queries) < num_queries and attempts < 200 * num_queries:
        attempts += 1
        s = rng.randrange(n)
        t = rng.randrange(n)
        if s == t:
            continue
        if s not in cache:
            cache[s] = sorted(descendants(graph, s) - {s})
        if t not in cache[s]:
            queries.append(PlainQuery(s, t, False))
    rng.shuffle(queries)
    return queries


def batch_workload(
    graph: DiGraph,
    num_batches: int,
    batch_size: int,
    positive_fraction: float,
    seed: int,
    zipf_exponent: float = 1.2,
) -> list[list[PlainQuery]]:
    """Seeded batches of plain queries with Zipf-skewed sources.

    Real batch traffic is source-skewed — a few hub entities dominate —
    which is exactly the regime where batched evaluation pays: pairs
    sharing a source ride one bit-parallel frontier, and repeated pairs
    hit the result cache.  Sources are drawn by Zipf rank over a seeded
    vertex permutation (``zipf_exponent`` controls the skew; 0 recovers
    the uniform mix); each batch holds an exact
    ``round(batch_size * positive_fraction)`` positives, except on
    sources whose descendant sets are empty after bounded retries.
    """
    if not 0.0 <= positive_fraction <= 1.0:
        raise ValueError(f"positive_fraction must be in [0, 1], got {positive_fraction}")
    if batch_size < 0 or num_batches < 0:
        raise ValueError("num_batches and batch_size must be non-negative")
    if zipf_exponent < 0:
        raise ValueError(f"zipf_exponent must be >= 0, got {zipf_exponent}")
    rng = random.Random(seed)
    n = graph.num_vertices
    if n == 0 and num_batches * batch_size > 0:
        raise ValueError("cannot draw queries from an empty graph")
    # Zipf over a seeded permutation so vertex ids carry no hidden bias.
    ranked = list(range(n))
    rng.shuffle(ranked)
    weights = [(rank + 1) ** -zipf_exponent for rank in range(n)]
    cumulative: list[float] = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)

    def draw_source() -> int:
        return ranked[bisect_right(cumulative, rng.random() * total)]

    cache: dict[int, list[int]] = {}

    def reachable_from(s: int) -> list[int]:
        if s not in cache:
            cache[s] = sorted(descendants(graph, s) - {s})
        return cache[s]

    batches: list[list[PlainQuery]] = []
    for _ in range(num_batches):
        wanted_positive = round(batch_size * positive_fraction)
        batch: list[PlainQuery] = []
        attempts = 0
        while len(batch) < wanted_positive and attempts < 100 * batch_size:
            attempts += 1
            s = draw_source()
            targets = reachable_from(s)
            if targets:
                batch.append(PlainQuery(s, rng.choice(targets), True))
        while len(batch) < batch_size and attempts < 200 * batch_size:
            attempts += 1
            s = draw_source()
            t = rng.randrange(n)
            if s != t and t not in reachable_from(s):
                batch.append(PlainQuery(s, t, False))
        rng.shuffle(batch)
        batches.append(batch)
    return batches


def alternation_workload(
    graph: LabeledDiGraph,
    num_queries: int,
    seed: int,
    min_labels: int = 1,
    max_labels: int | None = None,
) -> list[ConstrainedQuery]:
    """Random LCR queries ``Qr(s, t, (l1 ∪ …)*)`` with ground truth.

    Constraints draw random label subsets of size ``min_labels`` to
    ``max_labels`` (default: all); ground truth comes from a constrained
    BFS, so workloads are usable for correctness checks as well as timing.
    """
    from repro.traversal.rpq import rpq_reachable  # local: avoids cycle at import

    rng = random.Random(seed)
    labels = [str(label) for label in graph.labels()]
    if not labels:
        raise ValueError("graph has no labels")
    if max_labels is None:
        max_labels = len(labels)
    queries: list[ConstrainedQuery] = []
    n = graph.num_vertices
    while len(queries) < num_queries:
        size = rng.randint(min_labels, max_labels)
        subset = rng.sample(labels, min(size, len(labels)))
        constraint = "(" + "|".join(subset) + ")*"
        s = rng.randrange(n)
        t = rng.randrange(n)
        truth = rpq_reachable(graph, s, t, constraint)
        queries.append(ConstrainedQuery(s, t, constraint, truth))
    return queries


def concatenation_workload(
    graph: LabeledDiGraph,
    num_queries: int,
    seed: int,
    max_period: int = 2,
) -> list[ConstrainedQuery]:
    """Random RLC queries ``Qr(s, t, (l1 · …)*)`` with ground truth."""
    from repro.traversal.rpq import rpq_reachable

    rng = random.Random(seed)
    labels = [str(label) for label in graph.labels()]
    if not labels:
        raise ValueError("graph has no labels")
    queries: list[ConstrainedQuery] = []
    n = graph.num_vertices
    while len(queries) < num_queries:
        period = rng.randint(1, max_period)
        seq = [rng.choice(labels) for _ in range(period)]
        constraint = "(" + ".".join(seq) + ")*"
        s = rng.randrange(n)
        t = rng.randrange(n)
        truth = rpq_reachable(graph, s, t, constraint)
        queries.append(ConstrainedQuery(s, t, constraint, truth))
    return queries
