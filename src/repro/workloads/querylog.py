"""Query-log-style workloads over mixed constraint shapes (§5).

The survey's open-challenges section cites the Wikidata query-log study
(Bonifati, Martens & Timm, WWW 2019) to argue that "practical path
constraints have many more types" than the alternation/concatenation
classes today's indexes serve.  This module generates a workload whose
*shape mix* mirrors that observation: single labels, short
concatenations, transitive single labels (``l*``/``l+``), alternations
under Kleene, recursive concatenations, and mixed expressions that no
Table 2 index supports — each with a configurable share.

The mix answers two questions the §5 discussion raises:

* what fraction of a realistic log can today's indexes serve at all
  (:func:`dispatch_statistics` classifies each query the way
  :class:`~repro.core.oracle.PathReachabilityOracle` would);
* how much of the remainder falls to automaton-guided traversal.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass

from repro.graphs.labeled import LabeledDiGraph
from repro.traversal.regex import (
    alternation_label_set,
    concatenation_sequence,
    parse_constraint,
)
from repro.workloads.queries import ConstrainedQuery

__all__ = ["QueryLogMix", "DEFAULT_MIX", "querylog_workload", "dispatch_statistics"]


@dataclass(frozen=True)
class QueryLogMix:
    """Relative frequencies of constraint shapes in a generated log.

    The defaults follow the qualitative findings of the Wikidata log
    study: most property paths are short and non-recursive, a substantial
    minority use a single transitive property, and a small tail uses
    shapes outside both §4 families.
    """

    single_label: float = 0.35
    short_concatenation: float = 0.25
    transitive_single: float = 0.15
    alternation_star: float = 0.12
    concatenation_star: float = 0.05
    mixed: float = 0.08

    def normalized(self) -> list[tuple[str, float]]:
        """(shape, weight) pairs normalised to sum 1."""
        pairs = [
            ("single_label", self.single_label),
            ("short_concatenation", self.short_concatenation),
            ("transitive_single", self.transitive_single),
            ("alternation_star", self.alternation_star),
            ("concatenation_star", self.concatenation_star),
            ("mixed", self.mixed),
        ]
        total = sum(weight for _shape, weight in pairs)
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        return [(shape, weight / total) for shape, weight in pairs]


DEFAULT_MIX = QueryLogMix()


def _constraint_for(shape: str, labels: list[str], rng: random.Random) -> str:
    if shape == "single_label":
        return rng.choice(labels)
    if shape == "short_concatenation":
        length = rng.randint(2, 3)
        return " . ".join(rng.choice(labels) for _ in range(length))
    if shape == "transitive_single":
        label = rng.choice(labels)
        return f"({label}){rng.choice('*+')}"
    if shape == "alternation_star":
        size = rng.randint(2, min(3, len(labels)))
        subset = rng.sample(labels, size)
        return "(" + " | ".join(subset) + ")*"
    if shape == "concatenation_star":
        length = rng.randint(2, 2)
        seq = [rng.choice(labels) for _ in range(length)]
        return "(" + " . ".join(seq) + ")*"
    if shape == "mixed":
        l1, l2 = rng.choice(labels), rng.choice(labels)
        l3 = rng.choice(labels)
        template = rng.choice(
            [
                f"{l1} . ({l2} | {l3})*",
                f"({l1} | {l2})* . {l3}",
                f"{l1} . {l2}*",
            ]
        )
        return template
    raise ValueError(f"unknown shape {shape!r}")


def querylog_workload(
    graph: LabeledDiGraph,
    num_queries: int,
    seed: int,
    mix: QueryLogMix = DEFAULT_MIX,
) -> list[ConstrainedQuery]:
    """A seeded mixed-shape workload with exact ground truth."""
    from repro.traversal.rpq import rpq_reachable

    rng = random.Random(seed)
    labels = [str(label) for label in graph.labels()]
    if not labels:
        raise ValueError("graph has no labels")
    shapes, weights = zip(*mix.normalized())
    queries: list[ConstrainedQuery] = []
    n = graph.num_vertices
    while len(queries) < num_queries:
        shape = rng.choices(shapes, weights=weights, k=1)[0]
        constraint = _constraint_for(shape, labels, rng)
        s = rng.randrange(n)
        t = rng.randrange(n)
        truth = rpq_reachable(graph, s, t, constraint)
        queries.append(ConstrainedQuery(s, t, constraint, truth))
    return queries


def dispatch_statistics(
    workload: list[ConstrainedQuery],
) -> Mapping[str, int]:
    """How an oracle would dispatch each query (the §5 coverage question).

    Returns counts for ``alternation`` (servable by the §4.1 indexes),
    ``concatenation`` (servable by the RLC index) and ``traversal_only``
    (the fragment no Table 2 index supports).
    """
    counts = {"alternation": 0, "concatenation": 0, "traversal_only": 0}
    for query in workload:
        node = parse_constraint(query.constraint)
        if alternation_label_set(node) is not None:
            counts["alternation"] += 1
        elif concatenation_sequence(node) is not None:
            counts["concatenation"] += 1
        else:
            counts["traversal_only"] += 1
    return counts
