"""Synthetic Zanzibar-style authorization workloads.

Tuple universes shaped like production permission systems: users join
groups, groups nest, groups (and a few users directly) hold ``viewer``
on objects.  Check/list traffic is Zipf-skewed over subjects — a few hot
principals dominate, as §5's discussion of real query logs expects — so
the enumeration fast paths amortise exactly where production traffic
concentrates.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass

from repro.authz.tuples import RelationTuple

__all__ = ["AuthzOp", "authz_tuples", "authz_workload"]


@dataclass(frozen=True)
class AuthzOp:
    """One authorization read: a pair check or a list enumeration."""

    kind: str  # "check", "list_objects" or "list_subjects"
    subject: str  # principal for check/list_objects, object for list_subjects
    object: str = ""  # target of a check; empty for enumerations


def authz_tuples(
    num_users: int,
    num_groups: int,
    num_objects: int,
    seed: int,
    memberships_per_user: int = 2,
    grants_per_group: int = 4,
    nesting_fraction: float = 0.3,
) -> list[RelationTuple]:
    """A seeded tuple universe: memberships, group nesting, object grants.

    Every object is granted to at least one group, so all ``num_objects``
    objects appear as entities (and as list-objects candidates);
    ``grants_per_group`` controls the extra grants layered on top.
    """
    if min(num_users, num_groups, num_objects) < 1:
        raise ValueError("need at least one user, group and object")
    rng = random.Random(seed)
    users = [f"user:u{i}" for i in range(num_users)]
    groups = [f"group:g{i}" for i in range(num_groups)]
    objects = [f"doc:d{i}" for i in range(num_objects)]
    tuples: set[RelationTuple] = set()
    for user in users:
        for group in rng.sample(groups, min(memberships_per_user, num_groups)):
            tuples.add(RelationTuple(user, "member", group))
    # nest some groups into later groups (acyclic by construction)
    for i, group in enumerate(groups[:-1]):
        if rng.random() < nesting_fraction:
            parent = groups[rng.randrange(i + 1, num_groups)]
            tuples.add(RelationTuple(group, "member", parent))
    # every object gets a home group (so the whole universe is live as
    # list-objects candidates), then each group picks extra grants
    for obj in objects:
        tuples.add(RelationTuple(rng.choice(groups), "viewer", obj))
    for group in groups:
        for obj in rng.sample(objects, min(grants_per_group, num_objects)):
            tuples.add(RelationTuple(group, "viewer", obj))
    # a sprinkle of direct user grants
    for _ in range(max(1, num_users // 4)):
        tuples.add(RelationTuple(rng.choice(users), "viewer", rng.choice(objects)))
    return sorted(tuples)


def _zipf_picker(items: list[str], exponent: float, rng: random.Random):
    """A closure sampling ``items`` with Zipf-skewed ranks."""
    weights = [(rank + 1) ** -exponent for rank in range(len(items))]
    cumulative: list[float] = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)

    def pick() -> str:
        return items[bisect_right(cumulative, rng.random() * total)]

    return pick


def authz_workload(
    tuples: list[RelationTuple],
    num_ops: int,
    seed: int,
    list_fraction: float = 0.3,
    zipf_exponent: float = 1.2,
) -> list[AuthzOp]:
    """A Zipf-skewed stream of checks and list enumerations.

    ``list_fraction`` of the ops are enumerations (split evenly between
    ``list_objects`` and ``list_subjects``); the rest are pair checks.
    Subjects are drawn Zipf-skewed over the users seen in ``tuples``,
    objects uniformly over the objects.
    """
    if not 0.0 <= list_fraction <= 1.0:
        raise ValueError(f"list_fraction must be in [0, 1], got {list_fraction}")
    if zipf_exponent < 0:
        raise ValueError(f"zipf_exponent must be >= 0, got {zipf_exponent}")
    rng = random.Random(seed)
    subjects = sorted({t.subject for t in tuples if t.subject.startswith("user:")})
    objects = sorted({t.object for t in tuples if t.object.startswith("doc:")})
    if not subjects or not objects:
        raise ValueError("tuples must mention at least one user: and one doc: entity")
    rng.shuffle(subjects)  # which principals are hot is itself random
    pick_subject = _zipf_picker(subjects, zipf_exponent, rng)
    ops: list[AuthzOp] = []
    for _ in range(num_ops):
        roll = rng.random()
        if roll < list_fraction / 2:
            ops.append(AuthzOp("list_objects", pick_subject()))
        elif roll < list_fraction:
            ops.append(AuthzOp("list_subjects", rng.choice(objects)))
        else:
            ops.append(AuthzOp("check", pick_subject(), rng.choice(objects)))
    return ops
