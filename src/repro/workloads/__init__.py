"""Datasets (including the Figure 1 examples) and query workloads."""

from repro.workloads.datasets import (
    FIGURE1_VERTICES,
    citation_network,
    figure1a,
    figure1b,
    protein_network,
    social_network,
    transaction_network,
    vertex_id,
)
from repro.workloads.queries import (
    ConstrainedQuery,
    PlainQuery,
    alternation_workload,
    batch_workload,
    concatenation_workload,
    plain_workload,
)
from repro.workloads.querylog import (
    DEFAULT_MIX,
    QueryLogMix,
    dispatch_statistics,
    querylog_workload,
)
from repro.workloads.authz import (
    AuthzOp,
    authz_tuples,
    authz_workload,
)
from repro.workloads.updates import (
    EdgeOp,
    LabeledEdgeOp,
    TupleOp,
    labeled_update_stream,
    tuple_churn_stream,
    update_stream,
)

__all__ = [
    "FIGURE1_VERTICES",
    "citation_network",
    "figure1a",
    "figure1b",
    "protein_network",
    "social_network",
    "transaction_network",
    "vertex_id",
    "ConstrainedQuery",
    "PlainQuery",
    "alternation_workload",
    "batch_workload",
    "concatenation_workload",
    "plain_workload",
    "DEFAULT_MIX",
    "QueryLogMix",
    "dispatch_statistics",
    "querylog_workload",
    "AuthzOp",
    "authz_tuples",
    "authz_workload",
    "EdgeOp",
    "LabeledEdgeOp",
    "TupleOp",
    "labeled_update_stream",
    "tuple_churn_stream",
    "update_stream",
]
