"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands
--------
``repro list``
    Print the Table 1 / Table 2 taxonomies from the live registry.
``repro build EDGELIST --index NAME [--save FILE]``
    Build an index over an edge-list file and report build time and size;
    optionally persist it.
``repro query EDGELIST --index NAME S T [--load FILE]``
    Answer one reachability query (vertex tokens as they appear in the
    file); ``--load`` reuses a saved index instead of rebuilding.
``repro query EDGELIST --index NAME --pairs-file PAIRS``
    Answer a whole file of ``S T`` lines in one ``query_batch`` call and
    report batch throughput on stderr.
``repro lquery EDGELIST --index NAME S T CONSTRAINT [--load FILE]``
    Answer one path-constrained query over a labeled edge list.
``repro explain EDGELIST S T --index NAME``
    Show the routed decision path of one query — which probe answered it
    (label probe, certificate, guided fallback) — plus the per-phase
    build breakdown with ``--build``.
``repro trace EDGELIST [S T] --index NAME [--jsonl FILE]``
    Build (and optionally query) under the span tracer and print the
    recorded span trees; ``--jsonl`` exports them as JSON lines.
``repro inspect FILE``
    Show the class and version of a saved index without loading it.
``repro serve EDGELIST [--labeled] --port N [--trace]``
    Run the snapshot-isolated HTTP query service over an edge list;
    ``--trace`` enables the span tracer behind ``GET /debug/trace``;
    ``--index-param KEY=VALUE`` (repeatable) forwards build parameters
    to the index family (e.g. ``--index Sharded --index-param
    num_shards=4``); ``--slo 'reach.p99 < 5ms'`` (repeatable) tracks
    burn-rate objectives that pre-emptively trip the breaker, and
    ``--audit-rate 0.001`` shadow-audits served answers against the
    BFS oracle; ``--authz`` (or ``--authz-tuples FILE``) attaches a
    tuple store behind ``POST /authz/write|check|expand``.
``repro authz check TUPLES SUBJECT OBJECT [--namespace N] [--family F]``
    One Zanzibar-style permission check over a relation-tuples file
    (``subject#relation@object`` lines); exit 0 allowed, 1 denied.
``repro authz list-objects TUPLES SUBJECT [--type T]``
    Every entity the subject can reach, via the set-enumeration fast
    path (``--type doc`` keeps only ``doc:`` entities).
``repro authz list-subjects TUPLES OBJECT [--type T]``
    Every entity that reaches the object (the inverse enumeration).
``repro top URL [--interval S] [--once]``
    Live ops dashboard: poll a running service's ``GET /slo`` and
    render routes, burn rates, breaker state, and audit verdicts.
``repro shard stats EDGELIST --shards K``
    Partition a graph (its condensation when cyclic) and report shard
    sizes, cut edges, and refinement moves without building indexes.
``repro shard build EDGELIST --family NAME --shards K [--save FILE]``
    Build a partitioned two-level index (parallel shard builds) and
    print the aggregated per-shard build report.
``repro shard query EDGELIST S T --shards K [--explain]``
    Answer one query through a sharded index, optionally showing the
    shard route (intra_shard / cross_shard / boundary_cache).
``repro chaos EDGELIST --fault POINT=KIND[:PROB][:MS] [--seed N]``
    Run a seeded fault-injection schedule against a sharded build, a
    persistence round-trip, and a batch of service queries; print the
    injected-fault counts and per-outcome tallies.  Exits non-zero if
    any failure surfaced as something other than a typed ``repro``
    error or a three-valued answer.
``repro experiment NAME``
    Run one DESIGN.md experiment (taxonomy / speed / size / …) and print
    its table.
``repro accel [--json]``
    Show the acceleration-layer status: numpy availability, the selected
    backend, and the kill switch.  Commands that run kernels accept
    ``--backend {auto,python,numpy}`` to pin the backend for that run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import accel

from repro.bench.tables import format_seconds, render_table
from repro.core.condensed import CondensedIndex
from repro.core.registry import (
    all_labeled_indexes,
    all_plain_indexes,
    labeled_index,
    plain_index,
)
from repro.graphs.io import read_edge_list, read_labeled_edge_list
from repro.graphs.topo import is_dag

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    plain_rows = [
        (m.name, m.framework, m.index_type, m.input_kind, m.dynamic)
        for m in sorted(
            (cls.metadata for cls in all_plain_indexes().values()),
            key=lambda m: (m.framework, m.name),
        )
    ]
    print(
        render_table(
            ["Index", "Framework", "Type", "Input", "Dynamic"],
            plain_rows,
            title="Plain reachability indexes (Table 1)",
        )
    )
    print()
    labeled_rows = [
        (m.name, m.framework, m.constraint, m.index_type, m.input_kind, m.dynamic)
        for m in sorted(
            (cls.metadata for cls in all_labeled_indexes().values()),
            key=lambda m: (m.framework, m.name),
        )
    ]
    print(
        render_table(
            ["Index", "Framework", "Constraint", "Type", "Input", "Dynamic"],
            labeled_rows,
            title="Path-constrained reachability indexes (Table 2)",
        )
    )
    return 0


def _build_plain(path: str, name: str):
    graph, ids = read_edge_list(path)
    cls = plain_index(name)
    start = time.perf_counter()
    if cls.metadata.input_kind == "DAG" and not is_dag(graph):
        index = CondensedIndex.build(graph, inner=cls)
    else:
        index = cls.build(graph)
    elapsed = time.perf_counter() - start
    return graph, ids, index, elapsed


def _cmd_build(args: argparse.Namespace) -> int:
    graph, _ids, index, elapsed = _build_plain(args.edgelist, args.index)
    print(
        f"{args.index}: built over |V|={graph.num_vertices} "
        f"|E|={graph.num_edges} in {format_seconds(elapsed)}; "
        f"{index.size_in_entries():,} entries"
    )
    if args.save:
        from repro.persistence import save_index

        save_index(index, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Compare the fast index families on the user's own graph."""
    from repro.bench.harness import build_index, time_workload
    from repro.traversal.online import bfs_reachable
    from repro.workloads.queries import plain_workload

    graph, _ids = read_edge_list(args.edgelist)
    workload = plain_workload(
        graph, args.queries, positive_fraction=0.3, seed=args.seed
    )
    rows: list[tuple[str, str, str, str]] = []
    baseline = time_workload(
        "BFS", lambda s, t: bfs_reachable(graph, s, t), workload
    )
    rows.append(("online BFS", "-", "-", format_seconds(baseline.per_query_seconds)))
    for name in ("GRAIL", "Ferrari", "BFL", "IP", "PLL", "Preach", "Feline"):
        built = build_index(plain_index(name), graph)
        result = time_workload(name, built.index.query, workload)
        rows.append(
            (
                name,
                format_seconds(built.build_seconds),
                f"{built.entries:,}",
                format_seconds(result.per_query_seconds),
            )
        )
    print(
        render_table(
            ["method", "build", "entries", "per-query"],
            rows,
            title=f"{args.edgelist}: |V|={graph.num_vertices} |E|={graph.num_edges}, "
            f"{len(workload)} queries",
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.graphs.stats import graph_statistics

    graph, _ids = read_edge_list(args.edgelist)
    stats = graph_statistics(graph)
    print(render_table(["metric", "value"], stats.as_rows(), title=args.edgelist))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.persistence import peek_index_info

    info = peek_index_info(args.file)
    print(f"{args.file}: {info['class_name']} (format v{info['version']})")
    return 0


_EXPERIMENTS = {
    "taxonomy": "prints Tables 1 and 2",
    "speed": "CLAIM-S3-SPEED query-time comparison",
    "size": "CLAIM-S3-SIZE index-size comparison",
    "scaling": "CLAIM-S3-SCALE partial-index build scaling",
    "orders": "ABL-ORDER TOL order instantiations",
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.bench import experiments
    from repro.bench.tables import format_seconds as fmt

    small = getattr(args, "small", False)
    name = args.name
    if name == "taxonomy":
        return _cmd_list(args)
    if name == "speed":
        rows = (
            experiments.query_speed_rows(layers=6, width=10, num_queries=40)
            if small
            else experiments.query_speed_rows()
        )
        print(
            render_table(
                ["method", "kind", "per-query", "entries"],
                [
                    (r["name"], r["kind"], fmt(r["per_query"]), f"{r['entries']:,}")
                    for r in sorted(rows, key=lambda r: r["per_query"])
                ],
                title="CLAIM-S3-SPEED",
            )
        )
        return 0
    if name == "size":
        rows = (
            experiments.index_size_rows(num_vertices=60)
            if small
            else experiments.index_size_rows()
        )
        print(
            render_table(
                ["index", "entries", "build"],
                [
                    (r["name"], f"{r['entries']:,}", fmt(r["build_seconds"]))
                    for r in rows
                ],
                title="CLAIM-S3-SIZE",
            )
        )
        return 0
    if name == "scaling":
        rows = (
            experiments.build_scaling_rows(sizes=(50, 100))
            if small
            else experiments.build_scaling_rows()
        )
        print(
            render_table(
                ["index", "|V|", "build", "entries"],
                [
                    (r["name"], r["vertices"], fmt(r["build_seconds"]), f"{r['entries']:,}")
                    for r in rows
                ],
                title="CLAIM-S3-SCALE",
            )
        )
        return 0
    if name == "orders":
        rows = (
            experiments.ablation_order_rows(num_vertices=80)
            if small
            else experiments.ablation_order_rows()
        )
        print(
            render_table(
                ["order", "build", "entries"],
                [(r["order"], fmt(r["build_seconds"]), f"{r['entries']:,}") for r in rows],
                title="ABL-ORDER",
            )
        )
        return 0
    known = ", ".join(sorted(_EXPERIMENTS))
    print(f"unknown experiment {name!r}; known: {known}", file=sys.stderr)
    return 2


def _read_pairs_file(path: str) -> list[tuple[str, str]]:
    """Vertex-token pairs, one ``S T`` per line; ``#`` comments and blanks skipped."""
    pairs: list[tuple[str, str]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.split("#", 1)[0].strip()
            if not stripped:
                continue
            tokens = stripped.split()
            if len(tokens) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'SOURCE TARGET', got {stripped!r}"
                )
            pairs.append((tokens[0], tokens[1]))
    return pairs


def _cmd_query(args: argparse.Namespace) -> int:
    if args.pairs_file is None and (args.source is None or args.target is None):
        print("query needs SOURCE and TARGET, or --pairs-file", file=sys.stderr)
        return 2
    if args.load:
        from repro.core.base import ReachabilityIndex
        from repro.persistence import load_index

        _graph, ids = read_edge_list(args.edgelist)
        index = load_index(args.load)
        if not isinstance(index, ReachabilityIndex):
            print(f"{args.load}: not a plain index", file=sys.stderr)
            return 2
    else:
        _graph, ids, index, _elapsed = _build_plain(args.edgelist, args.index)
    if args.pairs_file is not None:
        try:
            token_pairs = _read_pairs_file(args.pairs_file)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            pairs = [(ids[s], ids[t]) for s, t in token_pairs]
        except KeyError as exc:
            print(f"unknown vertex {exc}", file=sys.stderr)
            return 2
        start = time.perf_counter()
        answers = index.query_batch(pairs)
        elapsed = time.perf_counter() - start
        for (s_token, t_token), answer in zip(token_pairs, answers):
            print(f"Qr({s_token}, {t_token}) = {str(answer).lower()}")
        print(
            f"# {len(pairs)} queries in {format_seconds(elapsed)} "
            f"({len(pairs) / elapsed:,.0f}/s)" if elapsed > 0 and pairs
            else f"# {len(pairs)} queries",
            file=sys.stderr,
        )
        return 0
    try:
        s = ids[args.source]
        t = ids[args.target]
    except KeyError as exc:
        print(f"unknown vertex {exc}", file=sys.stderr)
        return 2
    answer = index.query(s, t)
    print(f"Qr({args.source}, {args.target}) = {str(answer).lower()}")
    return 0 if answer else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    _graph, ids, index, _elapsed = _build_plain(args.edgelist, args.index)
    try:
        s = ids[args.source]
        t = ids[args.target]
    except KeyError as exc:
        print(f"unknown vertex {exc}", file=sys.stderr)
        return 2
    explanation = index.explain(s, t)
    if args.json:
        print(json.dumps(explanation.as_dict(), indent=2))
    else:
        print(explanation.render_text())
        report = getattr(index, "build_report", None)
        if args.build and report is not None:
            print()
            print(report.render_text())
    return 0 if explanation.answer else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.tracer import (
        TRACER,
        disable_tracing,
        enable_tracing,
        export_jsonl,
        render_span_tree,
    )

    enable_tracing(sample_rate=args.sample_rate)
    try:
        _graph, ids, index, _elapsed = _build_plain(args.edgelist, args.index)
        if args.source is not None and args.target is not None:
            try:
                s = ids[args.source]
                t = ids[args.target]
            except KeyError as exc:
                print(f"unknown vertex {exc}", file=sys.stderr)
                return 2
            answer = index.query(s, t)
            print(f"Qr({args.source}, {args.target}) = {str(answer).lower()}")
        spans = TRACER.finished()
        if args.since_ms is not None:
            cutoff = time.time() - args.since_ms / 1000.0
            spans = [s for s in spans if s.start_unix_s >= cutoff]
        if args.max_spans is not None:
            # Keep the newest roots: the tail of the finished list.
            spans = spans[-max(0, args.max_spans):] if args.max_spans else []
        for span in spans:
            print(render_span_tree(span))
        if args.jsonl:
            written = export_jsonl(spans, args.jsonl)
            print(f"# {written} spans written to {args.jsonl}", file=sys.stderr)
        report = getattr(index, "build_report", None)
        if report is not None:
            print(report.render_text())
    finally:
        disable_tracing()
    return 0


def _cmd_lquery(args: argparse.Namespace) -> int:
    graph, ids = read_labeled_edge_list(args.edgelist)
    if args.load:
        from repro.core.base import LabelConstrainedIndex
        from repro.persistence import load_index

        index = load_index(args.load)
        if not isinstance(index, LabelConstrainedIndex):
            print(f"{args.load}: not a labeled index", file=sys.stderr)
            return 2
    else:
        index = labeled_index(args.index).build(graph)
    try:
        s = ids[args.source]
        t = ids[args.target]
    except KeyError as exc:
        print(f"unknown vertex {exc}", file=sys.stderr)
        return 2
    answer = index.query(s, t, args.constraint)
    print(f"Qr({args.source}, {args.target}, {args.constraint}) = {str(answer).lower()}")
    return 0 if answer else 1


def _parse_index_params(items: list[str] | None) -> dict[str, object]:
    """``KEY=VALUE`` pairs → build kwargs, ints coerced (``num_shards=4``)."""
    params: dict[str, object] = {}
    for item in items or ():
        key, separator, value = item.partition("=")
        if not separator or not key:
            raise ValueError(f"--index-param needs KEY=VALUE, got {item!r}")
        try:
            params[key] = int(value)
        except ValueError:
            params[key] = value
    return params


def _build_sharded(args: argparse.Namespace):
    """Build a ShardedIndex over an edge list (condensing cyclic input)."""
    from repro.shard import ShardedIndex

    graph, ids = read_edge_list(args.edgelist)
    params: dict[str, object] = {
        "family": args.family,
        "num_shards": args.shards,
        "refine_passes": args.refine_passes,
        "executor": args.executor,
    }
    if args.workers is not None:
        params["workers"] = args.workers
    start = time.perf_counter()
    if is_dag(graph):
        index = ShardedIndex.build(graph, **params)
    else:
        index = CondensedIndex.build(graph, inner=ShardedIndex, **params)
    elapsed = time.perf_counter() - start
    return graph, ids, index, elapsed


def _shard_report(index):
    """The ShardBuildReport, reaching through the condensation wrapper."""
    report = getattr(index, "shard_build_report", None)
    if report is None and isinstance(index, CondensedIndex):
        report = getattr(index.inner, "shard_build_report", None)
    return report


def _cmd_shard_stats(args: argparse.Namespace) -> int:
    from repro.graphs.scc import condense
    from repro.shard import partition_dag

    graph, _ids = read_edge_list(args.edgelist)
    target = graph
    if not is_dag(graph):
        condensation = condense(graph)
        target = condensation.dag
        print(
            f"cyclic input: partitioning the condensation "
            f"({graph.num_vertices} vertices -> {target.num_vertices} SCCs)"
        )
    partition = partition_dag(target, args.shards, args.refine_passes)
    rows = [(key, str(value)) for key, value in partition.as_dict().items()]
    print(render_table(["metric", "value"], rows, title=args.edgelist))
    return 0


def _cmd_shard_build(args: argparse.Namespace) -> int:
    graph, _ids, index, elapsed = _build_sharded(args)
    print(
        f"Sharded[{args.family} x{args.shards}]: built over "
        f"|V|={graph.num_vertices} |E|={graph.num_edges} in "
        f"{format_seconds(elapsed)}; {index.size_in_entries():,} entries"
    )
    report = _shard_report(index)
    if report is not None:
        print(report.render_text())
    if args.save:
        from repro.persistence import save_index

        save_index(index, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_shard_query(args: argparse.Namespace) -> int:
    if args.load:
        from repro.core.base import ReachabilityIndex
        from repro.persistence import load_index

        _graph, ids = read_edge_list(args.edgelist)
        index = load_index(args.load)
        if not isinstance(index, ReachabilityIndex):
            print(f"{args.load}: not a plain index", file=sys.stderr)
            return 2
    else:
        _graph, ids, index, _elapsed = _build_sharded(args)
    try:
        s = ids[args.source]
        t = ids[args.target]
    except KeyError as exc:
        print(f"unknown vertex {exc}", file=sys.stderr)
        return 2
    if args.explain:
        explanation = index.explain(s, t)
        print(explanation.render_text())
        return 0 if explanation.answer else 1
    answer = index.query(s, t)
    print(f"Qr({args.source}, {args.target}) = {str(answer).lower()}")
    return 0 if answer else 1


def _read_tuples(path: str):
    """Parse a relation-tuples file: one ``subject#relation@object`` per line.

    Blank lines and ``//`` comment lines are skipped (``#`` is the
    tuple separator, so it cannot double as the comment character).
    """
    from repro.authz import parse_tuple

    tuples = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            text = line.strip()
            if not text or text.startswith("//"):
                continue
            tuples.append(parse_tuple(text))
    return tuples


def _authz_store_for(args: argparse.Namespace):
    """An AuthzStore preloaded from the command's tuples file."""
    from repro.authz import AuthzStore

    store = AuthzStore(args.family)
    zookie = store.write(args.namespace, writes=_read_tuples(args.tuples))
    return store, zookie


def _cmd_authz_check(args: argparse.Namespace) -> int:
    store, zookie = _authz_store_for(args)
    result = store.check(args.namespace, args.subject, args.object, at_least=zookie)
    print("ALLOWED" if result.allowed else "DENIED")
    print(f"zookie: {result.zookie.encode()}", file=sys.stderr)
    return 0 if result.allowed else 1


def _cmd_authz_list(args: argparse.Namespace) -> int:
    store, zookie = _authz_store_for(args)
    if args.authz_command == "list-objects":
        result = store.list_objects(
            args.namespace, args.entity, object_type=args.type, at_least=zookie
        )
    else:
        result = store.list_subjects(
            args.namespace, args.entity, subject_type=args.type, at_least=zookie
        )
    for name in result.names:
        print(name)
    print(
        f"{len(result.names)} entities via route {result.route} "
        f"(zookie {result.zookie.encode()})",
        file=sys.stderr,
    )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    """Recommend an index family for an edge-list graph (and workload)."""
    import json

    from repro.advisor import advise
    from repro.workloads.queries import plain_workload

    if args.labeled:
        graph, _ids = read_labeled_edge_list(args.edgelist)
    else:
        graph, _ids = read_edge_list(args.edgelist)
    workload = None
    if args.queries:
        sample_graph = graph.to_plain() if args.labeled else graph
        workload = plain_workload(
            sample_graph,
            args.queries,
            positive_fraction=args.positive_fraction,
            seed=args.seed,
        )
    candidates = args.candidates.split(",") if args.candidates else None
    advice = advise(
        graph,
        workload,
        args.budget_bytes,
        candidates=candidates,
        probe=not args.no_probe,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(advice.as_dict(), indent=2))
    else:
        print(advice.render_text())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ReachabilityService
    from repro.service.server import serve

    if args.trace:
        from repro.obs.tracer import enable_tracing

        enable_tracing(sample_rate=args.trace_sample_rate)
    try:
        index_params = _parse_index_params(args.index_param)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if getattr(args, "fault", None):
        # Install chaos before recovery so wal.replay faults fire too.
        from repro.resilience import ChaosPolicy, Fault, install_chaos

        try:
            faults = [Fault.parse(spec) for spec in args.fault]
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        install_chaos(ChaosPolicy(faults, seed=args.chaos_seed))
        print(
            f"chaos: {len(faults)} fault(s) armed, seed={args.chaos_seed}",
            file=sys.stderr,
        )
    if args.labeled:
        graph, _ids = read_labeled_edge_list(args.edgelist)
    else:
        graph, _ids = read_edge_list(args.edgelist)

    wal = None
    recovered = None
    serve_index, serve_params = args.index, index_params
    if args.wal_dir:
        from repro.errors import WALError
        from repro.wal import WriteAheadLog, recover_states

        wal = WriteAheadLog(
            args.wal_dir,
            fsync=args.wal_fsync,
            segment_bytes=args.wal_segment_bytes,
            max_pending=args.wal_max_pending,
        )
        try:
            recovered = recover_states(wal, graph)
        except WALError as exc:
            print(f"wal: {exc}", file=sys.stderr)
            return 2
        graph = recovered.graph
        print(recovered.summary(), file=sys.stderr)
        if recovered.index is not None:
            serve_index = recovered.index
            serve_params = recovered.index_params or {}

    if args.labeled:
        labeled = None if args.labeled_index == "none" else args.labeled_index
        service = ReachabilityService(
            graph,
            index=serve_index,
            index_params=serve_params,
            labeled_index=labeled,
            cache_capacity=args.cache_capacity or None,
            coalesce=not args.no_coalesce,
            rebuild=args.rebuild,
            patch_audit_pairs=args.patch_audit_pairs,
        )
    else:
        service = ReachabilityService(
            graph,
            index=serve_index,
            index_params=serve_params,
            cache_capacity=args.cache_capacity or None,
            coalesce=not args.no_coalesce,
            rebuild=args.rebuild,
            patch_audit_pairs=args.patch_audit_pairs,
        )
    if recovered is not None:
        service.restore_epoch(recovered.epoch)
    if wal is not None:
        service.attach_wal(wal)
    tracker = None
    if args.slo:
        from repro.errors import ReproError
        from repro.slo import SLOTracker

        try:
            tracker = SLOTracker(
                args.slo,
                service.metrics,
                breaker=service.breaker,
                fast_window_s=args.slo_fast_window,
                slow_window_s=args.slo_slow_window,
            )
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        tracker.start(interval_s=args.slo_interval)
    auditor = None
    if args.audit_rate:
        from repro.slo import ShadowAuditor

        auditor = ShadowAuditor(
            sample_rate=args.audit_rate, metrics=service.metrics
        )
        service.attach_auditor(auditor)
        auditor.start()
    advisor = None
    if args.advise_interval:
        from repro.service import AdvisorLoop

        advisor = AdvisorLoop(
            service,
            interval_s=args.advise_interval,
            budget_bytes=args.advise_budget_bytes,
            slo_tracker=tracker,
        )
        advisor.start()
    authz_store = None
    has_recovered_authz = recovered is not None and bool(recovered.authz)
    if args.authz or args.authz_tuples or has_recovered_authz:
        from repro.authz import AuthzStore

        authz_store = AuthzStore(args.authz_family)
        if has_recovered_authz:
            # Republish recovered namespaces at their exact pre-crash
            # epochs before any new write, so old zookies still validate.
            authz_store.restore(recovered.authz)
        if wal is not None:
            authz_store.attach_wal(wal)
        if args.authz_tuples:
            zookie = authz_store.write(
                args.authz_namespace, writes=_read_tuples(args.authz_tuples)
            )
            print(
                f"authz: loaded {args.authz_tuples} into namespace "
                f"{args.authz_namespace!r} (zookie {zookie.encode()})",
                file=sys.stderr,
            )
    checkpointer = None
    if wal is not None:
        from repro.wal import CheckpointManager

        checkpointer = CheckpointManager(
            wal,
            service=service,
            authz=authz_store,
            every_records=args.wal_checkpoint_every,
            interval_s=args.wal_checkpoint_interval,
        )
        checkpointer.start()
    server = serve(
        service,
        host=args.host,
        port=args.port,
        quiet=False,
        max_concurrent=args.max_concurrent,
        queue_depth=args.admission_queue,
        queue_timeout_s=args.admission_wait_ms / 1000.0,
        default_timeout_ms=args.timeout_ms,
        advisor=advisor,
        slo_tracker=tracker,
        auditor=auditor,
        authz=authz_store,
    )
    host, port = server.server_address[:2]
    trace_line = (
        f"\n  http://{host}:{port}/debug/trace" if args.trace else ""
    )
    print(
        f"serving {service!r}\n"
        f"  http://{host}:{port}/reach?source=S&target=T\n"
        f"  http://{host}:{port}/metrics   (Ctrl-C to stop)"
        + trace_line
    )

    # Graceful shutdown: SIGTERM/SIGINT stop admissions, drain in-flight
    # requests up to --drain-timeout, then flush a final metrics snapshot.
    # serve_forever runs on a background thread so the main thread can
    # wait on the signal event (signal handlers only fire on main).
    import signal
    import threading

    stop = threading.Event()
    previous = {}

    def _on_signal(signum: int, _frame: object) -> None:
        print(f"\nreceived {signal.Signals(signum).name}: draining...",
              file=sys.stderr)
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # non-main thread / unsupported
            pass
    thread = server.start_background()
    try:
        stop.wait()
    except KeyboardInterrupt:  # fallback when the handler didn't install
        pass
    if advisor is not None:
        advisor.stop()
    if tracker is not None:
        tracker.stop()
    if auditor is not None:
        auditor.stop()
    drained = server.drain(args.drain_timeout)
    if checkpointer is not None:
        # After drain: no writer is mid-append, so the final checkpoint
        # captures everything and the log closes at a record boundary.
        checkpointer.stop(final_checkpoint=True)
    if wal is not None:
        wal.close()
    thread.join(timeout=args.drain_timeout + 1.0)
    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):
            pass
    in_flight = server.admission.in_flight
    state = "drained cleanly" if drained else f"{in_flight} request(s) abandoned"
    print(f"shutdown: {state}", file=sys.stderr)
    print(service.metrics_text(), end="")
    return 0 if drained else 1


def _cmd_top(args: argparse.Namespace) -> int:
    """Live ops dashboard: poll GET /slo and redraw a text frame."""
    from repro.slo import fetch_slo, render_dashboard

    url = args.url
    if "://" not in url:
        url = f"http://{url}"
    while True:
        try:
            payload = fetch_slo(url)
        except OSError as exc:
            print(f"cannot reach {url}: {exc}", file=sys.stderr)
            return 1
        frame = render_dashboard(payload)
        if args.once:
            print(frame)
            return 0
        # Clear + home, then the frame — a flicker-free poor man's top.
        sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        sys.stdout.flush()
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded fault schedule against the stack; report typed outcomes.

    Exercises three surfaces under the installed :class:`ChaosPolicy`:
    a sharded build (thread executor, so ``shard.build_worker`` faults
    fire in-process), a persistence round-trip (``persistence.read``),
    and a batch of service queries (``kernels.sweep``, deadlines).  Every
    outcome must be a typed result — TRUE/FALSE/UNKNOWN or a named
    ``repro`` error; anything else is a resilience bug and exits 1.
    """
    import collections
    import os
    import tempfile

    from repro.errors import ReproError
    from repro.obs.metrics import global_registry
    from repro.resilience import ChaosPolicy, Fault, chaos, deadline_scope
    from repro.service import ReachabilityService

    try:
        faults = [Fault.parse(spec) for spec in args.fault or []]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not faults:
        print("no --fault given; nothing to inject", file=sys.stderr)
        return 2
    graph, _ids = read_edge_list(args.edgelist)
    outcomes: collections.Counter[str] = collections.Counter()
    policy = ChaosPolicy(faults, seed=args.seed)

    def note(kind: str) -> None:
        outcomes[kind] += 1

    with chaos(policy):
        # 1. sharded build under fault injection (threads: chaos visible)
        try:
            from repro.shard import ShardedIndex

            params: dict[str, object] = {
                "family": args.index,
                "num_shards": args.shards,
                "executor": "thread",
                "retry_seed": args.seed,
            }
            if is_dag(graph):
                ShardedIndex.build(graph, **params)
            else:
                CondensedIndex.build(graph, inner=ShardedIndex, **params)
            note("build:ok")
        except ReproError as exc:
            note(f"build:{type(exc).__name__}")
        except Exception as exc:  # noqa: BLE001 — the failure we test for
            note(f"build:UNTYPED:{type(exc).__name__}")

        # 2. persistence round-trip under fault injection
        try:
            from repro.core.registry import plain_index as _plain
            from repro.persistence import load_index, save_index

            index = _plain(args.index).build(graph)
            descriptor, path = tempfile.mkstemp(suffix=".repro")
            os.close(descriptor)
            try:
                save_index(index, path)
                load_index(path)
                note("persist:ok")
            finally:
                os.unlink(path)
        except ReproError as exc:
            note(f"persist:{type(exc).__name__}")
        except Exception as exc:  # noqa: BLE001
            note(f"persist:UNTYPED:{type(exc).__name__}")

        # 3. service queries under fault injection and a deadline
        try:
            service = ReachabilityService(graph, index=args.index)
            import random as _random

            rng = _random.Random(args.seed)
            n = graph.num_vertices
            pairs = (
                [(rng.randrange(n), rng.randrange(n)) for _ in range(args.queries)]
                if n
                else []
            )
            with deadline_scope(args.timeout_ms):
                for result in service.execute_batch(pairs):
                    note(f"query:{result.status}")
        except ReproError as exc:
            note(f"query:{type(exc).__name__}")
        except Exception as exc:  # noqa: BLE001
            note(f"query:UNTYPED:{type(exc).__name__}")

    print(f"chaos seed={args.seed} faults={len(faults)}")
    for key in sorted(policy.injected_counts()):
        print(f"  injected {key}: {policy.injected_counts()[key]}")
    for key in sorted(outcomes):
        print(f"  outcome {key}: {outcomes[key]}")
    def _flat(prefix: str, node: object):
        if isinstance(node, dict):
            for key, value in sorted(node.items()):
                yield from _flat(f"{prefix}.{key}" if prefix else str(key), value)
        elif isinstance(node, (int, float)):
            yield prefix, node

    for name, value in _flat("", global_registry().as_dict()):
        if name.startswith(("chaos.", "resilience.", "shard.build.")):
            print(f"  counter {name}: {value}")
    untyped = sum(count for key, count in outcomes.items() if ":UNTYPED:" in key)
    if untyped:
        print(f"FAIL: {untyped} untyped outcome(s)", file=sys.stderr)
        return 1
    print("all outcomes typed")
    return 0


def _add_backend_argument(p: argparse.ArgumentParser) -> None:
    """Register the shared ``--backend`` override on one subcommand."""
    p.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default=None,
        help="kernel backend: auto (runtime-detected, default), python "
        "(authoritative fallback), numpy (fail if numpy is missing)",
    )


def _apply_backend(args: argparse.Namespace) -> None:
    """Pin the process-wide kernel backend when ``--backend`` was given."""
    backend = getattr(args, "backend", None)
    if backend is not None:
        accel.set_backend(backend)


def _cmd_accel(args: argparse.Namespace) -> int:
    status = accel.describe()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"backend: {status['backend']} (selection: {status['selection']})")
    print(f"numpy: {status['numpy_version'] or 'not importable'}")
    print(f"kill switch (REPRO_ACCEL=0): {'engaged' if status['kill_switch'] else 'off'}")
    print(
        "thresholds: "
        f">={status['min_vertices']} vertices, >={status['min_batch']} batched pairs"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Reachability indexes on graphs"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="print the index taxonomies").set_defaults(
        func=_cmd_list
    )

    build = sub.add_parser("build", help="build an index over an edge list")
    build.add_argument("edgelist")
    build.add_argument("--index", default="PLL")
    build.add_argument("--save", default=None, help="persist the built index")
    _add_backend_argument(build)
    build.set_defaults(func=_cmd_build)

    stats = sub.add_parser("stats", help="profile an edge-list graph")
    stats.add_argument("edgelist")
    stats.set_defaults(func=_cmd_stats)

    compare = sub.add_parser(
        "compare", help="benchmark the fast index families on a graph"
    )
    compare.add_argument("edgelist")
    compare.add_argument("--queries", type=int, default=200)
    compare.add_argument("--seed", type=int, default=0)
    _add_backend_argument(compare)
    compare.set_defaults(func=_cmd_compare)

    inspect = sub.add_parser("inspect", help="show a saved index's header")
    inspect.add_argument("file")
    inspect.set_defaults(func=_cmd_inspect)

    experiment = sub.add_parser(
        "experiment", help="run one DESIGN.md experiment and print its table"
    )
    experiment.add_argument("name", help=", ".join(sorted(_EXPERIMENTS)))
    experiment.add_argument(
        "--small", action="store_true", help="reduced parameters (quick look)"
    )
    experiment.set_defaults(func=_cmd_experiment)

    query = sub.add_parser(
        "query", help="answer plain reachability queries (single or batched)"
    )
    query.add_argument("edgelist")
    query.add_argument("source", nargs="?", default=None)
    query.add_argument("target", nargs="?", default=None)
    query.add_argument("--index", default="PLL")
    query.add_argument(
        "--load", default=None, help="use a saved index file instead of rebuilding"
    )
    query.add_argument(
        "--pairs-file",
        default=None,
        help="answer a whole file of 'SOURCE TARGET' lines through the batch path",
    )
    _add_backend_argument(query)
    query.set_defaults(func=_cmd_query)

    explain = sub.add_parser(
        "explain", help="show the routed decision path of one query"
    )
    explain.add_argument("edgelist")
    explain.add_argument("source")
    explain.add_argument("target")
    explain.add_argument("--index", default="PLL")
    explain.add_argument(
        "--build", action="store_true", help="also print the per-phase build breakdown"
    )
    explain.add_argument(
        "--json", action="store_true", help="emit the explanation as JSON"
    )
    explain.set_defaults(func=_cmd_explain)

    trace = sub.add_parser(
        "trace", help="build (and optionally query) under the span tracer"
    )
    trace.add_argument("edgelist")
    trace.add_argument("source", nargs="?", default=None)
    trace.add_argument("target", nargs="?", default=None)
    trace.add_argument("--index", default="PLL")
    trace.add_argument(
        "--sample-rate", type=float, default=1.0, help="root-span sampling rate"
    )
    trace.add_argument(
        "--jsonl", default=None, help="export recorded spans as JSON lines"
    )
    trace.add_argument(
        "--since-ms",
        type=float,
        default=None,
        metavar="MS",
        help="only show root spans that started within the last MS milliseconds",
    )
    trace.add_argument(
        "--max-spans",
        type=int,
        default=None,
        metavar="N",
        help="cap the output to the N most recent root spans",
    )
    trace.set_defaults(func=_cmd_trace)

    lquery = sub.add_parser("lquery", help="answer one path-constrained query")
    lquery.add_argument("edgelist")
    lquery.add_argument("source")
    lquery.add_argument("target")
    lquery.add_argument("constraint")
    lquery.add_argument("--index", default="P2H+")
    lquery.add_argument(
        "--load", default=None, help="use a saved index file instead of rebuilding"
    )
    lquery.set_defaults(func=_cmd_lquery)

    shard = sub.add_parser(
        "shard", help="partitioned (sharded) reachability indexes"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    def _shard_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("edgelist")
        p.add_argument("--shards", type=int, default=4, help="partition count k")
        p.add_argument(
            "--refine-passes",
            type=int,
            default=2,
            help="greedy min-cut refinement passes over the banding",
        )

    shard_stats = shard_sub.add_parser(
        "stats", help="partition a graph and report the cut"
    )
    _shard_common(shard_stats)
    shard_stats.set_defaults(func=_cmd_shard_stats)

    def _shard_build_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", default="PLL", help="plain family per shard")
        p.add_argument(
            "--executor",
            choices=("thread", "process", "serial"),
            default="thread",
            help="how shard builds run in parallel",
        )
        p.add_argument(
            "--workers", type=int, default=None, help="parallel build workers"
        )

    shard_build = shard_sub.add_parser(
        "build", help="build a sharded two-level index"
    )
    _shard_common(shard_build)
    _shard_build_args(shard_build)
    shard_build.add_argument("--save", default=None, help="persist the built index")
    _add_backend_argument(shard_build)
    shard_build.set_defaults(func=_cmd_shard_build)

    shard_query = shard_sub.add_parser(
        "query", help="answer one query through a sharded index"
    )
    shard_query.add_argument("edgelist")
    shard_query.add_argument("source")
    shard_query.add_argument("target")
    shard_query.add_argument("--shards", type=int, default=4)
    shard_query.add_argument("--refine-passes", type=int, default=2)
    _shard_build_args(shard_query)
    shard_query.add_argument(
        "--load", default=None, help="use a saved index file instead of rebuilding"
    )
    shard_query.add_argument(
        "--explain", action="store_true", help="show the shard route taken"
    )
    shard_query.set_defaults(func=_cmd_shard_query)

    authz_cmd = sub.add_parser(
        "authz", help="Zanzibar-style authorization over a relation-tuples file"
    )
    authz_sub = authz_cmd.add_subparsers(dest="authz_command", required=True)

    def _authz_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("tuples", help="file of subject#relation@object lines")
        p.add_argument("--namespace", default="default", help="tenant namespace")
        p.add_argument(
            "--family", default="TC", help="plain index family behind the store"
        )

    authz_check = authz_sub.add_parser(
        "check", help="one permission check (exit 0 allowed, 1 denied)"
    )
    _authz_common(authz_check)
    authz_check.add_argument("subject")
    authz_check.add_argument("object")
    authz_check.set_defaults(func=_cmd_authz_check)

    authz_list_objects = authz_sub.add_parser(
        "list-objects", help="every entity a subject can reach"
    )
    _authz_common(authz_list_objects)
    authz_list_objects.add_argument("entity", help="the subject to enumerate for")
    authz_list_objects.add_argument(
        "--type", default=None, help="keep only entities with this type: prefix"
    )
    authz_list_objects.set_defaults(func=_cmd_authz_list)

    authz_list_subjects = authz_sub.add_parser(
        "list-subjects", help="every entity that reaches an object"
    )
    _authz_common(authz_list_subjects)
    authz_list_subjects.add_argument("entity", help="the object to enumerate for")
    authz_list_subjects.add_argument(
        "--type", default=None, help="keep only entities with this type: prefix"
    )
    authz_list_subjects.set_defaults(func=_cmd_authz_list)

    advise_cmd = sub.add_parser(
        "advise",
        help="recommend an index family for a graph (and optional workload)",
    )
    advise_cmd.add_argument("edgelist")
    advise_cmd.add_argument(
        "--labeled", action="store_true", help="labeled edge list"
    )
    advise_cmd.add_argument(
        "--budget-bytes",
        type=int,
        default=None,
        help="cap the recommended index's serialized size",
    )
    advise_cmd.add_argument(
        "--queries",
        type=int,
        default=200,
        metavar="N",
        help="size of the synthetic workload sample (0 for graph-only advice)",
    )
    advise_cmd.add_argument(
        "--positive-fraction",
        type=float,
        default=0.3,
        help="reachable share of the synthetic workload sample",
    )
    advise_cmd.add_argument(
        "--candidates",
        default=None,
        metavar="A,B,C",
        help="comma-separated family names to consider (default: advisor's set)",
    )
    advise_cmd.add_argument(
        "--no-probe",
        action="store_true",
        help="skip micro-probe builds; rank on analytic priors only",
    )
    advise_cmd.add_argument("--seed", type=int, default=0)
    advise_cmd.add_argument(
        "--json", action="store_true", help="emit the Advice payload as JSON"
    )
    advise_cmd.set_defaults(func=_cmd_advise)

    serve = sub.add_parser(
        "serve", help="run the snapshot-isolated HTTP query service"
    )
    serve.add_argument("edgelist")
    serve.add_argument("--labeled", action="store_true", help="labeled edge list")
    serve.add_argument("--index", default="PLL", help="plain index family")
    serve.add_argument(
        "--index-param",
        action="append",
        metavar="KEY=VALUE",
        default=None,
        help="build parameter forwarded to the index family (repeatable)",
    )
    serve.add_argument(
        "--labeled-index",
        default="DLCR",
        help="labeled index family, or 'none' for traversal only",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--cache-capacity", type=int, default=4096)
    serve.add_argument(
        "--no-coalesce", action="store_true", help="disable request coalescing"
    )
    serve.add_argument("--rebuild", choices=("auto", "always"), default="auto")
    serve.add_argument(
        "--trace",
        action="store_true",
        help="enable the span tracer (spans at GET /debug/trace)",
    )
    serve.add_argument(
        "--trace-sample-rate", type=float, default=1.0, help="root-span sampling rate"
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=64,
        help="admission control: concurrent requests before queueing",
    )
    serve.add_argument(
        "--admission-queue",
        type=int,
        default=128,
        help="admission control: waiters before shedding with 503",
    )
    serve.add_argument(
        "--admission-wait-ms",
        type=float,
        default=250.0,
        help="max time a request waits for a slot before 503",
    )
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="default per-request deadline (requests may set their own)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight requests on SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--advise-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run the index advisor loop: re-advise on telemetry drift and "
        "swap the recommended index in live (also enables GET /advise?cached=1)",
    )
    serve.add_argument(
        "--advise-budget-bytes",
        type=int,
        default=None,
        help="size budget the advisor loop holds recommendations to",
    )
    serve.add_argument(
        "--slo",
        action="append",
        metavar="SPEC",
        default=None,
        help="SLO objective to track, e.g. 'reach.p99 < 5ms', "
        "'error_rate < 0.1%%', 'unknown_rate < 1%%' (repeatable); "
        "burn-rate breaches trip the circuit breaker pre-emptively "
        "and show at GET /slo",
    )
    serve.add_argument(
        "--slo-fast-window",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="fast burn-rate window (default 300s)",
    )
    serve.add_argument(
        "--slo-slow-window",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="slow burn-rate window (default 3600s)",
    )
    serve.add_argument(
        "--slo-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="how often the SLO tracker evaluates its objectives",
    )
    serve.add_argument(
        "--audit-rate",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="shadow-audit this fraction of served pair queries against "
        "the BFS oracle (e.g. 0.001; 0 disables)",
    )
    serve.add_argument(
        "--authz",
        action="store_true",
        help="attach an authz tuple store (enables POST /authz/*)",
    )
    serve.add_argument(
        "--authz-family",
        default="TC",
        help="plain index family behind the authz store",
    )
    serve.add_argument(
        "--authz-tuples",
        default=None,
        metavar="FILE",
        help="preload a subject#relation@object tuples file (implies --authz)",
    )
    serve.add_argument(
        "--authz-namespace",
        default="default",
        help="namespace the preloaded tuples land in",
    )
    serve.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="write-ahead log directory: append every write before the "
        "epoch swap and recover the pre-crash state on startup",
    )
    serve.add_argument(
        "--wal-fsync",
        choices=("always", "batch", "off"),
        default="batch",
        help="fsync policy: every append, every Nth append, or never "
        "(data still reaches the OS page cache on every append)",
    )
    serve.add_argument(
        "--wal-segment-bytes",
        type=int,
        default=4 << 20,
        help="rotate the active WAL segment past this size",
    )
    serve.add_argument(
        "--wal-max-pending",
        type=int,
        default=64,
        help="writes admitted into the WAL queue before shedding with 429",
    )
    serve.add_argument(
        "--wal-checkpoint-every",
        type=int,
        default=256,
        metavar="RECORDS",
        help="checkpoint + truncate after this much log growth",
    )
    serve.add_argument(
        "--wal-checkpoint-interval",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="how often the checkpointer wakes to look at log growth",
    )
    serve.add_argument(
        "--patch-audit-pairs",
        type=int,
        default=8,
        metavar="K",
        help="differentially audit each incremental index patch against "
        "the BFS oracle on K sampled pairs (0 disables; mismatch falls "
        "back to a counted full rebuild)",
    )
    serve.add_argument(
        "--fault",
        action="append",
        metavar="POINT=KIND[:PROB][:MS]",
        default=None,
        help="arm a chaos fault for this server (repeatable); includes "
        "the WAL points wal.append, wal.fsync, wal.replay",
    )
    serve.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the armed chaos faults",
    )
    _add_backend_argument(serve)
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top", help="live ops dashboard over a running service's GET /slo"
    )
    top.add_argument(
        "url", help="service base URL (e.g. http://127.0.0.1:8080)"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period between frames",
    )
    top.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    top.set_defaults(func=_cmd_top)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection schedule and report typed outcomes",
    )
    chaos_cmd.add_argument("edgelist")
    chaos_cmd.add_argument(
        "--fault",
        action="append",
        metavar="POINT=KIND[:PROB][:MS]",
        help="fault to inject (repeatable); points: persistence.read, "
        "shard.build_worker, kernels.sweep, service.handler, "
        "service.query; kinds: delay, error, corrupt",
    )
    chaos_cmd.add_argument("--seed", type=int, default=0)
    chaos_cmd.add_argument("--index", default="PLL", help="plain index family")
    chaos_cmd.add_argument("--shards", type=int, default=4)
    chaos_cmd.add_argument("--queries", type=int, default=50)
    chaos_cmd.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="deadline applied around the query batch",
    )
    chaos_cmd.set_defaults(func=_cmd_chaos)

    accel_cmd = sub.add_parser(
        "accel", help="show the numpy acceleration-layer status"
    )
    accel_cmd.add_argument(
        "--json", action="store_true", help="emit the status as JSON"
    )
    accel_cmd.set_defaults(func=_cmd_accel)

    args = parser.parse_args(argv)
    _apply_backend(args)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
