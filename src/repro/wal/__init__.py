"""Durable writes for the serving tier: WAL, recovery, checkpoints.

The write path of :mod:`repro.service` and :mod:`repro.authz` is
epoch-swapped in memory; this package makes those swaps survive a
process kill.  :class:`WriteAheadLog` appends a checksummed record
*before* each swap, :func:`recover_states` replays the log over the
last durable checkpoint at startup, and :class:`CheckpointManager`
periodically compacts the log off the writer lock.  See
``docs/DURABILITY.md`` for the record format and the guarantees.
"""

from repro.errors import WALCorruptionError, WALError, WriteBacklogError
from repro.wal.log import FSYNC_POLICIES, WalRecord, WalReplay, WriteAheadLog
from repro.wal.manager import CheckpointManager
from repro.wal.recovery import RecoveredState, checkpoint_payload, recover_states

__all__ = [
    "FSYNC_POLICIES",
    "CheckpointManager",
    "RecoveredState",
    "WALCorruptionError",
    "WALError",
    "WalRecord",
    "WalReplay",
    "WriteAheadLog",
    "WriteBacklogError",
    "checkpoint_payload",
    "recover_states",
]
