"""Periodic checkpointing and log truncation, off the writer lock.

The :class:`CheckpointManager` wakes on a timer (and can be poked
directly), asks each attached producer for a consistent
``checkpoint_state()`` capture — a cheap, lock-bracketed read of
immutable references, *not* a serialisation — and then does the
expensive part (pickling and the atomic checksummed write) on its own
thread while writers keep writing.

Safety of the truncation LSN: each producer appends its WAL record and
swaps its state under the same lock ``checkpoint_state()`` takes, so a
capture always reflects every record that producer has appended.  The
checkpoint is stamped with ``min`` of the producers' applied LSNs
(producers that never appended don't constrain it): every record at or
below that LSN is reflected in some capture, and every record above it
stays in the log for the epoch-idempotent replay to sort out.
"""

from __future__ import annotations

import threading

from repro.wal.log import WriteAheadLog
from repro.wal.recovery import checkpoint_payload

__all__ = ["CheckpointManager"]


class CheckpointManager:
    """Drive ``wal.write_checkpoint`` from live producers on a timer.

    ``service`` and ``authz`` are duck-typed: anything exposing
    ``checkpoint_state() -> dict`` (with an ``applied_lsn`` key, None
    until the producer's first append) works.  ``every_records``
    gates checkpoints on log growth so an idle server never rewrites
    an identical checkpoint.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        *,
        service=None,
        authz=None,
        every_records: int = 256,
        interval_s: float = 15.0,
    ) -> None:
        self._wal = wal
        self._service = service
        self._authz = authz
        self.every_records = max(1, int(every_records))
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.checkpoints_written = 0

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="wal-checkpoint", daemon=True
        )
        self._thread.start()

    def stop(self, final_checkpoint: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if final_checkpoint:
            self.maybe_checkpoint(force=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.maybe_checkpoint()
            except Exception:  # noqa: BLE001 — a failed checkpoint only
                # delays truncation; the log itself stays authoritative.
                pass

    def maybe_checkpoint(self, force: bool = False) -> bool:
        """Write a checkpoint when the log grew enough; True if written."""
        wal = self._wal
        if not force and (
            wal.last_lsn - wal.last_checkpoint_lsn < self.every_records
        ):
            return False
        service_state = None
        applied: list[int] = []
        if self._service is not None:
            service_state = self._service.checkpoint_state()
            lsn = service_state.pop("applied_lsn")
            if lsn is not None:
                applied.append(lsn)
        authz_state: dict[str, dict] = {}
        if self._authz is not None:
            captured = self._authz.checkpoint_state()
            lsn = captured.pop("applied_lsn")
            if lsn is not None:
                applied.append(lsn)
            authz_state = captured["namespaces"]
        safe_lsn = min(applied) if applied else 0
        if safe_lsn <= wal.last_checkpoint_lsn and not force:
            return False
        wal.write_checkpoint(
            checkpoint_payload(service_state, authz_state), lsn=safe_lsn
        )
        self.checkpoints_written += 1
        return True
