"""The segmented, checksummed write-ahead log.

One :class:`WriteAheadLog` owns a directory of segment files
(``wal-00000001.log``, ``wal-00000002.log``, …) plus at most one
checkpoint (``checkpoint.ckpt``).  Every record is framed as

    [u32 payload length][u32 CRC-32 of payload][payload]

where the payload is compact JSON carrying a process-wide log sequence
number (``lsn``), a record ``kind`` (``update`` / ``labeled_update`` /
``adopt`` / ``authz``) and the kind's data — notably the **epoch stamp**
of the snapshot the record produces.  Appends go to the active segment
under one lock: write, flush, then fsync per the configured policy
(``always`` syncs every record, ``batch`` every N records, ``off``
never) before the caller acknowledges anything to *its* caller.  A
process crash (SIGKILL) therefore never loses an acknowledged record
under any policy — flushed bytes live in the OS page cache — and
``always``/``batch`` additionally bound loss under power failure.

Replay (:meth:`WriteAheadLog.recover`) walks the segments in order and
verifies every frame.  A short or CRC-failing record in the **final**
segment is a torn write: the tail is physically truncated back to the
last valid record and counted, never served.  The same damage in a
non-final segment cannot be a torn tail — acknowledged records follow
it — so replay raises :class:`~repro.errors.WALCorruptionError` instead
of silently skipping history.

Checkpoints ride the persistence v2 recipe
(:func:`repro.persistence.write_checksummed_blob`): an atomic,
checksummed state blob stamped with the highest LSN it covers.  Writing
one truncates every sealed segment whose records are all ≤ that LSN.

``wal.append``, ``wal.fsync`` and ``wal.replay`` are chaos injection
points.  A corrupt fault on ``wal.append`` simulates a torn write: the
mutated frame is written and flushed, the append raises
:class:`~repro.errors.WALError` (so the caller never acknowledges), and
the log is poisoned against further appends until recovery — exactly
the fail-stop discipline a real log needs once its tail is suspect.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import WALCorruptionError, WALError, WriteBacklogError
from repro.obs.metrics import global_registry
from repro.persistence import read_checksummed_blob, write_checksummed_blob
from repro.resilience.chaos import chaos_point

__all__ = ["FSYNC_POLICIES", "WalRecord", "WalReplay", "WriteAheadLog"]

FSYNC_POLICIES = ("always", "batch", "off")

_SEG_MAGIC = b"REPROWAL"
_SEG_VERSION = 1
_SEG_HEADER = _SEG_MAGIC + _SEG_VERSION.to_bytes(2, "big")
_SEG_NAME_RE = re.compile(r"^wal-(\d{8})\.log$")
_FRAME = struct.Struct(">II")
_CKPT_MAGIC = b"REPRO-WAL-CKPT"
#: Frames claiming more than this are garbage, not records (guards the
#: replay loop against allocating from a corrupt length field).
_MAX_RECORD_BYTES = 64 << 20


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: sequence number, kind, and kind data."""

    lsn: int
    kind: str
    data: dict

    def encode(self) -> bytes:
        payload = json.dumps(
            {"lsn": self.lsn, "kind": self.kind, **self.data},
            separators=(",", ":"),
        ).encode()
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    @classmethod
    def decode_payload(cls, payload: bytes) -> "WalRecord":
        raw = json.loads(payload.decode())
        lsn = raw.pop("lsn")
        kind = raw.pop("kind")
        if not isinstance(lsn, int) or not isinstance(kind, str):
            raise ValueError("record needs an integer lsn and a string kind")
        return cls(lsn=lsn, kind=kind, data=raw)


@dataclass
class WalReplay:
    """What :meth:`WriteAheadLog.recover` found and did."""

    records: list[WalRecord] = field(default_factory=list)
    segments_read: int = 0
    torn_tail: bool = False
    truncated_bytes: int = 0
    checkpoint_lsn: int = 0
    checkpoint_payload: bytes | None = None


class WriteAheadLog:
    """A directory-backed segmented WAL (see the module docstring).

    Construction only binds configuration and scans the directory;
    :meth:`recover` must run (it replays, truncates any torn tail and
    opens a fresh active segment) before the first :meth:`append`.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "always",
        segment_bytes: int = 4 << 20,
        batch_every: int = 8,
        max_pending: int = 64,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise WALError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 4096:
            raise WALError(f"segment_bytes must be >= 4096, got {segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.segment_bytes = int(segment_bytes)
        self.batch_every = max(1, int(batch_every))
        self.max_pending = max(1, int(max_pending))
        self._lock = threading.Lock()
        self._gate_lock = threading.Lock()
        self._pending = 0
        self._active = None  # open file handle of the active segment
        self._active_seq = 0
        self._active_size = 0
        self._since_fsync = 0
        self._next_lsn = 1
        self._failed: str | None = None  # poison reason after a torn append
        self._recovered = False
        self._closed = False
        #: sealed segment seq -> lsn of its last record (truncation index)
        self._sealed: dict[int, int] = {}
        self.last_checkpoint_lsn = 0

    # -- paths -----------------------------------------------------------
    def _segment_path(self, seq: int) -> Path:
        return self.directory / f"wal-{seq:08d}.log"

    @property
    def checkpoint_path(self) -> Path:
        return self.directory / "checkpoint.ckpt"

    def _segment_seqs(self) -> list[int]:
        seqs = []
        for entry in self.directory.iterdir():
            match = _SEG_NAME_RE.match(entry.name)
            if match:
                seqs.append(int(match.group(1)))
        return sorted(seqs)

    # -- recovery --------------------------------------------------------
    def recover(self) -> WalReplay:
        """Replay every segment, truncate a torn tail, open a new segment.

        Returns the decoded records **in log order** plus replay stats.
        Records at or below the checkpoint LSN are already reflected in
        the checkpoint blob; they are returned too (callers skip them by
        epoch), but segments fully covered were deleted at checkpoint
        time so the overlap is at most one segment.
        """
        registry = global_registry()
        replay = WalReplay(checkpoint_lsn=self.last_checkpoint_lsn)
        with self._lock:
            if self._recovered:
                raise WALError("recover() may only run once, before appends")
            ckpt = self._read_checkpoint_locked()
            if ckpt is not None:
                replay.checkpoint_lsn = self.last_checkpoint_lsn = ckpt[0]
                replay.checkpoint_payload = ckpt[1]
            seqs = self._segment_seqs()
            last_lsn = replay.checkpoint_lsn
            for position, seq in enumerate(seqs):
                path = self._segment_path(seq)
                data = path.read_bytes()
                data = chaos_point("wal.replay", data)
                is_last = position == len(seqs) - 1
                records, valid_end, clean, detail = _scan_segment(data)
                if not clean and not is_last:
                    raise WALCorruptionError(path, valid_end, detail)
                for record in records:
                    last_lsn = max(last_lsn, record.lsn)
                replay.records.extend(records)
                replay.segments_read += 1
                if not clean:
                    replay.torn_tail = True
                    replay.truncated_bytes += len(data) - valid_end
                    registry.counter("wal.replay.torn_tails").increment()
                    registry.counter("wal.replay.truncated_bytes").increment(
                        len(data) - valid_end
                    )
                    with open(path, "r+b") as sink:
                        sink.truncate(valid_end)
                        sink.flush()
                        os.fsync(sink.fileno())
                if records:
                    self._sealed[seq] = records[-1].lsn
                else:
                    self._sealed[seq] = replay.checkpoint_lsn
            self._next_lsn = last_lsn + 1
            self._open_segment_locked((seqs[-1] if seqs else 0) + 1)
            self._recovered = True
        registry.counter("wal.recoveries").increment()
        registry.counter("wal.replay.records").increment(len(replay.records))
        return replay

    def _read_checkpoint_locked(self) -> tuple[int, bytes] | None:
        path = self.checkpoint_path
        if not path.exists():
            return None
        body = read_checksummed_blob(path, chaos="wal.replay")
        if body[: len(_CKPT_MAGIC)] != _CKPT_MAGIC:
            raise WALCorruptionError(path, 0, "bad checkpoint magic")
        at = len(_CKPT_MAGIC)
        lsn = int.from_bytes(body[at : at + 8], "big")
        return lsn, body[at + 8 :]

    def read_checkpoint(self) -> tuple[int, bytes] | None:
        """``(lsn, payload)`` of the durable checkpoint, or ``None``."""
        with self._lock:
            return self._read_checkpoint_locked()

    # -- appends ---------------------------------------------------------
    @contextmanager
    def admitted(self):
        """Bounded write admission: raises 429-typed
        :class:`~repro.errors.WriteBacklogError` beyond ``max_pending``
        concurrent writers, instead of queueing unboundedly on the
        writer lock."""
        with self._gate_lock:
            if self._pending >= self.max_pending:
                global_registry().counter("wal.backpressure_sheds").increment()
                raise WriteBacklogError(self._pending, self.max_pending)
            self._pending += 1
        try:
            yield
        finally:
            with self._gate_lock:
                self._pending -= 1

    def append(self, kind: str, data: dict) -> int:
        """Frame, write, flush and (per policy) fsync one record.

        Returns the record's LSN.  Raises :class:`WALError` when the log
        is poisoned or a chaos ``wal.append`` corrupt fault tears the
        write — in both cases the record is NOT durable and the caller
        must not acknowledge or swap.
        """
        registry = global_registry()
        with self._lock:
            if self._closed:
                raise WALError("write-ahead log is closed")
            if not self._recovered:
                raise WALError("recover() must run before the first append")
            if self._failed is not None:
                raise WALError(
                    f"write-ahead log poisoned ({self._failed}); "
                    "restart to recover"
                )
            record = WalRecord(lsn=self._next_lsn, kind=kind, data=data)
            encoded = record.encode()
            mutated = chaos_point("wal.append", encoded)
            if mutated is not encoded and mutated != encoded:
                # Simulated torn write: persist the damage, refuse the
                # ack, and fail-stop further appends — recovery's tail
                # truncation is the only safe repair.
                self._active.write(mutated)
                self._active.flush()
                self._failed = "torn append (chaos wal.append)"
                registry.counter("wal.append_torn").increment()
                raise WALError(
                    "torn write during WAL append — record not acknowledged"
                )
            self._active.write(encoded)
            self._active.flush()
            self._sync_locked()
            self._next_lsn = record.lsn + 1
            self._active_size += len(encoded)
            registry.counter("wal.appends").increment()
            registry.counter("wal.append_bytes").increment(len(encoded))
            if self._active_size >= self.segment_bytes:
                self._rotate_locked(record.lsn)
            return record.lsn

    def _sync_locked(self, force: bool = False) -> None:
        if not force:
            if self.fsync_policy == "off":
                return
            if self.fsync_policy == "batch":
                self._since_fsync += 1
                if self._since_fsync < self.batch_every:
                    return
        chaos_point("wal.fsync")
        start = time.perf_counter()
        os.fsync(self._active.fileno())
        global_registry().histogram("wal.fsync_latency").observe(
            time.perf_counter() - start
        )
        global_registry().counter("wal.fsyncs").increment()
        self._since_fsync = 0

    def _rotate_locked(self, last_lsn: int) -> None:
        self._sync_locked(force=True)
        self._active.close()
        self._sealed[self._active_seq] = last_lsn
        self._open_segment_locked(self._active_seq + 1)
        global_registry().counter("wal.rotations").increment()

    def _open_segment_locked(self, seq: int) -> None:
        path = self._segment_path(seq)
        self._active = open(path, "ab")
        if self._active.tell() == 0:
            self._active.write(_SEG_HEADER)
            self._active.flush()
            os.fsync(self._active.fileno())
        self._active_seq = seq
        self._active_size = self._active.tell()
        self._since_fsync = 0

    def sync(self) -> None:
        """Force an fsync of the active segment (drain/shutdown path)."""
        with self._lock:
            if self._active is not None and not self._closed:
                self._sync_locked(force=True)

    def close(self) -> None:
        with self._lock:
            if self._active is not None and not self._closed:
                try:
                    self._sync_locked(force=True)
                finally:
                    self._active.close()
            self._closed = True

    # -- checkpoints -----------------------------------------------------
    def write_checkpoint(self, payload: bytes, *, lsn: int) -> int:
        """Durably store ``payload`` as covering every record ≤ ``lsn``,
        then delete the sealed segments that checkpoint makes dead.

        Returns the number of segments truncated.  The blob write is
        atomic (persistence v2 recipe), so a crash mid-checkpoint leaves
        the previous checkpoint intact and the log untruncated.
        """
        body = _CKPT_MAGIC + int(lsn).to_bytes(8, "big") + payload
        write_checksummed_blob(self.checkpoint_path, body)
        removed = 0
        with self._lock:
            self.last_checkpoint_lsn = lsn
            for seq in sorted(self._sealed):
                if self._sealed[seq] <= lsn and seq != self._active_seq:
                    try:
                        self._segment_path(seq).unlink()
                    except OSError:
                        continue
                    del self._sealed[seq]
                    removed += 1
        registry = global_registry()
        registry.counter("wal.checkpoints").increment()
        if removed:
            registry.counter("wal.truncated_segments").increment(removed)
        return removed

    # -- introspection ---------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 before any)."""
        return self._next_lsn - 1

    def status(self) -> dict[str, object]:
        """Gauge-friendly state for ``/readyz`` and the OpenMetrics tier."""
        with self._gate_lock:
            pending = self._pending
        return {
            "fsync": self.fsync_policy,
            "segments": len(self._sealed) + (1 if self._active else 0),
            "active_segment_bytes": self._active_size,
            "last_lsn": self.last_lsn,
            "checkpoint_lsn": self.last_checkpoint_lsn,
            "pending_writes": pending,
            "max_pending": self.max_pending,
            "poisoned": self._failed is not None,
        }

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.directory)!r}, fsync={self.fsync_policy!r}, "
            f"last_lsn={self.last_lsn}, checkpoint_lsn={self.last_checkpoint_lsn})"
        )


def _scan_segment(
    data: bytes,
) -> tuple[list[WalRecord], int, bool, str]:
    """``(records, valid_end_offset, clean, detail)`` for one segment.

    ``clean`` is False when trailing bytes past ``valid_end_offset``
    failed to frame-decode — a torn tail if this is the last segment,
    corruption otherwise (the caller decides which).
    """
    if data[: len(_SEG_HEADER)] != _SEG_HEADER:
        return [], 0, False, "bad segment header"
    records: list[WalRecord] = []
    offset = len(_SEG_HEADER)
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return records, offset, False, "short frame header"
        length, crc = _FRAME.unpack_from(data, offset)
        if length > _MAX_RECORD_BYTES:
            return records, offset, False, f"implausible record length {length}"
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            return records, offset, False, "short record body"
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, offset, False, "CRC mismatch"
        try:
            records.append(WalRecord.decode_payload(payload))
        except (ValueError, KeyError, TypeError):
            return records, offset, False, "undecodable record payload"
        offset = end
    return records, offset, True, ""
