"""Rebuilding serving state from a checkpoint plus WAL replay.

The log carries four record kinds:

``update``
    A plain-mode edge batch: ``{"epoch": E, "ops": [[kind, s, t], …]}``.
``labeled_update``
    A labeled batch: ``{"epoch": E, "ops": [[kind, s, t, label], …]}``.
``adopt``
    A live index swap: ``{"epoch": E, "index": name, "params": {…}}``.
``authz``
    One tuple-store write: ``{"namespace": N, "epoch": E,
    "writes": ["s#rel@o", …], "deletes": […]}``.

Recovery is **epoch-idempotent**: a record is applied only when its
epoch exceeds the running epoch of its stream (the service snapshot, or
its namespace's tuple set), so replaying records the checkpoint already
covers — the checkpoint LSN is conservative by design — is exact, not
approximate.  The graph is materialised once and the index built once,
at the final recovered epoch, rather than per record.

Zookie guarantee: authz epochs are recovered to their exact pre-crash
values, and a :class:`~repro.authz.store.Zookie` digest depends only on
``(namespace, epoch)`` — so a token issued before the crash still
validates, and every post-restart write advances monotonically past it.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from repro.errors import GraphError, WALError
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.wal.log import WalRecord, WalReplay, WriteAheadLog

__all__ = ["RecoveredState", "checkpoint_payload", "recover_states"]


@dataclass
class RecoveredState:
    """Everything a fresh process needs to resume at the pre-crash epoch."""

    graph: DiGraph | LabeledDiGraph
    epoch: int
    labeled: bool
    index: str | None  # adopted family, None = caller's default
    index_params: dict | None
    authz: dict[str, dict]  # namespace -> {"epoch": int, "tuples": [wire]}
    replay: WalReplay
    records_applied: int = 0
    records_skipped: int = 0
    from_checkpoint: bool = False

    def summary(self) -> str:
        parts = [
            f"epoch={self.epoch}",
            f"records applied={self.records_applied} skipped={self.records_skipped}",
            f"segments={self.replay.segments_read}",
        ]
        if self.from_checkpoint:
            parts.append(f"checkpoint lsn={self.replay.checkpoint_lsn}")
        if self.replay.torn_tail:
            parts.append(
                f"torn tail truncated ({self.replay.truncated_bytes} bytes)"
            )
        if self.authz:
            epochs = ",".join(
                f"{ns}@{st['epoch']}" for ns, st in sorted(self.authz.items())
            )
            parts.append(f"authz {epochs}")
        return "wal recovery: " + " · ".join(parts)


@dataclass
class _ServiceState:
    graph: DiGraph | LabeledDiGraph
    epoch: int = 0
    labeled: bool = False
    index: str | None = None
    index_params: dict | None = None


def checkpoint_payload(
    service_state: dict | None, authz_state: dict[str, dict]
) -> bytes:
    """Pickle one ``{"service": …, "authz": …}`` checkpoint blob."""
    return pickle.dumps(
        {"service": service_state, "authz": authz_state},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def recover_states(
    wal: WriteAheadLog, initial_graph: DiGraph | LabeledDiGraph
) -> RecoveredState:
    """Replay ``wal`` over its checkpoint (or ``initial_graph`` at epoch 0)
    and return the exact pre-crash serving state.

    ``initial_graph`` is the graph the service would have been built
    over on first boot (the CLI's edge list); it seeds recovery only
    when no checkpoint captured a later state.  Mode (plain vs labeled)
    is taken from the graph and must match the logged records.
    """
    replay = wal.recover()

    labeled = isinstance(initial_graph, LabeledDiGraph)
    state = _ServiceState(graph=initial_graph.copy(), labeled=labeled)
    authz: dict[str, dict] = {}
    from_checkpoint = False
    if replay.checkpoint_payload is not None:
        blob = pickle.loads(replay.checkpoint_payload)
        service_blob = blob.get("service")
        if service_blob is not None:
            ckpt_labeled = bool(service_blob["labeled"])
            if ckpt_labeled != labeled:
                raise WALError(
                    f"checkpoint is {'labeled' if ckpt_labeled else 'plain'} "
                    f"mode but the service is "
                    f"{'labeled' if labeled else 'plain'} — "
                    "serve with the matching --labeled setting"
                )
            state = _ServiceState(
                graph=service_blob["graph"],
                epoch=int(service_blob["epoch"]),
                labeled=ckpt_labeled,
                index=service_blob.get("index"),
                index_params=service_blob.get("params"),
            )
        authz = {
            ns: {"epoch": int(st["epoch"]), "tuples": list(st["tuples"])}
            for ns, st in (blob.get("authz") or {}).items()
        }
        from_checkpoint = True

    applied = skipped = 0
    for record in replay.records:
        if _apply(record, state, authz):
            applied += 1
        else:
            skipped += 1

    return RecoveredState(
        graph=state.graph,
        epoch=state.epoch,
        labeled=state.labeled,
        index=state.index,
        index_params=state.index_params,
        authz=authz,
        replay=replay,
        records_applied=applied,
        records_skipped=skipped,
        from_checkpoint=from_checkpoint,
    )


def _apply(
    record: WalRecord, state: _ServiceState, authz: dict[str, dict]
) -> bool:
    """Apply one record if its stream's epoch hasn't passed it; True if so."""
    data = record.data
    if record.kind == "authz":
        namespace = data["namespace"]
        ns_state = authz.setdefault(namespace, {"epoch": 0, "tuples": []})
        if data["epoch"] <= ns_state["epoch"]:
            return False
        tuples = set(ns_state["tuples"])
        tuples.update(data.get("writes", ()))
        tuples.difference_update(data.get("deletes", ()))
        ns_state["tuples"] = sorted(tuples)
        ns_state["epoch"] = data["epoch"]
        return True
    epoch = data["epoch"]
    if epoch <= state.epoch:
        return False
    if record.kind == "adopt":
        state.index = data["index"]
        state.index_params = dict(data.get("params") or {})
        state.epoch = epoch
        return True
    if record.kind == "update":
        if state.labeled:
            raise WALError(
                f"plain update record at lsn {record.lsn} in a labeled-mode log"
            )
        _apply_plain_ops(record, state.graph, data["ops"])
    elif record.kind == "labeled_update":
        if not state.labeled:
            raise WALError(
                f"labeled update record at lsn {record.lsn} in a plain-mode log"
            )
        _apply_labeled_ops(record, state.graph, data["ops"])
    else:
        raise WALError(f"unknown record kind {record.kind!r} at lsn {record.lsn}")
    state.epoch = epoch
    return True


def _apply_plain_ops(record: WalRecord, graph: DiGraph, ops: list) -> None:
    try:
        for kind, source, target in ops:
            if kind == "insert":
                graph.add_edge(source, target)
            else:
                graph.remove_edge(source, target)
    except (GraphError, ValueError) as exc:
        raise WALError(
            f"record at lsn {record.lsn} does not replay over the "
            f"recovered graph ({exc}) — log and checkpoint disagree"
        ) from exc


def _apply_labeled_ops(
    record: WalRecord, graph: LabeledDiGraph, ops: list
) -> None:
    try:
        for kind, source, target, label in ops:
            if kind == "insert":
                graph.add_edge(source, target, label)
            else:
                graph.remove_edge(source, target, label)
    except (GraphError, ValueError) as exc:
        raise WALError(
            f"record at lsn {record.lsn} does not replay over the "
            f"recovered graph ({exc}) — log and checkpoint disagree"
        ) from exc
