"""Saving and loading built indexes, crash-safely.

The survey's §5 frames index construction as the expensive phase —
minutes to hours at scale — which makes persisting a built index across
sessions a basic adoption requirement for a GDBMS.  This module provides
a small versioned container around pickle: a magic header so stray files
fail fast, a format version for forward compatibility, and the index
class name recorded for inspection without unpickling.

Durability (format v2):

* **Atomic writes** — :func:`save_index` writes to a temp file in the
  destination directory, flushes and ``fsync``\\ s it, then atomically
  ``os.replace``\\ s it into place (and best-effort fsyncs the
  directory), so a crash mid-save leaves either the old file or the new
  one, never a torn hybrid.
* **Checksum footer** — the file ends with a SHA-256 digest of
  everything before it; :func:`load_index` verifies the digest *before*
  unpickling and raises :class:`PersistenceError` with the path and the
  expected/actual digests instead of decoding garbage.
* **Legacy files** — v1 files (no footer) still load, with a
  :class:`UserWarning` that they carry no integrity check.

``persistence.read`` is a chaos injection point: an installed
:class:`~repro.resilience.ChaosPolicy` can corrupt or fail the raw read,
and the checksum machinery must turn that into a typed error.

Only load files you created: the payload is a pickle.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import tempfile
import warnings
from pathlib import Path

from repro.core.base import LabelConstrainedIndex, ReachabilityIndex
from repro.errors import PersistenceError
from repro.resilience.chaos import chaos_point

__all__ = [
    "PersistenceError",
    "save_index",
    "load_index",
    "peek_index_info",
    "serialized_size_bytes",
    "write_checksummed_blob",
    "read_checksummed_blob",
]

_MAGIC = b"REPRO-INDEX"
_VERSION = 2
_LEGACY_VERSION = 1
_FOOTER_MAGIC = b"REPROSUM"
_DIGEST_BYTES = hashlib.sha256().digest_size
_FOOTER_BYTES = len(_FOOTER_MAGIC) + _DIGEST_BYTES


def write_checksummed_blob(path: str | Path, body: bytes) -> None:
    """Atomically write ``body`` + a SHA-256 checksum footer to ``path``.

    The v2 durability recipe, factored out so other durable artifacts
    (the WAL's checkpoints) share it: same-directory temp file, write +
    flush + ``fsync``, atomic ``os.replace``, best-effort directory
    fsync.  A crash mid-write leaves the old file or the new one, never
    a torn hybrid.
    """
    path = Path(path)
    footer = _FOOTER_MAGIC + hashlib.sha256(body).digest()
    directory = path.parent if str(path.parent) else Path(".")
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as sink:
            sink.write(body)
            sink.write(footer)
            sink.flush()
            os.fsync(sink.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def read_checksummed_blob(path: str | Path, chaos: str | None = None) -> bytes:
    """Read a file written by :func:`write_checksummed_blob`, verified.

    The checksum footer is validated before the body is returned; any
    mismatch raises :class:`PersistenceError` with both digests.
    ``chaos`` optionally names an injection point to fire on the raw
    bytes, so corruption drills exercise this exact detection path.
    """
    path = Path(path)
    with open(path, "rb") as source:
        data = source.read()
    if chaos is not None:
        data = chaos_point(chaos, data)
    if len(data) < _FOOTER_BYTES or data[
        len(data) - _FOOTER_BYTES : len(data) - _DIGEST_BYTES
    ] != _FOOTER_MAGIC:
        raise PersistenceError(
            f"{path}: truncated file (checksum footer missing)"
        )
    footer_at = len(data) - _FOOTER_BYTES
    expected = data[footer_at + len(_FOOTER_MAGIC) :]
    actual = hashlib.sha256(data[:footer_at]).digest()
    if actual != expected:
        raise PersistenceError(
            f"{path}: checksum mismatch — the file is corrupt "
            f"(expected sha256 {expected.hex()}, got {actual.hex()})"
        )
    return data[:footer_at]


def save_index(
    index: ReachabilityIndex | LabelConstrainedIndex, path: str | Path
) -> None:
    """Serialise a built index (graph included) to ``path``, atomically.

    The bytes hit a same-directory temp file first (write + flush +
    ``fsync``), then ``os.replace`` moves them into place — readers of
    ``path`` never observe a partial file, even across a crash.
    """
    if not isinstance(index, (ReachabilityIndex, LabelConstrainedIndex)):
        raise PersistenceError(
            f"save_index expects an index, got {type(index).__name__}"
        )
    name = type(index).__name__.encode()
    body = (
        _MAGIC
        + _VERSION.to_bytes(2, "big")
        + len(name).to_bytes(2, "big")
        + name
        + pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    )
    write_checksummed_blob(path, body)


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms without directory fds (e.g. Windows)
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def _read_header(source: io.BufferedIOBase) -> tuple[str, int]:
    magic = source.read(len(_MAGIC))
    if magic != _MAGIC:
        raise PersistenceError("not a repro index file (bad magic)")
    version = int.from_bytes(source.read(2), "big")
    if version not in (_LEGACY_VERSION, _VERSION):
        raise PersistenceError(
            f"unsupported index-file version {version} "
            f"(supported: {_LEGACY_VERSION}, {_VERSION})"
        )
    name_len = int.from_bytes(source.read(2), "big")
    return source.read(name_len).decode(), version


def peek_index_info(path: str | Path) -> dict[str, object]:
    """Read the header (class name, version) without unpickling the body."""
    with open(path, "rb") as source:
        class_name, version = _read_header(source)
    return {"class_name": class_name, "version": version}


def serialized_size_bytes(
    index: ReachabilityIndex | LabelConstrainedIndex, include_graph: bool = True
) -> int:
    """The pickled size of an index, in bytes.

    A concrete counterpart to the abstract entry counts — §5 reports BFL
    index sizes in "a few hundred megabytes" at millions of vertices, and
    this is the number that claim scales down to.  With
    ``include_graph=False`` the indexed graph's own representation is
    subtracted out, approximating the pure label payload.
    """
    total = len(pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL))
    if include_graph:
        return total
    graph_bytes = len(pickle.dumps(index.graph, protocol=pickle.HIGHEST_PROTOCOL))
    return max(0, total - graph_bytes)


def load_index(path: str | Path) -> ReachabilityIndex | LabelConstrainedIndex:
    """Load an index previously written by :func:`save_index`.

    v2 files verify the checksum footer before any unpickling; a
    mismatch (torn write, bit rot, injected corruption) raises
    :class:`PersistenceError` carrying the path and both digests.
    Legacy v1 files load with a warning that no integrity check exists.
    """
    path = Path(path)
    with open(path, "rb") as source:
        data = source.read()
    data = chaos_point("persistence.read", data)
    header = io.BytesIO(data)
    _, version = _read_header(header)
    payload_start = header.tell()
    if version == _LEGACY_VERSION:
        warnings.warn(
            f"{path}: legacy v1 index file has no checksum; "
            "re-save it to gain corruption detection",
            UserWarning,
            stacklevel=2,
        )
        payload = data[payload_start:]
    else:
        if len(data) < payload_start + _FOOTER_BYTES:
            raise PersistenceError(
                f"{path}: truncated index file (checksum footer missing)"
            )
        footer_at = len(data) - _FOOTER_BYTES
        if data[footer_at : footer_at + len(_FOOTER_MAGIC)] != _FOOTER_MAGIC:
            raise PersistenceError(
                f"{path}: truncated index file (checksum footer missing)"
            )
        expected = data[footer_at + len(_FOOTER_MAGIC) :]
        actual = hashlib.sha256(data[:footer_at]).digest()
        if actual != expected:
            raise PersistenceError(
                f"{path}: checksum mismatch — the file is corrupt "
                f"(expected sha256 {expected.hex()}, got {actual.hex()})"
            )
        payload = data[payload_start:footer_at]
    try:
        index = pickle.loads(payload)
    except Exception as exc:
        raise PersistenceError(
            f"{path}: index payload failed to unpickle ({exc})"
        ) from exc
    if not isinstance(index, (ReachabilityIndex, LabelConstrainedIndex)):
        raise PersistenceError(
            f"file decoded to {type(index).__name__}, not an index"
        )
    return index
