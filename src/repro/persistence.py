"""Saving and loading built indexes.

The survey's §5 frames index construction as the expensive phase —
minutes to hours at scale — which makes persisting a built index across
sessions a basic adoption requirement for a GDBMS.  This module provides
a small versioned container around pickle: a magic header so stray files
fail fast, a format version for forward compatibility, and the index
class name recorded for inspection without unpickling.

Only load files you created: the payload is a pickle.
"""

from __future__ import annotations

import io
import pickle
from pathlib import Path

from repro.core.base import LabelConstrainedIndex, ReachabilityIndex
from repro.errors import PersistenceError

__all__ = [
    "PersistenceError",
    "save_index",
    "load_index",
    "peek_index_info",
    "serialized_size_bytes",
]

_MAGIC = b"REPRO-INDEX"
_VERSION = 1


def save_index(
    index: ReachabilityIndex | LabelConstrainedIndex, path: str | Path
) -> None:
    """Serialise a built index (graph included) to ``path``."""
    if not isinstance(index, (ReachabilityIndex, LabelConstrainedIndex)):
        raise PersistenceError(
            f"save_index expects an index, got {type(index).__name__}"
        )
    name = type(index).__name__.encode()
    payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    with open(path, "wb") as sink:
        sink.write(_MAGIC)
        sink.write(_VERSION.to_bytes(2, "big"))
        sink.write(len(name).to_bytes(2, "big"))
        sink.write(name)
        sink.write(payload)


def _read_header(source: io.BufferedReader) -> str:
    magic = source.read(len(_MAGIC))
    if magic != _MAGIC:
        raise PersistenceError("not a repro index file (bad magic)")
    version = int.from_bytes(source.read(2), "big")
    if version != _VERSION:
        raise PersistenceError(
            f"unsupported index-file version {version} (supported: {_VERSION})"
        )
    name_len = int.from_bytes(source.read(2), "big")
    return source.read(name_len).decode()


def peek_index_info(path: str | Path) -> dict[str, object]:
    """Read the header (class name, version) without unpickling the body."""
    with open(path, "rb") as source:
        class_name = _read_header(source)
    return {"class_name": class_name, "version": _VERSION}


def serialized_size_bytes(
    index: ReachabilityIndex | LabelConstrainedIndex, include_graph: bool = True
) -> int:
    """The pickled size of an index, in bytes.

    A concrete counterpart to the abstract entry counts — §5 reports BFL
    index sizes in "a few hundred megabytes" at millions of vertices, and
    this is the number that claim scales down to.  With
    ``include_graph=False`` the indexed graph's own representation is
    subtracted out, approximating the pure label payload.
    """
    total = len(pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL))
    if include_graph:
        return total
    graph_bytes = len(pickle.dumps(index.graph, protocol=pickle.HIGHEST_PROTOCOL))
    return max(0, total - graph_bytes)


def load_index(path: str | Path) -> ReachabilityIndex | LabelConstrainedIndex:
    """Load an index previously written by :func:`save_index`."""
    with open(path, "rb") as source:
        _read_header(source)
        index = pickle.load(source)
    if not isinstance(index, (ReachabilityIndex, LabelConstrainedIndex)):
        raise PersistenceError(
            f"file decoded to {type(index).__name__}, not an index"
        )
    return index
