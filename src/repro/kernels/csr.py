"""Immutable CSR-style adjacency snapshots of a :class:`DiGraph`.

:class:`DiGraph` stores adjacency as per-vertex Python lists behind a
bounds-checking accessor — the right shape for mutation, the wrong shape
for tight traversal loops, which pay one method call plus one
``_check_vertex`` per visited vertex.  :class:`CSRGraph` freezes both
directions into flat ``indptr``/``indices`` arrays (the classic
compressed-sparse-row layout), so a kernel binds two locals and slices.

Snapshots are cached *on the graph* keyed by its mutation version:
:func:`csr_of` returns the cached snapshot until an ``add_edge`` /
``remove_edge`` / ``add_vertex`` bumps ``DiGraph._version``, at which
point the next caller rebuilds.  Build cost is one O(|V|+|E|) pass, paid
once per graph version no matter how many kernels run over it.
"""

from __future__ import annotations

from repro.graphs.digraph import DiGraph

__all__ = ["CSRGraph", "csr_of"]


class CSRGraph:
    """A frozen compressed-sparse-row view of a directed graph.

    ``out_indices[out_indptr[v]:out_indptr[v + 1]]`` are the
    out-neighbours of ``v``; the ``in_*`` pair mirrors the reverse
    direction.  Instances are never mutated after construction, so they
    can be shared freely across threads and batch calls.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "out_indptr",
        "out_indices",
        "in_indptr",
        "in_indices",
        "_topo",
        "_topo_computed",
        "_arrays_cache",
    )

    def __init__(
        self,
        num_vertices: int,
        out_indptr: list[int],
        out_indices: list[int],
        in_indptr: list[int],
        in_indices: list[int],
    ) -> None:
        self.num_vertices = num_vertices
        self.num_edges = len(out_indices)
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        self._topo: list[int] | None = None
        self._topo_computed = False
        self._arrays_cache: object | None = None  # managed by repro.accel.arrays_of

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "CSRGraph":
        """Flatten both adjacency directions of ``graph`` in one pass."""
        out = graph._out
        inn = graph._in
        n = len(out)
        out_indptr = [0] * (n + 1)
        in_indptr = [0] * (n + 1)
        for v in range(n):
            out_indptr[v + 1] = out_indptr[v] + len(out[v])
            in_indptr[v + 1] = in_indptr[v] + len(inn[v])
        out_indices = [w for nbrs in out for w in nbrs]
        in_indices = [u for nbrs in inn for u in nbrs]
        return cls(n, out_indptr, out_indices, in_indptr, in_indices)

    # -- accessors --------------------------------------------------------
    def out_neighbors(self, v: int) -> list[int]:
        """Out-neighbours of ``v`` as a fresh list slice."""
        return self.out_indices[self.out_indptr[v] : self.out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> list[int]:
        """In-neighbours of ``v`` as a fresh list slice."""
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    @property
    def topo_order(self) -> list[int] | None:
        """A topological order, or None if the graph is cyclic.

        Computed lazily by Kahn's algorithm over the CSR arrays and
        memoised; self-loops count as cycles (matching
        :func:`repro.graphs.topo.is_dag`).  DAG kernels use this to
        replace frontier iteration with a single one-pass sweep.
        """
        if not self._topo_computed:
            self._topo = self._kahn()
            self._topo_computed = True
        return self._topo

    def _kahn(self) -> list[int] | None:
        n = self.num_vertices
        in_indptr = self.in_indptr
        out_indptr = self.out_indptr
        out_indices = self.out_indices
        indegree = [in_indptr[v + 1] - in_indptr[v] for v in range(n)]
        ready = [v for v in range(n) if indegree[v] == 0]
        order: list[int] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for w in out_indices[out_indptr[v] : out_indptr[v + 1]]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    ready.append(w)
        if len(order) != n:
            return None  # a cycle (possibly a self-loop) blocked Kahn
        return order

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


def csr_of(graph: DiGraph) -> CSRGraph:
    """The CSR snapshot of ``graph`` at its current mutation version.

    The snapshot is cached on the graph itself (``DiGraph._csr_cache``)
    and invalidated purely by version comparison, so repeated kernel
    calls between mutations share one build.  Concurrent first calls may
    both build; either result is equivalent and one wins the cache slot.
    """
    version = graph._version
    cached = graph._csr_cache
    if (
        isinstance(cached, tuple)
        and len(cached) == 2
        and cached[0] == version
        and isinstance(cached[1], CSRGraph)
    ):
        return cached[1]
    snapshot = CSRGraph.from_digraph(graph)
    graph._csr_cache = (version, snapshot)
    return snapshot
