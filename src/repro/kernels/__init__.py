"""Shared hardware-speed kernels for reachability processing.

Two layers live here, both pure Python but written for the interpreter's
fast paths (flat lists, locals bound once, big-int bitwise ops):

* :mod:`repro.kernels.csr` — :class:`CSRGraph`, an immutable CSR-style
  adjacency snapshot built once per :class:`~repro.graphs.digraph.DiGraph`
  version and cached on the graph (:func:`csr_of`), so every kernel and
  index build walks flat offset/index arrays instead of re-validating
  adjacency lists vertex by vertex.
* :mod:`repro.kernels.bitbfs` — bit-parallel multi-source frontiers:
  one Python big int carries one bit per batched source, so a single
  frontier-synchronous sweep (or a one-pass topological sweep on DAGs)
  answers reachability for *all* sources at once.  This is the same
  batched-observation trick O'Reach and PReaCH get their speed from,
  expressed over machine-word-parallel integers.

Everything downstream — ``TransitiveClosureIndex.build``, the online
traversal fallbacks, ``ReachabilityIndex.query_batch`` and the service's
``execute_batch`` — routes through these two modules.
"""

from repro.kernels.bitbfs import (
    ancestors_set,
    batch_reachable,
    descendant_bitsets,
    descendants_set,
    reach_masks,
    reverse_reach_masks,
)
from repro.kernels.csr import CSRGraph, csr_of

__all__ = [
    "CSRGraph",
    "csr_of",
    "reach_masks",
    "reverse_reach_masks",
    "descendant_bitsets",
    "descendants_set",
    "ancestors_set",
    "batch_reachable",
]
