"""Bit-parallel multi-source reachability kernels.

The core representation: one Python big int per vertex, bit ``i`` set
iff batched source ``i`` reaches that vertex.  Advancing a frontier then
ORs whole source-sets through each edge — W sources move per big-int
word operation instead of W separate traversals.

Two sweep strategies share that representation:

* **DAG one-pass sweep** — when the snapshot has a topological order,
  every vertex is processed exactly once in that order, pushing its
  accumulated source mask through its out-edges.  Total work is one
  O(|V| + |E|) pass regardless of how many sources are batched.
* **Frontier-synchronous BFS** — on cyclic graphs, vertices whose mask
  grew re-enter the frontier; each round moves only the *newly arrived*
  bits, so propagation terminates once masks reach their fixpoint.

:func:`descendant_bitsets` is the transposed trick — one big int per
vertex over *vertices* rather than sources, computed in reverse
topological order — generalising the sweep
``TransitiveClosureIndex.build`` has always used so other builds
(GRAIL exception lists, 2-hop seeding) can share it.

When the optional :mod:`repro.accel` layer is enabled and the snapshot
is large enough, every public kernel transparently routes to its packed
``uint64`` numpy twin and converts the result back to the exact values
the pure-Python path produces — the fallback below stays authoritative
and is differential-tested against the accelerated path.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro import accel as _accel
from repro.errors import NotADAGError
from repro.kernels.csr import CSRGraph
from repro.resilience.chaos import chaos_point
from repro.resilience.deadline import current_deadline

__all__ = [
    "WORD_BITS",
    "reach_masks",
    "reverse_reach_masks",
    "descendant_bitsets",
    "descendants_set",
    "ancestors_set",
    "batch_reachable",
]

#: Sources advanced per wave.  Python ints are arbitrary-precision so a
#: single wave *could* carry any batch, but bounding the word keeps the
#: per-vertex masks dense and the OR cost per edge predictable.
WORD_BITS = 1024

#: Vertices swept between deadline checkpoints.  The clock read amortises
#: to noise at this stride, and the no-deadline sweep never pays it — the
#: tight loop is kept branch-free when no deadline is installed.
_SWEEP_STRIDE = 4096


def _propagate(
    n: int,
    indptr: list[int],
    indices: list[int],
    topo: list[int] | None,
    sources: Sequence[int],
) -> list[int]:
    """Shared body of the forward/backward mask sweeps.

    Cooperative cancellation: when an ambient deadline is installed the
    DAG sweep checkpoints every :data:`_SWEEP_STRIDE` vertices and the
    frontier sweep once per round; with no deadline the original tight
    loops run unchanged.
    """
    deadline = current_deadline()
    masks = [0] * n
    for slot, s in enumerate(sources):
        masks[s] |= 1 << slot
    if topo is not None:
        if deadline is None:
            for v in topo:
                m = masks[v]
                if m:
                    for w in indices[indptr[v] : indptr[v + 1]]:
                        masks[w] |= m
        else:
            for base in range(0, len(topo), _SWEEP_STRIDE):
                deadline.check()
                for v in topo[base : base + _SWEEP_STRIDE]:
                    m = masks[v]
                    if m:
                        for w in indices[indptr[v] : indptr[v + 1]]:
                            masks[w] |= m
        return masks
    frontier: dict[int, int] = {}
    for slot, s in enumerate(sources):
        frontier[s] = frontier.get(s, 0) | (1 << slot)
    while frontier:
        if deadline is not None:
            deadline.check()
        advanced: dict[int, int] = {}
        get = advanced.get
        for v, bits in frontier.items():
            for w in indices[indptr[v] : indptr[v + 1]]:
                new = bits & ~masks[w]
                if new:
                    masks[w] |= new
                    advanced[w] = get(w, 0) | new
        frontier = advanced
    return masks


def reach_masks(csr: CSRGraph, sources: Sequence[int]) -> list[int]:
    """Per-vertex source masks: bit ``i`` of ``masks[v]`` iff ``sources[i] ⇝ v``.

    Every source reaches itself.  One call answers reachability from all
    batched sources to *every* vertex — the multi-source generalisation
    of a single BFS sweep.
    """
    if sources and isinstance(csr, CSRGraph) and _accel.use_for_graph(
        csr.num_vertices
    ):
        from repro.accel.arrays import arrays_of
        from repro.accel.bitset import packed_reach_masks, rows_to_ints

        return rows_to_ints(packed_reach_masks(arrays_of(csr), sources))
    return _propagate(
        csr.num_vertices, csr.out_indptr, csr.out_indices, csr.topo_order, sources
    )


def reverse_reach_masks(csr: CSRGraph, targets: Sequence[int]) -> list[int]:
    """Per-vertex target masks: bit ``i`` of ``masks[v]`` iff ``v ⇝ targets[i]``."""
    if targets and isinstance(csr, CSRGraph) and _accel.use_for_graph(
        csr.num_vertices
    ):
        from repro.accel.arrays import arrays_of
        from repro.accel.bitset import packed_reach_masks, rows_to_ints

        return rows_to_ints(
            packed_reach_masks(arrays_of(csr), targets, forward=False)
        )
    topo = csr.topo_order
    return _propagate(
        csr.num_vertices,
        csr.in_indptr,
        csr.in_indices,
        topo[::-1] if topo is not None else None,
        targets,
    )


def descendant_bitsets(csr: CSRGraph) -> list[int]:
    """Per-vertex descendant bitsets over *vertices*, by reverse-topo sweep.

    ``bitsets[v]`` has bit ``t`` set iff ``v ⇝ t`` (including ``v``
    itself) — the materialised transitive closure.  DAG-only: the sweep
    needs a topological order.
    """
    topo = csr.topo_order
    if topo is None:
        raise NotADAGError("descendant_bitsets requires a DAG")
    if isinstance(csr, CSRGraph) and _accel.use_for_graph(csr.num_vertices):
        from repro.accel.arrays import arrays_of
        from repro.accel.bitset import packed_descendant_bitsets, rows_to_ints

        return rows_to_ints(packed_descendant_bitsets(arrays_of(csr)))
    deadline = current_deadline()
    indptr = csr.out_indptr
    indices = csr.out_indices
    bitsets = [0] * csr.num_vertices
    swept = 0
    for v in reversed(topo):
        if deadline is not None:
            swept += 1
            if not swept % _SWEEP_STRIDE:
                deadline.check()
        reach = 1 << v
        for w in indices[indptr[v] : indptr[v + 1]]:
            reach |= bitsets[w]
        bitsets[v] = reach
    return bitsets


def _sweep_set(indptr: list[int], indices: list[int], n: int, start: int) -> set[int]:
    seen = bytearray(n)
    seen[start] = 1
    result = {start}
    add = result.add
    stack = [start]
    pop = stack.pop
    push = stack.append
    while stack:
        v = pop()
        for w in indices[indptr[v] : indptr[v + 1]]:
            if not seen[w]:
                seen[w] = 1
                add(w)
                push(w)
    return result


def descendants_set(csr: CSRGraph, source: int) -> set[int]:
    """All vertices reachable from ``source`` (including itself)."""
    return _sweep_set(csr.out_indptr, csr.out_indices, csr.num_vertices, source)


def ancestors_set(csr: CSRGraph, target: int) -> set[int]:
    """All vertices that reach ``target`` (including itself)."""
    return _sweep_set(csr.in_indptr, csr.in_indices, csr.num_vertices, target)


def batch_reachable(
    csr: CSRGraph,
    pairs: Sequence[tuple[int, int]],
    word_bits: int = WORD_BITS,
) -> list[bool]:
    """Exact reachability for every ``(source, target)`` pair, batched.

    Pairs are grouped by source, distinct sources packed ``word_bits``
    per wave, and each wave answered by one :func:`reach_masks` sweep —
    so all targets of one source (and all sources of one wave) share a
    single traversal.  Answers come back in input order; duplicate pairs
    are answered once and fanned out.

    ``kernels.sweep`` is a chaos injection point (mid-query delays and
    errors land here), and each wave honours the ambient deadline.
    """
    chaos_point("kernels.sweep")
    if pairs and isinstance(csr, CSRGraph) and _accel.use_for_graph(
        csr.num_vertices
    ):
        from repro.accel.arrays import arrays_of
        from repro.accel.bitset import packed_batch_reachable

        return packed_batch_reachable(arrays_of(csr), pairs, word_bits)
    deadline = current_deadline()
    targets_of: dict[int, set[int]] = {}
    for s, t in pairs:
        targets_of.setdefault(s, set()).add(t)
    answers: dict[tuple[int, int], bool] = {}
    sources = list(targets_of)
    for base in range(0, len(sources), word_bits):
        if deadline is not None:
            deadline.check()
        wave = sources[base : base + word_bits]
        masks = reach_masks(csr, wave)
        for slot, s in enumerate(wave):
            bit = 1 << slot
            for t in targets_of[s]:
                answers[(s, t)] = bool(masks[t] & bit)
    return [answers[(s, t)] for s, t in pairs]
