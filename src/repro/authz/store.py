"""Multi-tenant tuple store with snapshot-epoch zookies.

The store follows Zanzibar's consistency recipe scaled to this library:
every namespace serves reads from an immutable *snapshot* — the compiled
labeled graph, its plain projection, and a reachability index built by a
registered family — and every write produces a fresh snapshot at the
next *epoch*.  A :class:`Zookie` is the causal token for that epoch:
writes return one, reads accept one as ``at_least``, and a read whose
published snapshot is older than the token's epoch raises
:class:`~repro.errors.StaleZookieError` rather than silently serving
stale data (the "new enemy" problem).

Reads never take the writer lock: the snapshot dictionary swap is
atomic, so ``check``/``list_objects``/``list_subjects``/``expand`` race
against concurrent writes only by observing either the old or the new
epoch — never a torn state.
"""

from __future__ import annotations

import hashlib
import re
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.core.base import ReachabilityIndex
from repro.core.condensed import CondensedIndex
from repro.core.registry import plain_index
from repro.errors import (
    InvalidZookieError,
    StaleZookieError,
    UnknownEntityError,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.authz.tuples import RelationTuple, compile_tuples, parse_tuples
from repro.obs.metrics import global_registry
from repro.obs.tracer import TRACER

__all__ = [
    "Zookie",
    "AuthzSnapshot",
    "CheckResult",
    "ListResult",
    "ExpandResult",
    "AuthzStore",
]

_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9_\-]+$")
_ZOOKIE_SALT = b"repro-authz-zookie-v1"


def _digest(namespace: str, epoch: int) -> str:
    h = hashlib.sha256(_ZOOKIE_SALT)
    h.update(namespace.encode())
    h.update(b"\x00")
    h.update(str(epoch).encode())
    return h.hexdigest()[:8]


@dataclass(frozen=True, order=True)
class Zookie:
    """A causal token: "my writes up to ``epoch`` in ``namespace``"."""

    namespace: str
    epoch: int

    def encode(self) -> str:
        """The wire form ``z1.<namespace>.<epoch>.<digest>``."""
        return f"z1.{self.namespace}.{self.epoch}.{_digest(self.namespace, self.epoch)}"

    @classmethod
    def decode(cls, text: str) -> "Zookie":
        """Parse and digest-check a wire-form zookie."""
        if not isinstance(text, str):
            raise InvalidZookieError(
                f"zookie must be a string, got {type(text).__name__}"
            )
        parts = text.split(".")
        if len(parts) != 4 or parts[0] != "z1":
            raise InvalidZookieError(f"malformed zookie {text!r}")
        _v, namespace, epoch_text, digest = parts
        if not _NAMESPACE_RE.match(namespace) or not epoch_text.isdigit():
            raise InvalidZookieError(f"malformed zookie {text!r}")
        epoch = int(epoch_text)
        if digest != _digest(namespace, epoch):
            raise InvalidZookieError(f"zookie {text!r} fails its digest check")
        return cls(namespace, epoch)


@dataclass(frozen=True)
class AuthzSnapshot:
    """One immutable serving state of a namespace."""

    namespace: str
    epoch: int
    tuples: frozenset[RelationTuple]
    graph: LabeledDiGraph
    plain: DiGraph
    index: ReachabilityIndex
    entity_ids: dict[str, int]
    entities: list[str]

    @property
    def zookie(self) -> Zookie:
        """The causal token for this snapshot."""
        return Zookie(self.namespace, self.epoch)


@dataclass(frozen=True)
class CheckResult:
    """``check``'s answer plus the snapshot token it was served at."""

    allowed: bool
    zookie: Zookie


@dataclass(frozen=True)
class ListResult:
    """An enumeration answer: entity names, token, and the index route."""

    names: tuple[str, ...]
    zookie: Zookie
    route: str


@dataclass(frozen=True)
class ExpandResult:
    """The full reachable set of one entity, with the route taken."""

    entity: str
    direction: str  # "objects" (forward) or "subjects" (backward)
    names: tuple[str, ...]
    zookie: Zookie
    route: str
    details: tuple[str, ...]


@dataclass
class _NamespaceState:
    tuples: set[RelationTuple] = field(default_factory=set)
    epoch: int = 0


class AuthzStore:
    """Per-namespace tuple sets compiled into reachability snapshots.

    ``family`` names any registered plain index family; DAG-only
    families are lifted with
    :class:`~repro.core.condensed.CondensedIndex`, since relation graphs
    cycle freely (mutual group membership).
    """

    def __init__(self, family: str = "TC") -> None:
        self._family_cls = plain_index(family)  # validates the name eagerly
        self.family = family
        self._lock = threading.Lock()
        self._states: dict[str, _NamespaceState] = {}
        self._snapshots: dict[str, AuthzSnapshot] = {}
        self._wal = None
        self._wal_applied_lsn: int | None = None

    # -- durability -------------------------------------------------------
    def attach_wal(self, wal) -> None:
        """Log every write to ``wal`` before publishing its snapshot.

        Duck-typed like the service engine's: anything with
        ``admitted()``, ``append(kind, data) -> lsn`` and ``status()``
        works (:class:`repro.wal.WriteAheadLog` in practice).
        """
        self._wal = wal
        self._wal_applied_lsn = None

    def checkpoint_state(self) -> dict[str, object]:
        """A consistent capture of every namespace for the checkpointer.

        Taken under the writer lock, so it reflects every record this
        store has appended — the invariant
        :class:`repro.wal.CheckpointManager` relies on when picking a
        truncation LSN.  Tuples go out in wire form (``s#rel@o``), the
        same encoding the WAL records use.
        """
        with self._lock:
            return {
                "namespaces": {
                    ns: {
                        "epoch": state.epoch,
                        "tuples": sorted(str(t) for t in state.tuples),
                    }
                    for ns, state in self._states.items()
                },
                "applied_lsn": self._wal_applied_lsn,
            }

    def restore(self, namespaces: dict[str, dict]) -> None:
        """Load recovered state (``{ns: {"epoch", "tuples": [wire]}}``).

        Each namespace is recompiled and published at its exact
        pre-crash epoch, so zookies issued before the crash still
        validate and post-restart writes advance monotonically past
        them.  Call before :meth:`attach_wal` re-arms logging.
        """
        with self._lock:
            for ns, blob in namespaces.items():
                self._check_namespace(ns)
                state = _NamespaceState(
                    tuples=set(parse_tuples(blob["tuples"])),
                    epoch=int(blob["epoch"]),
                )
                self._states[ns] = state
                self._snapshots[ns] = self._compile(ns, state)

    # -- writes -----------------------------------------------------------
    def write(
        self,
        namespace: str,
        writes: list[RelationTuple] = (),
        deletes: list[RelationTuple] = (),
    ) -> Zookie:
        """Apply grants and revokes atomically; returns the new epoch's zookie.

        Revoking an absent tuple and granting a present one are both
        idempotent no-ops; the epoch advances regardless, so the zookie
        always certifies "my request has been incorporated".

        With a WAL attached the write is staged, appended to the log,
        and only then published — a failed or torn append (including a
        chaos-injected one) leaves the served state untouched and the
        client unacknowledged, so no zookie ever certifies an epoch the
        log doesn't carry.
        """
        self._check_namespace(namespace)
        registry = global_registry()
        wal = self._wal
        gate = wal.admitted() if wal is not None else nullcontext()
        with gate, self._lock:
            state = self._states.setdefault(namespace, _NamespaceState())
            tuples = set(state.tuples)
            tuples.update(writes)
            tuples.difference_update(deletes)
            staged = _NamespaceState(tuples=tuples, epoch=state.epoch + 1)
            snapshot = self._compile(namespace, staged)
            if wal is not None:
                self._wal_applied_lsn = wal.append(
                    "authz",
                    {
                        "namespace": namespace,
                        "epoch": staged.epoch,
                        "writes": [str(t) for t in writes],
                        "deletes": [str(t) for t in deletes],
                    },
                )
            self._states[namespace] = staged
            self._snapshots[namespace] = snapshot
        registry.counter("authz.writes").increment()
        registry.counter("authz.tuples_applied").increment(
            len(writes) + len(deletes)
        )
        return snapshot.zookie

    def apply_updates(self, namespace: str, ops) -> list[Zookie]:
        """Drive a grant/revoke stream; one write (and epoch) per op.

        ``ops`` is any iterable of objects with ``kind`` ("grant" or
        "revoke"), ``subject``, ``relation`` and ``object`` fields —
        notably :class:`repro.workloads.updates.TupleOp`.
        """
        zookies: list[Zookie] = []
        for op in ops:
            t = RelationTuple(op.subject, op.relation, op.object)
            if op.kind == "grant":
                zookies.append(self.write(namespace, writes=[t]))
            elif op.kind == "revoke":
                zookies.append(self.write(namespace, deletes=[t]))
            else:
                raise ValueError(f"unknown tuple op kind {op.kind!r}")
        return zookies

    def _compile(self, namespace: str, state: _NamespaceState) -> AuthzSnapshot:
        graph, entity_ids, entities = compile_tuples(sorted(state.tuples))
        plain = graph.to_plain()
        if self._family_cls.metadata.input_kind == "DAG":
            index = CondensedIndex.build(plain, inner=self._family_cls)
        else:
            index = self._family_cls.build(plain)
        return AuthzSnapshot(
            namespace=namespace,
            epoch=state.epoch,
            tuples=frozenset(state.tuples),
            graph=graph,
            plain=plain,
            index=index,
            entity_ids=entity_ids,
            entities=entities,
        )

    # -- reads ------------------------------------------------------------
    def check(
        self,
        namespace: str,
        subject: str,
        object: str,
        at_least: Zookie | None = None,
    ) -> CheckResult:
        """Whether ``subject`` reaches ``object`` in the namespace graph."""
        snapshot = self._snapshot(namespace, at_least)
        registry = global_registry()
        registry.counter("authz.checks").increment()
        sid = self._entity_id(snapshot, subject)
        oid = self._entity_id(snapshot, object)
        allowed = snapshot.index.query(sid, oid)
        if allowed:
            registry.counter("authz.checks_allowed").increment()
        return CheckResult(allowed=allowed, zookie=snapshot.zookie)

    def list_objects(
        self,
        namespace: str,
        subject: str,
        object_type: str | None = None,
        at_least: Zookie | None = None,
    ) -> ListResult:
        """Every entity ``subject`` can reach, via the enumeration API.

        ``object_type`` keeps only entities whose ``type:`` prefix
        matches (e.g. ``"doc"``); the subject itself is never listed.
        """
        snapshot = self._snapshot(namespace, at_least)
        global_registry().counter("authz.list_objects").increment()
        sid = self._entity_id(snapshot, subject)
        members, route = self._enumerate(snapshot, sid, forward=True)
        names = self._names(snapshot, members, exclude=sid, type_prefix=object_type)
        return ListResult(names=tuple(names), zookie=snapshot.zookie, route=route)

    def list_subjects(
        self,
        namespace: str,
        object: str,
        subject_type: str | None = None,
        at_least: Zookie | None = None,
    ) -> ListResult:
        """Every entity that reaches ``object`` (the inverse enumeration)."""
        snapshot = self._snapshot(namespace, at_least)
        global_registry().counter("authz.list_subjects").increment()
        oid = self._entity_id(snapshot, object)
        members, route = self._enumerate(snapshot, oid, forward=False)
        names = self._names(snapshot, members, exclude=oid, type_prefix=subject_type)
        return ListResult(names=tuple(names), zookie=snapshot.zookie, route=route)

    def expand(
        self,
        namespace: str,
        entity: str,
        direction: str = "objects",
        at_least: Zookie | None = None,
    ) -> ExpandResult:
        """The full reachable set of ``entity`` with the route explanation."""
        if direction not in ("objects", "subjects"):
            raise ValueError(
                f"direction must be 'objects' or 'subjects', got {direction!r}"
            )
        snapshot = self._snapshot(namespace, at_least)
        global_registry().counter("authz.expands").increment()
        vid = self._entity_id(snapshot, entity)
        members, route, details = snapshot.index._enumerate_routed(
            vid, direction == "objects"
        )
        if TRACER.enabled:
            global_registry().counter(f"index.route.{route}").increment()
        return ExpandResult(
            entity=entity,
            direction=direction,
            names=tuple(self._names(snapshot, members, exclude=vid)),
            zookie=snapshot.zookie,
            route=route,
            details=details,
        )

    # -- introspection ----------------------------------------------------
    def namespaces(self) -> list[str]:
        """Namespaces with at least one write, sorted."""
        return sorted(self._snapshots)

    def snapshot(self, namespace: str) -> AuthzSnapshot | None:
        """The currently served snapshot (None before the first write)."""
        return self._snapshots.get(namespace)

    # -- internals --------------------------------------------------------
    @staticmethod
    def _check_namespace(namespace: str) -> None:
        if not _NAMESPACE_RE.match(namespace):
            raise InvalidZookieError(
                f"invalid namespace {namespace!r}: must match [A-Za-z0-9_-]+"
            )

    def _snapshot(self, namespace: str, at_least: Zookie | None) -> AuthzSnapshot:
        self._check_namespace(namespace)
        if at_least is not None and at_least.namespace != namespace:
            raise InvalidZookieError(
                f"zookie for namespace {at_least.namespace!r} used against "
                f"namespace {namespace!r}"
            )
        snapshot = self._snapshots.get(namespace)
        epoch = snapshot.epoch if snapshot is not None else 0
        if at_least is not None and epoch < at_least.epoch:
            global_registry().counter("authz.stale_zookies").increment()
            raise StaleZookieError(namespace, at_least.epoch, epoch)
        if snapshot is None:
            # empty namespace at epoch 0: every entity is unknown
            graph, entity_ids, entities = compile_tuples(())
            snapshot = AuthzSnapshot(
                namespace=namespace,
                epoch=0,
                tuples=frozenset(),
                graph=graph,
                plain=graph.to_plain(),
                index=self._family_cls.build(graph.to_plain())
                if self._family_cls.metadata.input_kind != "DAG"
                else CondensedIndex.build(graph.to_plain(), inner=self._family_cls),
                entity_ids=entity_ids,
                entities=entities,
            )
        return snapshot

    @staticmethod
    def _enumerate(
        snapshot: AuthzSnapshot, vertex: int, forward: bool
    ) -> tuple[frozenset[int], str]:
        """One routed enumeration, with route attribution under tracing."""
        members, route, _details = snapshot.index._enumerate_routed(vertex, forward)
        if TRACER.enabled:
            global_registry().counter(f"index.route.{route}").increment()
        return members, route

    @staticmethod
    def _entity_id(snapshot: AuthzSnapshot, entity: str) -> int:
        vid = snapshot.entity_ids.get(entity)
        if vid is None:
            raise UnknownEntityError(entity, snapshot.namespace)
        return vid

    @staticmethod
    def _names(
        snapshot: AuthzSnapshot,
        vertex_ids,
        exclude: int,
        type_prefix: str | None = None,
    ) -> list[str]:
        """Sorted entity names for ``vertex_ids``, in one filtered pass."""
        entities = snapshot.entities
        if type_prefix is None:
            return sorted(entities[v] for v in vertex_ids if v != exclude)
        prefix = type_prefix + ":"
        return sorted(
            name
            for v in vertex_ids
            if v != exclude and (name := entities[v]).startswith(prefix)
        )
