"""Relation tuples — the Zanzibar-style authorization data model.

A relation tuple ``subject#relation@object`` asserts that ``subject``
holds ``relation`` on ``object``: ``user:alice#member@group:eng`` or
``group:eng#viewer@doc:readme``.  Subjects and objects are opaque
``type:id`` entity names; a set of tuples compiles into one labeled
graph per namespace (entity = vertex, tuple = edge labeled with its
relation), so an authorization *check* is exactly a reachability query
and *list-objects* / *list-subjects* are the set-enumeration API.

Entity names and relations are deliberately restricted to a safe
character set so tuples round-trip through their text form and through
zookie encodings without escaping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from repro.errors import InvalidTupleError
from repro.graphs.labeled import LabeledDiGraph

__all__ = ["RelationTuple", "parse_tuple", "parse_tuples", "compile_tuples"]

_ENTITY_RE = re.compile(r"^[A-Za-z0-9_.:\-/]+$")
_RELATION_RE = re.compile(r"^[A-Za-z0-9_\-]+$")


@dataclass(frozen=True, order=True)
class RelationTuple:
    """One ``subject#relation@object`` assertion."""

    subject: str
    relation: str
    object: str

    def __post_init__(self) -> None:
        for part, pattern, what in (
            (self.subject, _ENTITY_RE, "subject"),
            (self.relation, _RELATION_RE, "relation"),
            (self.object, _ENTITY_RE, "object"),
        ):
            if not pattern.match(part):
                raise InvalidTupleError(
                    f"invalid {what} {part!r} in tuple "
                    f"{self.subject!r}#{self.relation!r}@{self.object!r}"
                )
        if self.subject == self.object:
            raise InvalidTupleError(
                f"tuple subject and object coincide: {self.subject!r}"
            )

    def __str__(self) -> str:
        return f"{self.subject}#{self.relation}@{self.object}"


def parse_tuple(text: str) -> RelationTuple:
    """Parse one ``subject#relation@object`` string."""
    if not isinstance(text, str):
        raise InvalidTupleError(f"tuple must be a string, got {type(text).__name__}")
    head, sep, obj = text.partition("@")
    subject, sep2, relation = head.partition("#")
    if not sep or not sep2:
        raise InvalidTupleError(
            f"malformed tuple {text!r}: expected subject#relation@object"
        )
    return RelationTuple(subject, relation, obj)


def parse_tuples(texts: Iterable[str]) -> list[RelationTuple]:
    """Parse many tuple strings, preserving order."""
    return [parse_tuple(text) for text in texts]


def compile_tuples(
    tuples: Iterable[RelationTuple],
) -> tuple[LabeledDiGraph, dict[str, int], list[str]]:
    """Compile tuples into a labeled graph plus the entity interning maps.

    Entities are interned to dense vertex ids in first-seen order
    (subject before object per tuple); each tuple becomes one edge
    labeled with its relation.  Returns ``(graph, entity_ids, entities)``
    with ``entities[entity_ids[name]] == name``.
    """
    entity_ids: dict[str, int] = {}
    entities: list[str] = []
    triples: list[tuple[int, int, str]] = []
    seen: set[tuple[int, int, str]] = set()
    for t in tuples:
        for name in (t.subject, t.object):
            if name not in entity_ids:
                entity_ids[name] = len(entities)
                entities.append(name)
        triple = (entity_ids[t.subject], entity_ids[t.object], t.relation)
        if triple in seen:
            continue
        seen.add(triple)
        triples.append(triple)
    graph = LabeledDiGraph(len(entities), triples)
    return graph, entity_ids, entities
