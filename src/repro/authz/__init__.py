"""Zanzibar-style authorization on top of the reachability core.

Relation tuples compile into per-namespace labeled graphs; permission
checks are pair queries and list-objects / list-subjects ride the
set-enumeration API (``reachable_from`` / ``reaching_to``) with its
per-family fast paths.  Snapshot-epoch zookies give reads causal
consistency under concurrent writes.
"""

from repro.authz.store import (
    AuthzSnapshot,
    AuthzStore,
    CheckResult,
    ExpandResult,
    ListResult,
    Zookie,
)
from repro.authz.tuples import (
    RelationTuple,
    compile_tuples,
    parse_tuple,
    parse_tuples,
)

__all__ = [
    "AuthzSnapshot",
    "AuthzStore",
    "CheckResult",
    "ExpandResult",
    "ListResult",
    "Zookie",
    "RelationTuple",
    "compile_tuples",
    "parse_tuple",
    "parse_tuples",
]
