"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a graph (bad vertex id, duplicate edge, ...)."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid."""


class EdgeError(GraphError):
    """An edge is invalid (unknown endpoints, duplicate, missing label, ...)."""


class NotADAGError(GraphError):
    """An operation that requires a DAG was given a cyclic graph."""


class IndexBuildError(ReproError):
    """An index could not be built on the given input."""


class UnsupportedOperationError(ReproError):
    """The index does not support the requested operation (e.g. updates)."""


class QueryError(ReproError):
    """A query is malformed (bad vertices, unparsable path constraint, ...)."""


class InvalidVertexError(QueryError):
    """A query names a vertex id outside the served graph.

    Carries enough structure for service front doors to render a typed
    HTTP 400 payload instead of a bare string: the offending ``vertex``,
    the graph size ``num_vertices``, and — for batch endpoints — the
    zero-based ``position`` of the bad pair.
    """

    http_status = 400

    def __init__(
        self,
        vertex: object,
        num_vertices: int,
        position: int | None = None,
    ) -> None:
        where = f" (pair {position})" if position is not None else ""
        super().__init__(
            f"unknown vertex {vertex!r}{where}: valid ids are 0..{num_vertices - 1}"
        )
        self.vertex = vertex
        self.num_vertices = num_vertices
        self.position = position

    def as_payload(self) -> dict[str, object]:
        """The JSON error body served by the HTTP tier."""
        payload: dict[str, object] = {
            "error": str(self),
            "error_type": "invalid_vertex",
            "vertex": self.vertex,
            "num_vertices": self.num_vertices,
        }
        if self.position is not None:
            payload["position"] = self.position
        return payload


class ConstraintSyntaxError(QueryError):
    """A path-constraint regular expression could not be parsed."""


class UnsupportedConstraintError(QueryError):
    """The index cannot evaluate the given class of path constraint."""


class PersistenceError(ReproError):
    """A saved-index file is malformed or from an unsupported version."""


class ServiceError(ReproError):
    """The reachability service was misused (wrong mode, bad update op, ...)."""


class DeadlineExceeded(ReproError):
    """Cooperative cancellation: the ambient deadline expired mid-operation.

    Raised from the bounded checkpoints inside traversal loops, kernel
    sweeps, and cross-shard composition when a
    :func:`repro.resilience.deadline_scope` has run out of budget.  The
    serving tier catches it and degrades the answer to UNKNOWN instead
    of letting it escape to the caller.
    """


class ServiceOverloadedError(ReproError):
    """Admission control shed the request (queue full / concurrency cap).

    Carries ``retry_after_s`` so front doors can emit a ``Retry-After``
    hint alongside the 503.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ChaosInjectedError(ReproError):
    """A fault deliberately raised by the chaos harness at an injection point."""


class WALError(ReproError):
    """The write-ahead log could not accept or replay a record.

    Raised when an append fails (torn write detected, log poisoned by an
    earlier torn write) — the change was *not* acknowledged and the epoch
    swap never happened, so callers may safely retry after recovery.
    """

    http_status = 503

    def as_payload(self) -> dict[str, object]:
        return {"error": str(self), "error_type": "wal_error"}


class WALCorruptionError(WALError):
    """Replay found a corrupt record that is not a truncatable tail.

    A bad CRC in the *last* segment is a torn write and is cleanly
    truncated; a bad record followed by more data (or a later segment)
    means real corruption, and recovery refuses to serve rather than
    silently skipping acknowledged history.
    """

    def __init__(self, path: object, offset: int, detail: str) -> None:
        super().__init__(
            f"{path}: corrupt WAL record at offset {offset} ({detail}) — "
            "not a truncatable tail; refusing to replay past it"
        )
        self.path = str(path)
        self.offset = offset

    def as_payload(self) -> dict[str, object]:
        return {
            "error": str(self),
            "error_type": "wal_corruption",
            "path": self.path,
            "offset": self.offset,
        }


class WriteBacklogError(ReproError):
    """Bounded write admission shed this update (WAL append queue full).

    The writer path is saturated; carries ``retry_after_s`` so front
    doors can emit ``Retry-After`` alongside the 429.
    """

    http_status = 429

    def __init__(self, pending: int, limit: int, retry_after_s: float = 0.5) -> None:
        super().__init__(
            f"write backlog full: {pending} appends pending (limit {limit})"
        )
        self.pending = pending
        self.limit = limit
        self.retry_after_s = retry_after_s

    def as_payload(self) -> dict[str, object]:
        return {
            "error": str(self),
            "error_type": "write_backlog",
            "pending": self.pending,
            "limit": self.limit,
            "retry_after_s": self.retry_after_s,
        }


class AuthzError(ReproError):
    """Base class for the Zanzibar-style authorization tier."""


class InvalidTupleError(AuthzError):
    """A relation tuple could not be parsed or refers to a bad shape."""

    http_status = 400

    def as_payload(self) -> dict[str, object]:
        return {"error": str(self), "error_type": "invalid_tuple"}


class UnknownEntityError(AuthzError):
    """A check/list names a subject or object the namespace has never seen."""

    http_status = 400

    def __init__(self, entity: str, namespace: str) -> None:
        super().__init__(f"unknown entity {entity!r} in namespace {namespace!r}")
        self.entity = entity
        self.namespace = namespace

    def as_payload(self) -> dict[str, object]:
        return {
            "error": str(self),
            "error_type": "unknown_entity",
            "entity": self.entity,
            "namespace": self.namespace,
        }


class InvalidZookieError(AuthzError):
    """A zookie string is malformed or fails its digest check."""

    http_status = 400

    def as_payload(self) -> dict[str, object]:
        return {"error": str(self), "error_type": "invalid_zookie"}


class StaleZookieError(AuthzError):
    """No served snapshot satisfies the zookie's at-least epoch.

    Raised instead of silently serving fresher-looking (but possibly
    older) data: the caller's causal token demands epoch
    ``required_epoch`` and the newest queryable snapshot is at
    ``snapshot_epoch``.
    """

    http_status = 409

    def __init__(self, namespace: str, required_epoch: int, snapshot_epoch: int) -> None:
        super().__init__(
            f"stale zookie for namespace {namespace!r}: requires epoch >= "
            f"{required_epoch}, snapshot is at epoch {snapshot_epoch}"
        )
        self.namespace = namespace
        self.required_epoch = required_epoch
        self.snapshot_epoch = snapshot_epoch

    def as_payload(self) -> dict[str, object]:
        return {
            "error": str(self),
            "error_type": "stale_zookie",
            "namespace": self.namespace,
            "required_epoch": self.required_epoch,
            "snapshot_epoch": self.snapshot_epoch,
        }
