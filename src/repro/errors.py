"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a graph (bad vertex id, duplicate edge, ...)."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid."""


class EdgeError(GraphError):
    """An edge is invalid (unknown endpoints, duplicate, missing label, ...)."""


class NotADAGError(GraphError):
    """An operation that requires a DAG was given a cyclic graph."""


class IndexBuildError(ReproError):
    """An index could not be built on the given input."""


class UnsupportedOperationError(ReproError):
    """The index does not support the requested operation (e.g. updates)."""


class QueryError(ReproError):
    """A query is malformed (bad vertices, unparsable path constraint, ...)."""


class ConstraintSyntaxError(QueryError):
    """A path-constraint regular expression could not be parsed."""


class UnsupportedConstraintError(QueryError):
    """The index cannot evaluate the given class of path constraint."""


class PersistenceError(ReproError):
    """A saved-index file is malformed or from an unsupported version."""


class ServiceError(ReproError):
    """The reachability service was misused (wrong mode, bad update op, ...)."""


class DeadlineExceeded(ReproError):
    """Cooperative cancellation: the ambient deadline expired mid-operation.

    Raised from the bounded checkpoints inside traversal loops, kernel
    sweeps, and cross-shard composition when a
    :func:`repro.resilience.deadline_scope` has run out of budget.  The
    serving tier catches it and degrades the answer to UNKNOWN instead
    of letting it escape to the caller.
    """


class ServiceOverloadedError(ReproError):
    """Admission control shed the request (queue full / concurrency cap).

    Carries ``retry_after_s`` so front doors can emit a ``Retry-After``
    hint alongside the 503.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ChaosInjectedError(ReproError):
    """A fault deliberately raised by the chaos harness at an injection point."""
