"""repro.obs — cross-cutting observability for the index stack.

The survey's §5 argues a GDBMS must know *which index family served
which query and at what cost*; its taxonomy tables are build-time /
index-size / query-time breakdowns.  This package is the substrate that
makes those numbers inspectable from live runs:

* :mod:`repro.obs.tracer` — a thread-safe, contextvar-scoped span
  tracer (free when disabled, sampled when enabled) with a ring buffer,
  JSON-lines export and a text tree renderer;
* :mod:`repro.obs.build` — the shared :func:`build_phase` helper every
  index family marks its construction stages with, accumulating into a
  :class:`BuildReport` on the finished index;
* :mod:`repro.obs.metrics` — counters / latency histograms / the
  process-wide :func:`global_registry` that route-attribution and
  planner tallies land in;
* :mod:`repro.obs.sketch` — the sliding-window, mergeable quantile
  sketch behind every histogram (bounded memory, windowed p99s for the
  SLO burn-rate tracker in :mod:`repro.slo`).

Turn it on with :func:`enable_tracing`; everything is pay-for-use.
"""

from repro.obs.build import BuildPhase, BuildReport, build_phase, observe_build
from repro.obs.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    default_latency_buckets,
    global_registry,
)
from repro.obs.sketch import WindowedQuantileSketch, WindowTotals
from repro.obs.tracer import (
    TRACER,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    export_jsonl,
    render_span_tree,
    span_to_dict,
)

__all__ = [
    "BuildPhase",
    "BuildReport",
    "build_phase",
    "observe_build",
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "default_latency_buckets",
    "global_registry",
    "WindowedQuantileSketch",
    "WindowTotals",
    "TRACER",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "export_jsonl",
    "render_span_tree",
    "span_to_dict",
]
