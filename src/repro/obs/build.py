"""Per-phase build timers and structure-size accounting.

O'Reach and PReaCH report *per-phase* construction costs (DFS numbering,
topological levelling, support selection…) as first-class results; the
survey's taxonomy tables are build-time / index-size / query-time
breakdowns.  To reproduce those numbers from live runs, every
:meth:`~repro.core.base.ReachabilityIndex.build` is wrapped (by the core
base class) in :func:`observe_build`, and index implementations mark
their internal stages with the shared :func:`build_phase` helper::

    with build_phase("dfs-numbering") as ph:
        fwd = _dfs_numbers(graph)
        ph.annotate(vertices=graph.num_vertices)

Phases accumulate into a :class:`BuildReport` attached to the finished
index (``index.build_report``), nested builds (the SCC-condensation
wrapper, backbone indexes) appear as child phases of the enclosing
build, and — when the tracer is enabled — every phase is also a trace
span, so ``repro trace`` shows construction and querying in one tree.

The accumulator is a :class:`contextvars.ContextVar`, so concurrent
builds on different threads never interleave their phase lists, and
``build_phase`` outside any observed build (helper code called directly)
degrades to a cheap no-op record.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.obs.tracer import TRACER, _NULL_SPAN

__all__ = ["BuildPhase", "BuildReport", "build_phase", "observe_build"]


@dataclass(frozen=True)
class BuildPhase:
    """One timed construction stage, possibly with nested sub-builds."""

    name: str
    seconds: float
    meta: dict[str, object] = field(default_factory=dict)
    children: tuple["BuildPhase", ...] = ()

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable plain data (the BENCH_*.json shape)."""
        node: dict[str, object] = {"name": self.name, "seconds": self.seconds}
        if self.meta:
            node["meta"] = dict(self.meta)
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node


@dataclass(frozen=True)
class BuildReport:
    """The per-phase construction breakdown of one built index."""

    index: str
    total_seconds: float
    phases: tuple[BuildPhase, ...]
    entries: int | None = None
    #: Kernel backend active during the build ("python" or "numpy").
    backend: str = "python"

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable plain data (the BENCH_*.json shape)."""
        return {
            "index": self.index,
            "total_seconds": self.total_seconds,
            "entries": self.entries,
            "backend": self.backend,
            "phases": [phase.as_dict() for phase in self.phases],
        }

    def render_text(self) -> str:
        """An indented per-phase breakdown for the CLI."""
        lines = [
            f"{self.index}: built in {self.total_seconds * 1e3:.2f}ms"
            + (f", {self.entries:,} entries" if self.entries is not None else "")
        ]

        def walk(phase: BuildPhase, depth: int) -> None:
            share = (
                100.0 * phase.seconds / self.total_seconds
                if self.total_seconds > 0
                else 0.0
            )
            meta = " ".join(f"{k}={phase.meta[k]}" for k in sorted(phase.meta))
            lines.append(
                f"{'  ' * (depth + 1)}{phase.name}: {phase.seconds * 1e3:.2f}ms"
                f" ({share:.0f}%)" + (f"  [{meta}]" if meta else "")
            )
            for child in phase.children:
                walk(child, depth + 1)

        for phase in self.phases:
            walk(phase, 0)
        return "\n".join(lines)


#: The innermost in-progress observed build's phase accumulator.
_PHASES: ContextVar[list[BuildPhase] | None] = ContextVar(
    "repro_obs_build_phases", default=None
)


class _PhaseContext:
    """Context manager recording one :class:`BuildPhase`."""

    __slots__ = ("_name", "_meta", "_span_cm", "_span", "_t0")

    def __init__(self, name: str, meta: dict[str, object]) -> None:
        self._name = name
        self._meta = meta

    def __enter__(self) -> "_PhaseContext":
        self._span_cm = TRACER.span(f"build.{self._name}", **self._meta)
        self._span = self._span_cm.__enter__()
        self._t0 = time.perf_counter()
        return self

    def annotate(self, **meta: object) -> None:
        """Attach size/count accounting to the phase (and its span)."""
        self._meta.update(meta)
        if self._span is not _NULL_SPAN:
            self._span.annotate(**meta)

    def __exit__(self, *exc: object) -> bool:
        seconds = time.perf_counter() - self._t0
        self._span_cm.__exit__(*exc)
        sink = _PHASES.get()
        if sink is not None:
            sink.append(BuildPhase(self._name, seconds, self._meta))
        return False


def build_phase(name: str, **meta: object) -> _PhaseContext:
    """Mark one construction stage inside an index ``build``.

    Records into the enclosing :func:`observe_build` accumulator (when
    one is active) and opens a ``build.<name>`` trace span (when the
    tracer is enabled).  The returned object's ``annotate(**kw)`` adds
    structure-size accounting discovered mid-phase.
    """
    return _PhaseContext(name, meta)


class _BuildObservation:
    """Context manager wrapping one whole index construction."""

    __slots__ = ("_name", "_token", "_phases", "_span_cm", "_t0", "report")

    def __init__(self, name: str) -> None:
        self._name = name
        self.report: BuildReport | None = None

    def __enter__(self) -> "_BuildObservation":
        self._phases: list[BuildPhase] = []
        self._token = _PHASES.set(self._phases)
        self._span_cm = TRACER.span("build", index=self._name)
        self._span_cm.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        total = time.perf_counter() - self._t0
        self._span_cm.__exit__(*exc)
        _PHASES.reset(self._token)
        if exc and exc[0] is not None:
            return False  # failed build: no report, re-raise
        from repro import accel

        self.report = BuildReport(
            index=self._name,
            total_seconds=total,
            phases=tuple(self._phases),
            backend=accel.backend_name(),
        )
        # A nested build (condensation inner, Scarab backbone, …) shows
        # up as one phase of the enclosing build, subtree included.
        outer = _PHASES.get()
        if outer is not None:
            outer.append(
                BuildPhase(
                    f"build.{self._name}", total, children=tuple(self._phases)
                )
            )
        return False

    def attach(self, index: object, entries: int | None = None) -> None:
        """Finalise the report with size accounting and pin it on ``index``."""
        report = self.report
        if report is None:
            return
        report = BuildReport(
            index=report.index,
            total_seconds=report.total_seconds,
            phases=report.phases,
            entries=entries,
            backend=report.backend,
        )
        self.report = report
        try:
            index._build_report = report
        except AttributeError:  # __slots__ without room for the report
            pass


def observe_build(index_name: str) -> _BuildObservation:
    """Observe one whole ``build`` call (used by the core base classes)."""
    return _BuildObservation(index_name)
