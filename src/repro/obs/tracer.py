"""A contextvar-scoped span tracer with near-zero disabled overhead.

The survey's §5 asks GDBMSs to make reachability serving *observable* —
which index family answered, through which route, at what cost.  This
module is the substrate: code under measurement opens named spans,

    with TRACER.span("index.query", index="PLL") as sp:
        ...
        sp.annotate(route="label_probe")

and finished **root** spans (with their nested children) land in a
bounded ring buffer that the CLI (``repro trace``), the service
(``GET /debug/trace``) and tests read back.

Design constraints, in order:

* **Disabled is free.**  ``TRACER.enabled`` is a plain attribute; hot
  paths guard on it, and :meth:`Tracer.span` itself returns a shared
  no-op context manager when tracing is off — no allocation, no clock
  read, no contextvar touch.
* **Thread- and task-safe.**  The active span is a :class:`contextvars.
  ContextVar`, so concurrent request threads (the serving tier's
  one-thread-per-connection shape) each get their own span stack, and
  spans never cross-nest between threads.
* **Sampling at the root.**  ``sample_rate < 1.0`` drops whole traces,
  never partial ones: the decision is drawn once per root span and
  pinned in the context, so children of an unsampled root are no-ops
  too.

Export is pull-based (:meth:`Tracer.finished`, :func:`export_jsonl`,
:func:`render_span_tree`) plus an optional push ``sink`` callable that
receives each finished root span — the JSON-lines tap.
"""

from __future__ import annotations

import io
import json
import random
import threading
import time
from collections import deque
from contextvars import ContextVar
from pathlib import Path

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "enable_tracing",
    "disable_tracing",
    "span_to_dict",
    "render_span_tree",
    "export_jsonl",
]


class Span:
    """One named, timed region with attributes and nested children."""

    __slots__ = ("name", "attributes", "children", "start_unix_s", "duration_s")

    def __init__(self, name: str, attributes: dict[str, object]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.start_unix_s = time.time()
        self.duration_s = 0.0

    def annotate(self, **attributes: object) -> None:
        """Attach or overwrite attributes on the span."""
        self.attributes.update(attributes)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s * 1e6:.1f}us, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """The shared no-op span: a context manager that swallows everything."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **attributes: object) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: Sentinel pinned in the context while an unsampled root is open, so the
#: whole subtree is dropped with one identity check per child span.
_UNSAMPLED = object()


class _ActiveSpan:
    """Context manager for one sampled span (root or child)."""

    __slots__ = ("_tracer", "_span", "_token", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, object]) -> None:
        self._tracer = tracer
        self._span = Span(name, attributes)

    def __enter__(self) -> Span:
        self._token = self._tracer._current.set(self._span)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc: object) -> bool:
        span = self._span
        span.duration_s = time.perf_counter() - self._t0
        tracer = self._tracer
        token = self._token
        parent = token.old_value
        tracer._current.reset(token)
        if isinstance(parent, Span):
            parent.children.append(span)
        else:
            tracer._finish_root(span)
        return False


class _UnsampledRoot:
    """Context manager that pins ``_UNSAMPLED`` for a rejected root trace."""

    __slots__ = ("_tracer", "_token")

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> _NullSpan:
        self._token = self._tracer._current.set(_UNSAMPLED)
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        self._tracer._current.reset(self._token)
        return False


class Tracer:
    """Thread-safe span tracer; one process-wide instance is :data:`TRACER`."""

    def __init__(self, ring_capacity: int = 256) -> None:
        self.enabled = False
        self._sample_rate = 1.0
        self._rng = random.Random()
        self._lock = threading.Lock()
        self._ring: deque[Span] = deque(maxlen=ring_capacity)
        self._sink = None  # callable(Span) for push export, e.g. jsonl
        self._current: ContextVar[object] = ContextVar("repro_obs_span", default=None)
        self._started = 0
        self._sampled = 0

    # -- configuration ---------------------------------------------------
    def configure(
        self,
        enabled: bool | None = None,
        sample_rate: float | None = None,
        ring_capacity: int | None = None,
        sink=None,
    ) -> "Tracer":
        """Reconfigure in place; ``None`` leaves a setting unchanged."""
        with self._lock:
            if sample_rate is not None:
                if not 0.0 <= sample_rate <= 1.0:
                    raise ValueError(
                        f"sample_rate must be in [0, 1], got {sample_rate}"
                    )
                self._sample_rate = sample_rate
            if ring_capacity is not None:
                self._ring = deque(self._ring, maxlen=ring_capacity)
            if sink is not None:
                self._sink = sink
            if enabled is not None:
                self.enabled = enabled
        return self

    @property
    def sample_rate(self) -> float:
        """Fraction of root spans kept (children follow their root)."""
        return self._sample_rate

    @property
    def ring_capacity(self) -> int:
        """Maximum finished root spans retained."""
        return self._ring.maxlen or 0

    # -- recording -------------------------------------------------------
    def span(self, name: str, **attributes: object):
        """Open a span; use as ``with TRACER.span("x", k=v) as sp:``.

        Disabled tracer: returns the shared no-op context manager.
        Enabled: a child span nests under the context's current span; a
        root span is subject to sampling and, once closed, is pushed to
        the ring buffer (and the sink, when set).
        """
        if not self.enabled:
            return _NULL_SPAN
        parent = self._current.get()
        if parent is _UNSAMPLED:
            return _NULL_SPAN
        if parent is None:
            self._started += 1
            if self._sample_rate < 1.0 and self._rng.random() >= self._sample_rate:
                return _UnsampledRoot(self)
            self._sampled += 1
        return _ActiveSpan(self, name, dict(attributes))

    def current_span(self) -> Span | None:
        """The context's open span, if any (for ad-hoc annotation)."""
        current = self._current.get()
        return current if isinstance(current, Span) else None

    def _finish_root(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)
            sink = self._sink
        if sink is not None:
            sink(span)

    # -- reading back ----------------------------------------------------
    def finished(self) -> list[Span]:
        """Snapshot of the ring buffer, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        """Drop all retained spans and reset sampling tallies."""
        with self._lock:
            self._ring.clear()
            self._started = 0
            self._sampled = 0

    def statistics(self) -> dict[str, object]:
        """Tracer state for ``/debug/trace``: config plus sampling tallies."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "sample_rate": self._sample_rate,
                "ring_capacity": self._ring.maxlen,
                "retained": len(self._ring),
                "roots_started": self._started,
                "roots_sampled": self._sampled,
            }


#: The process-wide tracer every instrumented layer records into.
TRACER = Tracer()


def enable_tracing(sample_rate: float = 1.0, ring_capacity: int | None = None) -> Tracer:
    """Turn the global tracer on (optionally resized/sampled)."""
    return TRACER.configure(
        enabled=True, sample_rate=sample_rate, ring_capacity=ring_capacity
    )


def disable_tracing() -> Tracer:
    """Turn the global tracer off (retained spans stay readable)."""
    return TRACER.configure(enabled=False)


# -- export ---------------------------------------------------------------
def span_to_dict(span: Span) -> dict[str, object]:
    """A span subtree as JSON-serialisable plain data."""
    return {
        "name": span.name,
        "start_unix_s": span.start_unix_s,
        "duration_s": span.duration_s,
        "attributes": {k: _jsonable(v) for k, v in span.attributes.items()},
        "children": [span_to_dict(child) for child in span.children],
    }


def _jsonable(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_span_tree(span: Span) -> str:
    """One root span as an indented text tree (durations + attributes)."""
    lines: list[str] = []

    def walk(node: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={node.attributes[k]}" for k in sorted(node.attributes))
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{'  ' * depth}- {node.name} ({_format_duration(node.duration_s)})"
            f"{suffix}"
        )
        for child in node.children:
            walk(child, depth + 1)

    walk(span, 0)
    return "\n".join(lines)


def export_jsonl(spans: list[Span], path: str | Path | io.TextIOBase) -> int:
    """Write one JSON object per root span; returns the number written.

    ``path`` may be a filesystem path or an open text file object.
    """
    if isinstance(path, (str, Path)):
        with open(path, "w", encoding="utf-8") as handle:
            return export_jsonl(spans, handle)
    for span in spans:
        path.write(json.dumps(span_to_dict(span), sort_keys=True) + "\n")
    return len(spans)
