"""Counters and fixed-bucket latency histograms for every layer.

The survey's §5 asks GDBMSs for *observability* — which index family
served which query, and at what cost.  The planner tallies routing
counts, the serving tier records per-route latency distributions, and
the index core attributes every query to its answering route; all of them
meter through the primitives here.

The histogram uses **fixed log-spaced buckets** (1-2.5-5 per decade,
1 µs … 10 s), so recording is one bisect plus a few integer increments
under a lock and percentiles are read without storing samples — the
classic monitoring-system design (and the reason p50/p95/p99 here are
bucket *upper bounds*, not exact order statistics).  Internally each
histogram is a :class:`~repro.obs.sketch.WindowedQuantileSketch`:
cumulative totals preserve the original API exactly, while a
bounded-memory ring of time slices adds :meth:`LatencyHistogram.window`
/ :meth:`LatencyHistogram.window_summary` — sliding-window quantiles
the SLO burn-rate tracker in :mod:`repro.slo` evaluates — and
:meth:`LatencyHistogram.merge` for cross-instance aggregation.

Originally ``repro.service.metrics``; promoted to the cross-cutting
``repro.obs`` layer so the index core and the GDBMS planner can meter
without importing the serving tier.  Alongside per-instance registries
(each :class:`~repro.service.engine.ReachabilityService` owns one),
:func:`global_registry` is the process-wide registry the index core's
route-attribution counters and the planner's routing tallies land in.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.obs.sketch import WindowedQuantileSketch, WindowTotals

__all__ = [
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "default_latency_buckets",
    "global_registry",
]


def default_latency_buckets() -> tuple[float, ...]:
    """Log-spaced bucket upper bounds in seconds: 1 µs to 10 s, 1-2.5-5."""
    bounds: list[float] = []
    for exponent in range(-6, 1):  # 1e-6 … 1e0
        for mantissa in (1.0, 2.5, 5.0):
            bounds.append(mantissa * 10.0**exponent)
    bounds.append(10.0)
    return tuple(bounds)


_DEFAULT_BUCKETS = default_latency_buckets()


class Counter:
    """A thread-safe monotone counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counters are monotone, got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self._value})"


class LatencyHistogram:
    """Fixed-bucket latency histogram with approximate percentiles.

    ``observe`` files a sample into the first bucket whose upper bound
    is >= the sample; samples beyond the last bound land in an overflow
    bucket.  ``percentile(p)`` returns the upper bound of the bucket
    where the cumulative count crosses ``p`` — an upper estimate whose
    error is bounded by the bucket width (≤ 2.5× at these bounds).

    Backed by a :class:`~repro.obs.sketch.WindowedQuantileSketch`, so
    alongside the cumulative view it answers *windowed* quantiles
    (:meth:`window`, :meth:`window_summary`) from a bounded ring of
    ``num_slices`` time slices covering the last ``window_s`` seconds,
    and merges with geometry-identical histograms (:meth:`merge`).  All
    access is serialised on one lock; ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        buckets: tuple[float, ...] = _DEFAULT_BUCKETS,
        *,
        window_s: float = 3600.0,
        num_slices: int = 120,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        # 120 slices over one hour = 30 s granularity: both the SLO
        # tracker's fast (5 m) and slow (1 h) windows read from one ring.
        self._sketch = WindowedQuantileSketch(
            tuple(buckets) if not isinstance(buckets, tuple) else buckets,
            window_s=window_s,
            num_slices=num_slices,
            clock=clock,
        )
        self._bounds = self._sketch.bounds
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one latency sample (seconds)."""
        with self._lock:
            self._sketch.observe(seconds)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self._sketch.total_count

    @property
    def total_seconds(self) -> float:
        """Sum of all samples."""
        return self._sketch.total_sum

    def mean(self) -> float:
        """Mean latency (0.0 when empty)."""
        with self._lock:
            count = self._sketch.total_count
            return self._sketch.total_sum / count if count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (``p`` in (0, 100])."""
        with self._lock:
            return self._sketch.totals().quantile(p)

    def summary(self) -> dict[str, float | int]:
        """count / mean / p50 / p95 / p99 / max as a plain dict.

        Computed under **one** lock acquisition so the fields are
        mutually consistent — a ``/metrics`` scrape racing ``observe``
        never sees a count from one instant and percentiles from
        another (or a torn unlocked ``_max`` read).
        """
        with self._lock:
            totals = self._sketch.totals()
        count = totals.count
        return {
            "count": count,
            "mean_s": totals.sum_s / count if count else 0.0,
            "p50_s": totals.quantile(50),
            "p95_s": totals.quantile(95),
            "p99_s": totals.quantile(99),
            "max_s": totals.max_s,
        }

    def window(self, lookback_s: float | None = None) -> WindowTotals:
        """Aggregate of the last ``lookback_s`` seconds (≤ ``window_s``).

        The returned :class:`~repro.obs.sketch.WindowTotals` is a
        consistent copy — safe to merge with other routes' windows and
        read quantiles from without further locking.
        """
        with self._lock:
            return self._sketch.window(lookback_s)

    def window_summary(
        self, lookback_s: float | None = None
    ) -> dict[str, float | int]:
        """Windowed count / rate / mean / p50 / p95 / p99 / max dict."""
        return self.window(lookback_s).summary()

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s totals and live window into self; returns self.

        Lock order is self-then-other; concurrent symmetric merges are
        the caller's deadlock to avoid (aggregation runs one-way here:
        scratch accumulator ← per-route histograms).
        """
        with self._lock:
            with other._lock:
                self._sketch.merge(other._sketch)
        return self

    def bucket_counts(self) -> tuple[tuple[float, ...], list[int], int, float, float]:
        """``(bounds, counts_with_overflow, count, sum_s, max_s)`` snapshot.

        One consistent read for exposition formats that need the raw
        cumulative buckets (OpenMetrics ``_bucket{le=...}`` series).
        """
        with self._lock:
            return (
                self._bounds,
                list(self._sketch.total_counts),
                self._sketch.total_count,
                self._sketch.total_sum,
                self._sketch.total_max,
            )

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self._sketch.total_count}, "
            f"mean={self.mean():.2e}s)"
        )


class MetricsRegistry:
    """Named counters and histograms behind one get-or-create front door.

    Names are dotted paths (``"service.queries.cache"``); ``as_dict``
    nests them so callers can read ``metrics["service"]["queries"]...``
    without knowing the flat names, and ``render_text`` emits one
    ``name value`` line per sample in the flat exposition format
    monitoring scrapers expect.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            if name in self._histograms:
                raise ValueError(f"{name!r} is already a histogram")
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def histogram(
        self, name: str, buckets: tuple[float, ...] = _DEFAULT_BUCKETS
    ) -> LatencyHistogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            if name not in self._histograms:
                self._histograms[name] = LatencyHistogram(buckets)
            return self._histograms[name]

    def counter_values(self) -> dict[str, int]:
        """Flat ``{dotted_name: value}`` snapshot of every counter."""
        with self._lock:
            counters = dict(self._counters)
        return {name: counter.value for name, counter in counters.items()}

    def histograms(self) -> dict[str, LatencyHistogram]:
        """Shallow ``{dotted_name: histogram}`` snapshot (live objects).

        The histogram objects are themselves thread-safe; callers read
        windows/summaries from them without holding the registry lock.
        """
        with self._lock:
            return dict(self._histograms)

    def as_dict(self) -> dict[str, object]:
        """All metrics as a nested plain dict (JSON-serialisable)."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        root: dict[str, object] = {}
        for name, counter in counters.items():
            _nest(root, name, counter.value)
        for name, histogram in histograms.items():
            _nest(root, name, histogram.summary())
        return root

    def render_text(self) -> str:
        """Flat ``name value`` exposition (one line per sample)."""
        with self._lock:
            counters = sorted(self._counters.items())
            histograms = sorted(self._histograms.items())
        lines: list[str] = []
        for name, counter in counters:
            lines.append(f"{_flat(name)} {counter.value}")
        for name, histogram in histograms:
            for key, value in histogram.summary().items():
                if isinstance(value, float):
                    lines.append(f"{_flat(name)}_{key} {value:.9f}")
                else:
                    lines.append(f"{_flat(name)}_{key} {value}")
        return "\n".join(lines) + "\n"


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (index route attribution, gdbms routing)."""
    return _GLOBAL_REGISTRY


def _flat(name: str) -> str:
    """A dotted metric name as one exposition-format token.

    Metric names can embed index family names (``index.O'Reach.route``),
    which carry quotes, ``+`` and spaces — anything outside
    ``[A-Za-z0-9_]`` becomes ``_`` so every line stays two
    whitespace-separated tokens.
    """
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _nest(root: dict[str, object], dotted: str, value: object) -> None:
    parts = dotted.split(".")
    node = root
    for part in parts[:-1]:
        child = node.setdefault(part, {})
        if not isinstance(child, dict):  # a leaf already claimed this path
            node[part] = child = {"": child}
        node = child
    node[parts[-1]] = value
