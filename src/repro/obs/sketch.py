"""Sliding-window quantile sketches: bounded memory, mergeable, streaming.

The cumulative histograms in :mod:`repro.obs.metrics` answer "what has
the p99 been since the process started?" — the wrong question for SLO
monitoring, where a breach is about the *last five minutes*, not the
lifetime average a week of healthy traffic has diluted.  This module
supplies the windowed substrate:

* :class:`WindowedQuantileSketch` covers a sliding window of
  ``window_s`` seconds with ``num_slices`` ring slots, each holding one
  fixed set of log-spaced bucket counts.  ``observe`` is a bisect plus
  two integer increments; memory is ``num_slices × (len(bounds) + 1)``
  integers regardless of traffic volume.  Cumulative totals ride along
  so the sketch fully replaces an unbounded/bucketed histogram.
* :class:`WindowTotals` is the plain aggregate read out of a window —
  bucket counts, count, sum, max — with :meth:`WindowTotals.merge` so
  per-route (or per-shard) sketches combine into one distribution whose
  quantiles are exactly those of the union of the samples' buckets.

Slices are keyed by **absolute** slice index (``clock() // slice_s``),
which is what makes two sketches with the same geometry mergeable: their
rings align by construction, never by wall-clock luck.

Nothing here locks: :class:`~repro.obs.metrics.LatencyHistogram` guards
its sketch under the histogram lock, and standalone users single-thread
their sketches or wrap them.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections.abc import Callable, Iterable

__all__ = ["WindowTotals", "WindowedQuantileSketch"]


class WindowTotals:
    """The aggregate of one time window: bucket counts plus summary stats.

    ``counts`` has one slot per bound plus a trailing overflow slot.
    ``max_s`` is the largest sample seen in the window's slices (slice
    granularity: a max outlives its sample by up to one slice).
    """

    __slots__ = ("bounds", "counts", "count", "sum_s", "max_s", "window_s")

    def __init__(
        self,
        bounds: tuple[float, ...],
        counts: list[int] | None = None,
        count: int = 0,
        sum_s: float = 0.0,
        max_s: float = 0.0,
        window_s: float = 0.0,
    ) -> None:
        self.bounds = bounds
        self.counts = counts if counts is not None else [0] * (len(bounds) + 1)
        self.count = count
        self.sum_s = sum_s
        self.max_s = max_s
        self.window_s = window_s

    def merge(self, other: "WindowTotals") -> "WindowTotals":
        """Fold ``other`` into self (bucket-wise); returns self.

        Both operands must share bucket bounds — quantiles of the merge
        are then exact with respect to the combined bucket counts.
        """
        if other.bounds != self.bounds:
            raise ValueError("cannot merge WindowTotals with different bounds")
        for slot, value in enumerate(other.counts):
            self.counts[slot] += value
        self.count += other.count
        self.sum_s += other.sum_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s
        if other.window_s > self.window_s:
            self.window_s = other.window_s
        return self

    def quantile(self, p: float) -> float:
        """Upper-bound ``p``-th percentile (``p`` in (0, 100]); 0.0 empty."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for slot, value in enumerate(self.counts):
            cumulative += value
            if cumulative >= rank:
                if slot < len(self.bounds):
                    return self.bounds[slot]
                return self.max_s  # overflow bucket
        return self.max_s

    def mean(self) -> float:
        """Mean of the window's samples (0.0 when empty)."""
        return self.sum_s / self.count if self.count else 0.0

    def rate_per_s(self) -> float:
        """Samples per second over the window (0.0 for a zero window)."""
        return self.count / self.window_s if self.window_s > 0 else 0.0

    def summary(self) -> dict[str, float | int]:
        """count / rate / mean / p50 / p95 / p99 / max as a plain dict."""
        return {
            "count": self.count,
            "window_s": self.window_s,
            "rate_per_s": self.rate_per_s(),
            "mean_s": self.mean(),
            "p50_s": self.quantile(50),
            "p95_s": self.quantile(95),
            "p99_s": self.quantile(99),
            "max_s": self.max_s,
        }

    @classmethod
    def merged(cls, parts: Iterable["WindowTotals"]) -> "WindowTotals":
        """The union of ``parts`` (empty parts iterable → empty totals)."""
        result: WindowTotals | None = None
        for part in parts:
            if result is None:
                result = cls(
                    part.bounds,
                    list(part.counts),
                    part.count,
                    part.sum_s,
                    part.max_s,
                    part.window_s,
                )
            else:
                result.merge(part)
        return result if result is not None else cls(())

    def __repr__(self) -> str:
        return (
            f"WindowTotals(count={self.count}, window={self.window_s:g}s, "
            f"p99={self.quantile(99) if self.count else 0.0:.2e}s)"
        )


class _Slice:
    """One ring slot: bucket counts for one ``slice_s`` interval."""

    __slots__ = ("index", "counts", "count", "sum_s", "max_s")

    def __init__(self, num_buckets: int) -> None:
        self.index = -1  # absolute slice index currently stored, -1 = empty
        self.counts = [0] * num_buckets
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def reset(self, index: int) -> None:
        self.index = index
        for slot in range(len(self.counts)):
            self.counts[slot] = 0
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0


class WindowedQuantileSketch:
    """A streaming sketch over a sliding window plus cumulative totals.

    ``observe(seconds)`` files the sample into both the all-time totals
    and the ring slot for the current ``slice_s = window_s /
    num_slices`` interval; slots are recycled lazily as the clock
    advances, so an idle sketch does no background work.  ``window()``
    reads the slices covering the requested lookback as one
    :class:`WindowTotals`.

    Not thread-safe by itself — callers (``LatencyHistogram``) guard it.
    """

    __slots__ = (
        "bounds",
        "window_s",
        "num_slices",
        "_slice_s",
        "_slices",
        "_clock",
        "total_counts",
        "total_count",
        "total_sum",
        "total_max",
    )

    def __init__(
        self,
        bounds: tuple[float, ...],
        window_s: float = 300.0,
        num_slices: int = 30,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if num_slices < 1:
            raise ValueError(f"num_slices must be >= 1, got {num_slices}")
        self.bounds = tuple(float(b) for b in bounds)
        self.window_s = float(window_s)
        self.num_slices = int(num_slices)
        self._slice_s = self.window_s / self.num_slices
        num_buckets = len(self.bounds) + 1  # + overflow
        self._slices = [_Slice(num_buckets) for _ in range(self.num_slices)]
        self._clock = clock
        self.total_counts = [0] * num_buckets
        self.total_count = 0
        self.total_sum = 0.0
        self.total_max = 0.0

    # -- writing ---------------------------------------------------------
    def observe(self, seconds: float) -> None:
        """Record one sample into the totals and the current slice."""
        if seconds < 0:
            seconds = 0.0
        slot = bisect_left(self.bounds, seconds)
        self.total_counts[slot] += 1
        self.total_count += 1
        self.total_sum += seconds
        if seconds > self.total_max:
            self.total_max = seconds
        current = self._current_slice()
        current.counts[slot] += 1
        current.count += 1
        current.sum_s += seconds
        if seconds > current.max_s:
            current.max_s = seconds

    def _current_slice(self) -> _Slice:
        index = int(self._clock() / self._slice_s)
        ring = self._slices[index % self.num_slices]
        if ring.index != index:
            ring.reset(index)
        return ring

    # -- reading ---------------------------------------------------------
    def window(self, lookback_s: float | None = None) -> WindowTotals:
        """The aggregate of the slices inside ``lookback_s`` (≤ window).

        The lookback is clamped to whole slices, so the effective window
        is ``ceil(lookback / slice_s)`` slices — at most one slice more
        than asked for, never less (a fresh slice always counts).
        """
        if lookback_s is None or lookback_s > self.window_s:
            lookback_s = self.window_s
        if lookback_s <= 0:
            raise ValueError(f"lookback_s must be > 0, got {lookback_s}")
        now_index = int(self._clock() / self._slice_s)
        keep = min(
            self.num_slices, max(1, -(-lookback_s // self._slice_s).__int__())
        )
        oldest = now_index - keep + 1
        totals = WindowTotals(self.bounds, window_s=keep * self._slice_s)
        for ring in self._slices:
            if oldest <= ring.index <= now_index and ring.count:
                for slot, value in enumerate(ring.counts):
                    totals.counts[slot] += value
                totals.count += ring.count
                totals.sum_s += ring.sum_s
                if ring.max_s > totals.max_s:
                    totals.max_s = ring.max_s
        return totals

    def totals(self) -> WindowTotals:
        """All-time aggregate (the classic cumulative histogram view)."""
        return WindowTotals(
            self.bounds,
            list(self.total_counts),
            self.total_count,
            self.total_sum,
            self.total_max,
        )

    # -- merging ---------------------------------------------------------
    def merge(self, other: "WindowedQuantileSketch") -> "WindowedQuantileSketch":
        """Fold another sketch's totals and live slices into self.

        Requires identical geometry (bounds, window, slice count) — the
        absolute slice indexing then aligns the rings exactly.
        """
        if (
            other.bounds != self.bounds
            or other.window_s != self.window_s
            or other.num_slices != self.num_slices
        ):
            raise ValueError("cannot merge sketches with different geometry")
        for slot, value in enumerate(other.total_counts):
            self.total_counts[slot] += value
        self.total_count += other.total_count
        self.total_sum += other.total_sum
        if other.total_max > self.total_max:
            self.total_max = other.total_max
        for theirs in other._slices:
            if theirs.index < 0 or not theirs.count:
                continue
            mine = self._slices[theirs.index % self.num_slices]
            if mine.index != theirs.index:
                if mine.index > theirs.index:
                    continue  # ours is fresher; theirs expired
                mine.reset(theirs.index)
            for slot, value in enumerate(theirs.counts):
                mine.counts[slot] += value
            mine.count += theirs.count
            mine.sum_s += theirs.sum_s
            if theirs.max_s > mine.max_s:
                mine.max_s = theirs.max_s
        return self

    def __repr__(self) -> str:
        return (
            f"WindowedQuantileSketch(window={self.window_s:g}s, "
            f"slices={self.num_slices}, total={self.total_count})"
        )
