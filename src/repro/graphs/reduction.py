"""DAG reduction: orthogonal preprocessing that shrinks the input (§3.4).

The survey cites SCARAB, ER and RCN as reduction techniques that are
*orthogonal* to the indexing frameworks: they shrink the graph an index is
built on while preserving all reachability answers.  This module implements
the two reductions those papers share:

* **redundant-edge elimination** — drop edge ``(u, v)`` when another
  ``u``-to-``v`` path exists (a transitive-reduction pass restricted to
  existing edges), and
* **equivalent-vertex merging** — collapse vertices with identical
  in-neighbour *and* out-neighbour sets, which are indistinguishable for
  reachability from/to anywhere else.

Both operate on DAGs; run :func:`repro.graphs.scc.condense` first for
general graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order

__all__ = ["remove_redundant_edges", "merge_equivalent_vertices", "ReducedGraph", "reduce_dag"]


def remove_redundant_edges(dag: DiGraph) -> DiGraph:
    """Return a copy of ``dag`` without reachability-redundant edges.

    Edge ``(u, v)`` is redundant iff ``v`` is reachable from ``u`` through
    some other out-neighbour of ``u``.  The result is the transitive
    reduction restricted to the original edge set, computed with per-vertex
    reachable-descendant bitsets in reverse topological order.
    """
    n = dag.num_vertices
    # descendants[v] = bitset of vertices reachable from v (including v)
    descendants = [0] * n
    order = topological_order(dag)
    for v in reversed(order):
        reach = 1 << v
        for w in dag.out_neighbors(v):
            reach |= descendants[w]
        descendants[v] = reach

    reduced = DiGraph(n)
    for u in range(n):
        out = dag.out_neighbors(u)
        for v in out:
            via_other = any(
                w != v and (descendants[w] >> v) & 1 for w in out
            )
            if not via_other:
                reduced.add_edge(u, v)
    return reduced


def merge_equivalent_vertices(dag: DiGraph) -> tuple[DiGraph, list[int]]:
    """Collapse vertices with identical neighbourhoods.

    Two vertices are equivalent when they have the same in-neighbour set and
    the same out-neighbour set; any reachability query through one holds
    through the other.  Returns the merged DAG and ``rep[v]`` mapping each
    original vertex to its merged id.
    """
    n = dag.num_vertices
    signature: dict[tuple[frozenset[int], frozenset[int]], int] = {}
    rep = [0] * n
    class_members: list[list[int]] = []
    for v in range(n):
        key = (frozenset(dag.in_neighbors(v)), frozenset(dag.out_neighbors(v)))
        if key in signature:
            rep[v] = signature[key]
            class_members[rep[v]].append(v)
        else:
            new_id = len(class_members)
            signature[key] = new_id
            rep[v] = new_id
            class_members.append([v])
    merged = DiGraph(len(class_members))
    for u, v in dag.edges():
        if rep[u] != rep[v]:
            merged.add_edge_if_absent(rep[u], rep[v])
    return merged, rep


@dataclass(frozen=True)
class ReducedGraph:
    """A DAG after reduction, with the vertex map back to the original."""

    dag: DiGraph
    rep: list[int]
    edges_removed: int
    vertices_merged: int


def reduce_dag(dag: DiGraph) -> ReducedGraph:
    """Apply both reductions: equivalence merging, then edge elimination."""
    merged, rep = merge_equivalent_vertices(dag)
    slim = remove_redundant_edges(merged)
    return ReducedGraph(
        dag=slim,
        rep=rep,
        edges_removed=merged.num_edges - slim.num_edges,
        vertices_merged=dag.num_vertices - merged.num_vertices,
    )
