"""Graph substrate: data structures, generators, I/O, SCC, reductions."""

from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.graphs.scc import Condensation, condense, strongly_connected_components
from repro.graphs.topo import (
    is_dag,
    reverse_topological_order,
    topological_levels,
    topological_order,
    topological_rank,
)

__all__ = [
    "DiGraph",
    "LabeledDiGraph",
    "Condensation",
    "condense",
    "strongly_connected_components",
    "is_dag",
    "topological_order",
    "topological_rank",
    "topological_levels",
    "reverse_topological_order",
]
