"""Synthetic graph generators.

The survey evaluates indexes on real-world graphs (social, citation,
biological, RDF).  Those datasets are not redistributable here, so this
module provides seeded synthetic families that match the structural
statistics the survey's claims depend on: DAG depth, degree skew, density,
SCC structure, and edge-label distribution.  Every generator takes an
explicit ``seed`` so workloads and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph

__all__ = [
    "random_dag",
    "gnp_digraph",
    "scale_free_dag",
    "random_tree",
    "tree_with_shortcuts",
    "layered_dag",
    "community_dag",
    "cyclic_communities",
    "with_random_labels",
    "random_labeled_digraph",
    "rmat_digraph",
]


def random_dag(num_vertices: int, num_edges: int, seed: int) -> DiGraph:
    """A uniform random DAG with exactly ``num_edges`` edges.

    Edges only go from a lower id to a higher id, so acyclicity is by
    construction; ids are then a valid (hidden) topological order.
    """
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise GraphError(f"cannot place {num_edges} edges in a {num_vertices}-vertex DAG")
    rng = random.Random(seed)
    graph = DiGraph(num_vertices)
    placed = 0
    while placed < num_edges:
        u = rng.randrange(num_vertices - 1)
        v = rng.randrange(u + 1, num_vertices)
        if graph.add_edge_if_absent(u, v):
            placed += 1
    return graph


def gnp_digraph(num_vertices: int, edge_prob: float, seed: int) -> DiGraph:
    """Directed Erdős–Rényi G(n, p); generally cyclic."""
    if not 0.0 <= edge_prob <= 1.0:
        raise GraphError(f"edge_prob must be in [0, 1], got {edge_prob}")
    rng = random.Random(seed)
    graph = DiGraph(num_vertices)
    for u in range(num_vertices):
        for v in range(num_vertices):
            if u != v and rng.random() < edge_prob:
                graph.add_edge(u, v)
    return graph


def scale_free_dag(num_vertices: int, edges_per_vertex: int, seed: int) -> DiGraph:
    """A preferential-attachment DAG (power-law in-degree).

    Vertex ``v`` attaches ``edges_per_vertex`` outgoing edges to earlier
    vertices chosen proportionally to their current degree, mimicking the
    skewed degree distribution of citation and social graphs.  Edges point
    from later to earlier vertices, so the graph is acyclic.
    """
    rng = random.Random(seed)
    graph = DiGraph(num_vertices)
    # repeated-vertex list implements preferential attachment in O(1) draws
    attachment_pool: list[int] = [0]
    for v in range(1, num_vertices):
        targets: set[int] = set()
        wanted = min(edges_per_vertex, v)
        while len(targets) < wanted:
            if rng.random() < 0.25:  # mixing in uniform choice keeps pool diverse
                targets.add(rng.randrange(v))
            else:
                targets.add(attachment_pool[rng.randrange(len(attachment_pool))])
        for t in targets:
            graph.add_edge(v, t)
            attachment_pool.append(t)
        attachment_pool.append(v)
    return graph


def random_tree(num_vertices: int, seed: int, max_children: int = 4) -> DiGraph:
    """A random rooted tree with edges pointing from parent to child."""
    rng = random.Random(seed)
    graph = DiGraph(num_vertices)
    child_count = [0] * num_vertices
    for v in range(1, num_vertices):
        while True:
            parent = rng.randrange(v)
            if child_count[parent] < max_children:
                break
        graph.add_edge(parent, v)
        child_count[parent] += 1
    return graph


def tree_with_shortcuts(
    num_vertices: int, num_shortcuts: int, seed: int, max_children: int = 4
) -> DiGraph:
    """A rooted tree plus ``num_shortcuts`` extra forward (non-tree) edges.

    This is the regime where dual-labeling and path-tree style indexes shine
    (§3.1: "their application to graphs works well only if the number of
    non-tree edges is very low").
    """
    rng = random.Random(seed)
    graph = random_tree(num_vertices, seed=seed, max_children=max_children)
    placed = 0
    attempts = 0
    while placed < num_shortcuts and attempts < 50 * max(1, num_shortcuts):
        attempts += 1
        u = rng.randrange(num_vertices - 1)
        v = rng.randrange(u + 1, num_vertices)
        if graph.add_edge_if_absent(u, v):
            placed += 1
    return graph


def layered_dag(
    layers: int, width: int, edges_per_vertex: int, seed: int
) -> DiGraph:
    """A layered DAG: ``layers`` ranks of ``width`` vertices each.

    Every non-sink vertex gets ``edges_per_vertex`` edges into the next
    layer.  Layered DAGs model workflow/provenance graphs and give long
    reachability chains, stressing traversal-based processing.
    """
    rng = random.Random(seed)
    graph = DiGraph(layers * width)
    for layer in range(layers - 1):
        for i in range(width):
            u = layer * width + i
            targets = rng.sample(range(width), min(edges_per_vertex, width))
            for j in targets:
                graph.add_edge(u, (layer + 1) * width + j)
    return graph


def community_dag(
    num_communities: int,
    community_size: int,
    seed: int,
    intra_edge_prob: float = 0.25,
    inter_edge_prob: float = 0.02,
) -> DiGraph:
    """A DAG of dense communities joined by sparse forward edges.

    Community ``c`` occupies the contiguous id block
    ``[c*size, (c+1)*size)``; within a block, forward edges (lower id to
    higher id) appear with probability ``intra_edge_prob``, and between
    a community and any *later* one with probability ``inter_edge_prob``
    (placed by expected-count sampling, so generation stays proportional
    to the number of edges rather than to ``n**2``).  Ids are a valid
    topological order by construction.

    ``inter_edge_prob`` is the partitioner's dial: near zero the graph
    is partition-friendly (cutting between communities severs almost
    nothing), near ``intra_edge_prob`` community structure dissolves and
    every cut is expensive — both regimes the sharding benchmarks need.
    """
    if num_communities < 1:
        raise GraphError(f"need at least one community, got {num_communities}")
    if community_size < 1:
        raise GraphError(f"community_size must be >= 1, got {community_size}")
    for name, prob in (
        ("intra_edge_prob", intra_edge_prob),
        ("inter_edge_prob", inter_edge_prob),
    ):
        if not 0.0 <= prob <= 1.0:
            raise GraphError(f"{name} must be in [0, 1], got {prob}")
    rng = random.Random(seed)
    graph = DiGraph(num_communities * community_size)
    for c in range(num_communities):
        base = c * community_size
        for i in range(community_size - 1):
            for j in range(i + 1, community_size):
                if rng.random() < intra_edge_prob:
                    graph.add_edge(base + i, base + j)
    cross_slots = (
        community_size * community_size * num_communities * (num_communities - 1) // 2
    )
    wanted = min(cross_slots, round(inter_edge_prob * cross_slots))
    placed = 0
    attempts = 0
    while placed < wanted and attempts < 50 * wanted + 100:
        attempts += 1
        cu = rng.randrange(num_communities - 1)
        cv = rng.randrange(cu + 1, num_communities)
        u = cu * community_size + rng.randrange(community_size)
        v = cv * community_size + rng.randrange(community_size)
        if graph.add_edge_if_absent(u, v):
            placed += 1
    return graph


def cyclic_communities(
    num_communities: int, community_size: int, inter_edges: int, seed: int
) -> DiGraph:
    """A cyclic graph: directed-cycle communities wired by random DAG edges.

    Each community is a strongly connected ring (plus one chord), and
    communities are connected by forward edges, so the condensation is a
    random DAG over ``num_communities`` vertices.  Exercises the
    general-graph path of every index via SCC coarsening (§3.1).
    """
    rng = random.Random(seed)
    n = num_communities * community_size
    graph = DiGraph(n)
    for c in range(num_communities):
        base = c * community_size
        for i in range(community_size):
            graph.add_edge(base + i, base + (i + 1) % community_size)
        if community_size > 2:
            graph.add_edge_if_absent(base, base + community_size // 2)
    placed = 0
    while placed < inter_edges:
        cu = rng.randrange(num_communities - 1)
        cv = rng.randrange(cu + 1, num_communities)
        u = cu * community_size + rng.randrange(community_size)
        v = cv * community_size + rng.randrange(community_size)
        if graph.add_edge_if_absent(u, v):
            placed += 1
    return graph


def with_random_labels(
    graph: DiGraph,
    labels: Sequence[str],
    seed: int,
    skew: float = 0.0,
) -> LabeledDiGraph:
    """Assign one label per edge of a plain graph.

    ``skew = 0`` draws labels uniformly; larger values bias towards the
    first labels via a Zipf-like weighting ``1 / (rank+1)**skew``, mirroring
    the heavy-tailed predicate distribution of real RDF graphs.
    """
    if not labels:
        raise GraphError("need at least one label")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(labels))]
    labeled = LabeledDiGraph(graph.num_vertices)
    for label in labels:  # intern in given order for stable ids
        labeled.intern_label(label)
    for u, v in graph.edges():
        label = rng.choices(labels, weights=weights, k=1)[0]
        labeled.add_edge(u, v, label)
    return labeled


def random_labeled_digraph(
    num_vertices: int,
    num_edges: int,
    labels: Sequence[str],
    seed: int,
    acyclic: bool = False,
    skew: float = 0.0,
) -> LabeledDiGraph:
    """A random labeled digraph (cyclic by default, DAG if ``acyclic``)."""
    rng = random.Random(seed)
    if acyclic:
        plain = random_dag(num_vertices, num_edges, seed=rng.randrange(2**30))
    else:
        plain = DiGraph(num_vertices)
        placed = 0
        while placed < num_edges:
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices)
            if u != v and plain.add_edge_if_absent(u, v):
                placed += 1
    return with_random_labels(plain, labels, seed=rng.randrange(2**30), skew=skew)


def rmat_digraph(
    scale: int,
    num_edges: int,
    seed: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> DiGraph:
    """An R-MAT (recursive-matrix / Kronecker-style) random digraph.

    The standard graph-benchmark family: ``2**scale`` vertices; each edge
    lands by recursively choosing one of four adjacency-matrix quadrants
    with probabilities ``(a, b, c, 1-a-b-c)``, producing the skewed,
    community-clustered structure of real web/social graphs.  Generally
    cyclic; self-loops and duplicates are re-drawn.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError("R-MAT quadrant probabilities must sum to <= 1")
    rng = random.Random(seed)
    n = 1 << scale
    max_edges = n * (n - 1)
    if num_edges > max_edges:
        raise GraphError(f"cannot place {num_edges} edges on {n} vertices")
    graph = DiGraph(n)
    placed = 0
    while placed < num_edges:
        u = v = 0
        for _level in range(scale):
            u <<= 1
            v <<= 1
            roll = rng.random()
            if roll < a:
                pass  # top-left quadrant
            elif roll < a + b:
                v |= 1  # top-right
            elif roll < a + b + c:
                u |= 1  # bottom-left
            else:
                u |= 1
                v |= 1  # bottom-right
        if u != v and graph.add_edge_if_absent(u, v):
            placed += 1
    return graph
