"""Edge-labeled directed graphs for path-constrained reachability.

:class:`LabeledDiGraph` extends the plain adjacency representation with one
label per edge.  Labels are arbitrary hashable names (strings in practice)
interned to dense small integers, so that a *set* of labels can be stored as
an int bitmask — the representation every SPLS-based index in
:mod:`repro.labeled` relies on.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import EdgeError, VertexError
from repro.graphs.digraph import DiGraph

__all__ = ["LabeledDiGraph"]

Label = Hashable


class LabeledDiGraph:
    """A directed graph where every edge carries exactly one label.

    Parameters
    ----------
    num_vertices:
        Number of vertices; ids are ``0..num_vertices-1``.
    edges:
        Optional iterable of ``(u, v, label)`` triples.

    Notes
    -----
    Parallel edges with *different* labels are allowed (an RDF graph can
    relate the same pair of entities in several ways); a duplicate
    ``(u, v, label)`` triple is rejected.
    """

    __slots__ = ("_out", "_in", "_edge_set", "_label_ids", "_label_names", "_num_edges")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int, Label]] = (),
    ) -> None:
        if num_vertices < 0:
            raise VertexError(f"num_vertices must be >= 0, got {num_vertices}")
        # adjacency holds (neighbor, label_id) pairs
        self._out: list[list[tuple[int, int]]] = [[] for _ in range(num_vertices)]
        self._in: list[list[tuple[int, int]]] = [[] for _ in range(num_vertices)]
        self._edge_set: set[tuple[int, int, int]] = set()
        self._label_ids: dict[Label, int] = {}
        self._label_names: list[Label] = []
        self._num_edges = 0
        for u, v, label in edges:
            self.add_edge(u, v, label)

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    @property
    def num_labels(self) -> int:
        """Number of distinct labels seen so far."""
        return len(self._label_names)

    def label_id(self, label: Label) -> int:
        """The dense integer id of ``label``; raises KeyError if unknown."""
        return self._label_ids[label]

    def label_name(self, label_id: int) -> Label:
        """The original label for a dense id."""
        return self._label_names[label_id]

    def labels(self) -> list[Label]:
        """All distinct labels, ordered by id."""
        return list(self._label_names)

    def intern_label(self, label: Label) -> int:
        """Return the id for ``label``, assigning a fresh one if new."""
        label_id = self._label_ids.get(label)
        if label_id is None:
            label_id = len(self._label_names)
            self._label_ids[label] = label_id
            self._label_names.append(label)
        return label_id

    def label_set_mask(self, labels: Iterable[Label]) -> int:
        """Bitmask over label ids for a collection of label names."""
        mask = 0
        for label in labels:
            mask |= 1 << self.label_id(label)
        return mask

    def mask_to_labels(self, mask: int) -> set[Label]:
        """The set of label names encoded by a bitmask."""
        return {
            self._label_names[i]
            for i in range(len(self._label_names))
            if mask >> i & 1
        }

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of labeled edges in the graph."""
        return self._num_edges

    def vertices(self) -> range:
        """All vertex ids, as a range."""
        return range(len(self._out))

    def edges(self) -> Iterator[tuple[int, int, Label]]:
        """Iterate over edges as ``(u, v, label_name)`` triples."""
        for u, pairs in enumerate(self._out):
            for v, label_id in pairs:
                yield (u, v, self._label_names[label_id])

    def out_edges(self, v: int) -> list[tuple[int, int]]:
        """Outgoing ``(neighbor, label_id)`` pairs of ``v`` (do not mutate)."""
        self._check_vertex(v)
        return self._out[v]

    def in_edges(self, v: int) -> list[tuple[int, int]]:
        """Incoming ``(neighbor, label_id)`` pairs of ``v`` (do not mutate)."""
        self._check_vertex(v)
        return self._in[v]

    def out_degree(self, v: int) -> int:
        """Number of outgoing edges of ``v``."""
        self._check_vertex(v)
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        """Number of incoming edges of ``v``."""
        self._check_vertex(v)
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """Total degree (in + out) of ``v``."""
        return self.in_degree(v) + self.out_degree(v)

    def has_edge(self, u: int, v: int, label: Label) -> bool:
        """Whether the labeled edge ``u -(label)-> v`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        label_id = self._label_ids.get(label)
        if label_id is None:
            return False
        return (u, v, label_id) in self._edge_set

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append a fresh vertex and return its id."""
        self._out.append([])
        self._in.append([])
        return len(self._out) - 1

    def add_edge(self, u: int, v: int, label: Label) -> None:
        """Insert ``u -(label)-> v``; raises :class:`EdgeError` if present."""
        self._check_vertex(u)
        self._check_vertex(v)
        label_id = self.intern_label(label)
        key = (u, v, label_id)
        if key in self._edge_set:
            raise EdgeError(f"edge ({u}, {v}, {label!r}) already exists")
        self._out[u].append((v, label_id))
        self._in[v].append((u, label_id))
        self._edge_set.add(key)
        self._num_edges += 1

    def remove_edge(self, u: int, v: int, label: Label) -> None:
        """Delete ``u -(label)-> v``; raises :class:`EdgeError` if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        label_id = self._label_ids.get(label)
        key = (u, v, label_id) if label_id is not None else None
        if key is None or key not in self._edge_set:
            raise EdgeError(f"edge ({u}, {v}, {label!r}) does not exist")
        self._out[u].remove((v, label_id))
        self._in[v].remove((u, label_id))
        self._edge_set.discard(key)
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def to_plain(self) -> DiGraph:
        """Forget labels: a :class:`DiGraph` with one edge per connected pair."""
        plain = DiGraph(self.num_vertices)
        for u, v, _label in self.edges():
            plain.add_edge_if_absent(u, v)
        return plain

    def reversed(self) -> "LabeledDiGraph":
        """A new graph with every edge flipped, labels preserved."""
        rev = LabeledDiGraph(self.num_vertices)
        for u, v, label in self.edges():
            rev.add_edge(v, u, label)
        return rev

    def copy(self) -> "LabeledDiGraph":
        """An independent copy of this graph (label ids preserved)."""
        clone = LabeledDiGraph(self.num_vertices)
        for label in self._label_names:
            clone.intern_label(label)
        for u, v, label in self.edges():
            clone.add_edge(u, v, label)
        return clone

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return (
            f"LabeledDiGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|L|={self.num_labels})"
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < len(self._out)):
            raise VertexError(f"vertex {v} out of range [0, {len(self._out)})")
