"""Strongly connected components and DAG condensation.

Implements the reduction described in §3.1 of the survey ("From cyclic
graphs to DAGs"): Tarjan's linear-time SCC algorithm, written iteratively so
it does not hit Python's recursion limit on deep graphs, and the coarsening
of every SCC into a representative vertex, producing a DAG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.digraph import DiGraph

__all__ = ["strongly_connected_components", "Condensation", "condense"]


def strongly_connected_components(graph: DiGraph) -> list[list[int]]:
    """Tarjan's algorithm, iteratively.

    Returns the list of SCCs; each SCC is a list of vertex ids.  SCCs are
    emitted in reverse topological order of the condensation (a property of
    Tarjan's algorithm this module's callers rely on).
    """
    n = graph.num_vertices
    index_of = [-1] * n  # discovery index, -1 = unvisited
    lowlink = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    components: list[list[int]] = []
    next_index = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        # Each work item is (vertex, iterator position into out-neighbours).
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            v, edge_pos = work[-1]
            if edge_pos == 0:
                index_of[v] = next_index
                lowlink[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            neighbors = graph.out_neighbors(v)
            while edge_pos < len(neighbors):
                w = neighbors[edge_pos]
                edge_pos += 1
                if index_of[w] == -1:
                    work[-1] = (v, edge_pos)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index_of[w])
            if advanced:
                continue
            # v is finished
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index_of[v]:
                component: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
    return components


@dataclass(frozen=True)
class Condensation:
    """The result of coarsening each SCC of a graph into one vertex.

    Attributes
    ----------
    dag:
        The condensed graph; guaranteed acyclic.
    scc_of:
        ``scc_of[v]`` is the condensed-vertex id for original vertex ``v``.
    members:
        ``members[c]`` lists the original vertices inside condensed vertex
        ``c``.
    """

    dag: DiGraph
    scc_of: list[int]
    members: list[list[int]]

    @property
    def is_trivial(self) -> bool:
        """True when every SCC is a single vertex (input was already a DAG)."""
        return all(len(m) == 1 for m in self.members)

    def same_component(self, u: int, v: int) -> bool:
        """Whether two original vertices share an SCC."""
        return self.scc_of[u] == self.scc_of[v]


def condense(graph: DiGraph) -> Condensation:
    """Coarsen every SCC of ``graph`` into a representative vertex.

    The returned DAG has one vertex per SCC and an edge ``(c1, c2)``
    whenever the original graph has an edge from a member of ``c1`` to a
    member of ``c2`` with ``c1 != c2``.  Self-loops vanish by construction.
    """
    components = strongly_connected_components(graph)
    scc_of = [0] * graph.num_vertices
    for comp_id, component in enumerate(components):
        for v in component:
            scc_of[v] = comp_id
    dag = DiGraph(len(components))
    for u, v in graph.edges():
        cu, cv = scc_of[u], scc_of[v]
        if cu != cv:
            dag.add_edge_if_absent(cu, cv)
    return Condensation(dag=dag, scc_of=scc_of, members=components)
