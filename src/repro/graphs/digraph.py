"""A compact directed graph over dense integer vertex ids.

:class:`DiGraph` is the substrate every plain reachability index in this
library is built on.  Vertices are the integers ``0..n-1``; adjacency is
stored as forward and reverse lists so both out-neighbour and in-neighbour
iteration are O(degree).

The class intentionally stays small: no attributes, no views, no payloads.
Edge-labeled graphs live in :mod:`repro.graphs.labeled`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import EdgeError, VertexError

__all__ = ["DiGraph"]


class DiGraph:
    """A directed graph with vertices ``0..n-1`` and unlabeled edges.

    Parameters
    ----------
    num_vertices:
        Number of vertices.  Vertex ids are ``range(num_vertices)``.
    edges:
        Optional iterable of ``(u, v)`` pairs to insert at construction.

    Notes
    -----
    Parallel edges are rejected; self-loops are allowed (they are harmless
    for reachability and some generators produce them before condensation).
    """

    __slots__ = ("_out", "_in", "_out_sets", "_num_edges", "_version", "_csr_cache")

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if num_vertices < 0:
            raise VertexError(f"num_vertices must be >= 0, got {num_vertices}")
        self._out: list[list[int]] = [[] for _ in range(num_vertices)]
        self._in: list[list[int]] = [[] for _ in range(num_vertices)]
        self._out_sets: list[set[int]] = [set() for _ in range(num_vertices)]
        self._num_edges = 0
        self._version = 0  # bumped on every mutation; keys the CSR snapshot cache
        self._csr_cache: object | None = None  # managed by repro.kernels.csr_of
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of edges in the graph."""
        return self._num_edges

    def vertices(self) -> range:
        """All vertex ids, as a range."""
        return range(len(self._out))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges as ``(u, v)`` pairs."""
        for u, targets in enumerate(self._out):
            for v in targets:
                yield (u, v)

    def out_neighbors(self, v: int) -> list[int]:
        """Vertices ``w`` with an edge ``v -> w`` (do not mutate)."""
        self._check_vertex(v)
        return self._out[v]

    def in_neighbors(self, v: int) -> list[int]:
        """Vertices ``u`` with an edge ``u -> v`` (do not mutate)."""
        self._check_vertex(v)
        return self._in[v]

    def out_degree(self, v: int) -> int:
        """Number of outgoing edges of ``v``."""
        self._check_vertex(v)
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        """Number of incoming edges of ``v``."""
        self._check_vertex(v)
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """Total degree (in + out) of ``v``."""
        return self.in_degree(v) + self.out_degree(v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``u -> v`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._out_sets[u]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Append a fresh vertex and return its id."""
        self._out.append([])
        self._in.append([])
        self._out_sets.append(set())
        self._version += 1
        return len(self._out) - 1

    def add_edge(self, u: int, v: int) -> None:
        """Insert the edge ``u -> v``; raises :class:`EdgeError` if present."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v in self._out_sets[u]:
            raise EdgeError(f"edge ({u}, {v}) already exists")
        self._out[u].append(v)
        self._in[v].append(u)
        self._out_sets[u].add(v)
        self._num_edges += 1
        self._version += 1

    def add_edge_if_absent(self, u: int, v: int) -> bool:
        """Insert ``u -> v`` unless present; return True if inserted."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v in self._out_sets[u]:
            return False
        self._out[u].append(v)
        self._in[v].append(u)
        self._out_sets[u].add(v)
        self._num_edges += 1
        self._version += 1
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the edge ``u -> v``; raises :class:`EdgeError` if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._out_sets[u]:
            raise EdgeError(f"edge ({u}, {v}) does not exist")
        self._out[u].remove(v)
        self._in[v].remove(u)
        self._out_sets[u].discard(v)
        self._num_edges -= 1
        self._version += 1

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "DiGraph":
        """A new graph with every edge direction flipped."""
        rev = DiGraph(self.num_vertices)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def copy(self) -> "DiGraph":
        """An independent copy of this graph."""
        return DiGraph(self.num_vertices, self.edges())

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_vertices

    def __contains__(self, edge: object) -> bool:
        if not (isinstance(edge, tuple) and len(edge) == 2):
            return False
        u, v = edge
        if not (isinstance(u, int) and isinstance(v, int)):
            return False
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            return False
        return v in self._out_sets[u]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self._out_sets == other._out_sets
        )

    def __hash__(self) -> int:  # graphs are mutable
        raise TypeError("DiGraph is unhashable")

    def __getstate__(self) -> dict[str, object]:
        """Pickle/deep-copy state: adjacency only, never the CSR cache."""
        return {
            "_out": self._out,
            "_in": self._in,
            "_out_sets": self._out_sets,
            "_num_edges": self._num_edges,
        }

    def __setstate__(self, state: object) -> None:
        # Graphs saved before the CSR-cache slots existed pickle as the
        # default ``(None, slots)`` tuple; both forms must keep loading.
        if isinstance(state, tuple):
            state = state[1] or {}
        assert isinstance(state, dict)
        self._out = state["_out"]
        self._in = state["_in"]
        self._out_sets = state["_out_sets"]
        self._num_edges = state["_num_edges"]
        self._version = 0
        self._csr_cache = None

    def __repr__(self) -> str:
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < len(self._out)):
            raise VertexError(f"vertex {v} out of range [0, {len(self._out)})")
