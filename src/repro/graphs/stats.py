"""Structural statistics of graphs.

The survey's claims are conditioned on graph shape — traversal cost
depends on reachable-set sizes, tree-cover quality on non-tree-edge
counts, 2-hop label sizes on degree skew.  This module computes the
numbers those conditions are stated in, for characterising datasets in
benchmarks and in the CLI (``repro stats``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.digraph import DiGraph
from repro.graphs.scc import strongly_connected_components
from repro.graphs.topo import topological_levels
from repro.traversal.online import descendants

__all__ = ["GraphStatistics", "graph_statistics"]


@dataclass(frozen=True)
class GraphStatistics:
    """A structural profile of a directed graph."""

    num_vertices: int
    num_edges: int
    density: float
    num_sources: int
    num_sinks: int
    max_out_degree: int
    max_in_degree: int
    is_dag: bool
    num_sccs: int
    largest_scc: int
    depth: int  # longest path in the condensation (levels)
    reachability_density: float  # sampled fraction of reachable pairs

    def as_rows(self) -> list[tuple[str, str]]:
        """(metric, value) pairs for table rendering."""
        return [
            ("|V|", f"{self.num_vertices:,}"),
            ("|E|", f"{self.num_edges:,}"),
            ("density", f"{self.density:.4f}"),
            ("sources / sinks", f"{self.num_sources} / {self.num_sinks}"),
            ("max out / in degree", f"{self.max_out_degree} / {self.max_in_degree}"),
            ("DAG", str(self.is_dag)),
            ("SCCs (largest)", f"{self.num_sccs} ({self.largest_scc})"),
            ("depth", str(self.depth)),
            ("reachability density", f"{self.reachability_density:.3f}"),
        ]


def graph_statistics(
    graph: DiGraph, sample_sources: int = 64, seed: int = 0
) -> GraphStatistics:
    """Profile a graph; reachability density is sampled from ``sample_sources``."""
    n = graph.num_vertices
    m = graph.num_edges
    density = m / (n * (n - 1)) if n > 1 else 0.0
    sources = sum(1 for v in graph.vertices() if graph.in_degree(v) == 0)
    sinks = sum(1 for v in graph.vertices() if graph.out_degree(v) == 0)
    max_out = max((graph.out_degree(v) for v in graph.vertices()), default=0)
    max_in = max((graph.in_degree(v) for v in graph.vertices()), default=0)
    components = strongly_connected_components(graph)
    acyclic = all(len(c) == 1 for c in components)
    largest = max((len(c) for c in components), default=0)
    if acyclic:
        depth = max(topological_levels(graph), default=0) if n else 0
    else:
        from repro.graphs.scc import condense

        depth = max(topological_levels(condense(graph).dag), default=0)
    if n == 0:
        reach_density = 0.0
    else:
        rng = random.Random(seed)
        chosen = (
            list(graph.vertices())
            if n <= sample_sources
            else rng.sample(list(graph.vertices()), sample_sources)
        )
        reachable_pairs = sum(len(descendants(graph, v)) - 1 for v in chosen)
        reach_density = reachable_pairs / (len(chosen) * max(1, n - 1))
    return GraphStatistics(
        num_vertices=n,
        num_edges=m,
        density=density,
        num_sources=sources,
        num_sinks=sinks,
        max_out_degree=max_out,
        max_in_degree=max_in,
        is_dag=acyclic,
        num_sccs=len(components),
        largest_scc=largest,
        depth=depth,
        reachability_density=reach_density,
    )
