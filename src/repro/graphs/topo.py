"""Topological ordering utilities for DAGs.

Several index families in this library consume a topological order: the
tree-cover interval labeling visits vertices in reverse topological order to
inherit intervals (§3.1), TFL instantiates the TOL framework with a
topological order (§3.2), and Feline/PReaCH use topological coordinates or
levels for pruning (§3.4).
"""

from __future__ import annotations

from repro.errors import NotADAGError
from repro.graphs.digraph import DiGraph

__all__ = [
    "topological_order",
    "is_dag",
    "topological_rank",
    "topological_levels",
    "reverse_topological_order",
]


def topological_order(graph: DiGraph) -> list[int]:
    """Kahn's algorithm; raises :class:`NotADAGError` on cyclic input.

    Ties are broken by vertex id (smallest first) so the order — and every
    index built from it — is deterministic.
    """
    n = graph.num_vertices
    remaining = [graph.in_degree(v) for v in range(n)]
    # A simple sorted frontier keeps the order deterministic without a heap;
    # we use a heap for O(E log V) worst case.
    import heapq

    frontier = [v for v in range(n) if remaining[v] == 0]
    heapq.heapify(frontier)
    order: list[int] = []
    while frontier:
        v = heapq.heappop(frontier)
        order.append(v)
        for w in graph.out_neighbors(v):
            remaining[w] -= 1
            if remaining[w] == 0:
                heapq.heappush(frontier, w)
    if len(order) != n:
        raise NotADAGError(
            f"graph has a directed cycle ({n - len(order)} vertices unsorted)"
        )
    return order


def is_dag(graph: DiGraph) -> bool:
    """Whether the graph is acyclic."""
    try:
        topological_order(graph)
    except NotADAGError:
        return False
    return True


def topological_rank(graph: DiGraph) -> list[int]:
    """``rank[v]`` = position of ``v`` in the topological order."""
    rank = [0] * graph.num_vertices
    for position, v in enumerate(topological_order(graph)):
        rank[v] = position
    return rank


def topological_levels(graph: DiGraph) -> list[int]:
    """Longest-path-from-source level of each vertex.

    ``level[v] = 0`` for sources; otherwise ``1 + max(level of in-neighbors)``.
    If ``u`` reaches ``v`` then ``level[u] < level[v]`` — the contrapositive
    is the pruning rule PReaCH-style indexes use.
    """
    level = [0] * graph.num_vertices
    for v in topological_order(graph):
        for u in graph.in_neighbors(v):
            if level[u] + 1 > level[v]:
                level[v] = level[u] + 1
    return level


def reverse_topological_order(graph: DiGraph) -> list[int]:
    """The topological order, reversed (sinks first)."""
    order = topological_order(graph)
    order.reverse()
    return order
