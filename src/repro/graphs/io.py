"""Reading and writing graphs as edge lists.

Plain graphs use the ubiquitous whitespace edge-list format (``u v`` per
line); labeled graphs append the label as a third column.  Lines starting
with ``#`` are comments.  Vertex ids in files may be sparse; they are
remapped to dense ids and the mapping is returned so callers can translate
query endpoints.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_labeled_edge_list",
    "write_labeled_edge_list",
]


def _open_lines(source: str | Path | io.TextIOBase) -> list[str]:
    if isinstance(source, io.TextIOBase):
        return source.read().splitlines()
    return Path(source).read_text().splitlines()


def read_edge_list(source: str | Path | io.TextIOBase) -> tuple[DiGraph, dict[str, int]]:
    """Parse a plain edge list.

    Returns the graph and the mapping from original vertex token to dense
    id.  Duplicate edges in the file are collapsed.
    """
    ids: dict[str, int] = {}
    edges: list[tuple[int, int]] = []
    for line_no, line in enumerate(_open_lines(source), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 2:
            raise GraphError(f"line {line_no}: expected 'u v', got {line!r}")
        pair = []
        for token in parts:
            if token not in ids:
                ids[token] = len(ids)
            pair.append(ids[token])
        edges.append((pair[0], pair[1]))
    graph = DiGraph(len(ids))
    for u, v in edges:
        graph.add_edge_if_absent(u, v)
    return graph, ids


def write_edge_list(graph: DiGraph, destination: str | Path | io.TextIOBase) -> None:
    """Write a plain graph as ``u v`` lines (dense ids)."""
    lines = [f"{u} {v}" for u, v in graph.edges()]
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(destination, io.TextIOBase):
        destination.write(text)
    else:
        Path(destination).write_text(text)


def read_labeled_edge_list(
    source: str | Path | io.TextIOBase,
) -> tuple[LabeledDiGraph, dict[str, int]]:
    """Parse a labeled edge list of ``u v label`` lines."""
    ids: dict[str, int] = {}
    edges: list[tuple[int, int, str]] = []
    for line_no, line in enumerate(_open_lines(source), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 3:
            raise GraphError(f"line {line_no}: expected 'u v label', got {line!r}")
        u_token, v_token, label = parts
        for token in (u_token, v_token):
            if token not in ids:
                ids[token] = len(ids)
        edges.append((ids[u_token], ids[v_token], label))
    graph = LabeledDiGraph(len(ids))
    for u, v, label in edges:
        if not graph.has_edge(u, v, label):
            graph.add_edge(u, v, label)
    return graph, ids


def write_labeled_edge_list(
    graph: LabeledDiGraph, destination: str | Path | io.TextIOBase
) -> None:
    """Write a labeled graph as ``u v label`` lines (dense ids)."""
    lines = [f"{u} {v} {label}" for u, v, label in graph.edges()]
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(destination, io.TextIOBase):
        destination.write(text)
    else:
        Path(destination).write_text(text)
