"""Declarative SLOs evaluated as multi-window burn rates.

The survey's workload-dependence argument — no index dominates, so a
deployment must *watch* its own behaviour — needs a crisp definition of
"behaving": that is an SLO.  An :class:`Objective` is one declarative
sentence parsed from the operator-facing grammar::

    reach.p99 < 5ms         # windowed p99 over every service route
    cache.p95 < 100us       # one route's histogram
    batch.p99 < 50ms        # the batch endpoint
    error_rate < 0.1%       # degraded + deadline_abort share of traffic
    unknown_rate < 1%       # UNKNOWN answers per served query

:class:`SLOTracker` evaluates each objective over **two** windows — a
fast one (default 5 minutes) and a slow one (default 1 hour) — as *burn
rates*: ``observed / threshold``.  A breach requires the burn to exceed
``burn_threshold`` in **both** windows, the classic multi-window
alerting shape: the slow window proves the problem is sustained, the
fast window proves it is still happening (so alerts clear promptly once
the cause is fixed).  Windowed latency quantiles come straight from the
:class:`~repro.obs.metrics.LatencyHistogram` sketch ring; rate
objectives are counter deltas over timestamped samples the tracker
keeps (pruned past the slow window, so memory stays bounded).

Breaches act, not just report: the tracker trips the service's
:class:`~repro.resilience.breaker.CircuitBreaker` pre-emptively (the
engine then serves bounded degraded answers instead of letting latency
pile up) and exposes :meth:`SLOTracker.burning` for the
:class:`~repro.service.advisor.AdvisorLoop` to treat SLO burn as a
re-advise trigger alongside route drift.

The tracker reads only a :class:`~repro.obs.metrics.MetricsRegistry`
(metric *names* couple it to the serving tier, imports do not), so it
tests standalone and attaches to any registry-bearing component.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.errors import ServiceError
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.sketch import WindowTotals

__all__ = ["Objective", "SLOTracker", "parse_objective"]

#: Routes counted as errors by ``error_rate`` (the service gave up on an
#: exact answer).  Mirrors ``repro.service.engine.DEGRADED_ROUTES`` —
#: matched by metric name so the SLO layer needs no service import.
ERROR_ROUTES = ("degraded", "deadline_abort")

_QUERY_COUNTER = re.compile(r"^service\.queries\.(?P<route>.+)$")

_SPEC = re.compile(
    r"""^\s*
    (?P<metric>[A-Za-z_][A-Za-z0-9_.]*)
    \s*<\s*
    (?P<value>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
    \s*(?P<unit>ms|us|µs|s|%)?
    \s*$""",
    re.VERBOSE,
)

_LATENCY_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "µs": 1e-6}


@dataclass(frozen=True)
class Objective:
    """One parsed SLO: what to watch and the ceiling it must stay under.

    ``kind`` is ``"latency"`` (``threshold`` in seconds, ``subject`` a
    route name / ``reach`` / ``batch``, ``percentile`` in (0, 100]) or
    ``"rate"`` (``threshold`` a fraction in [0, 1], ``subject`` is
    ``error_rate`` / ``unknown_rate``, ``percentile`` unused).
    """

    name: str
    spec: str
    kind: str
    subject: str
    threshold: float
    percentile: float = 0.0

    def describe(self) -> str:
        """Human-readable restatement of the parsed objective."""
        if self.kind == "latency":
            return (
                f"{self.subject}.p{self.percentile:g} < "
                f"{self.threshold * 1e3:g}ms"
            )
        return f"{self.subject} < {self.threshold * 100:g}%"


def parse_objective(spec: str) -> Objective:
    """Parse one ``metric < value[unit]`` sentence into an :class:`Objective`.

    Raises :class:`~repro.errors.ServiceError` on anything malformed —
    objectives come from CLI flags and config, so errors must name the
    offending spec, not stack-trace.
    """
    match = _SPEC.match(spec)
    if match is None:
        raise ServiceError(
            f"bad SLO spec {spec!r}: expected 'metric < value[unit]', "
            "e.g. 'reach.p99 < 5ms' or 'error_rate < 0.1%'"
        )
    metric = match.group("metric")
    value = float(match.group("value"))
    unit = match.group("unit")
    if value <= 0:
        raise ServiceError(f"bad SLO spec {spec!r}: threshold must be > 0")
    if metric in ("error_rate", "unknown_rate"):
        if unit == "%":
            value /= 100.0
        elif unit is not None:
            raise ServiceError(
                f"bad SLO spec {spec!r}: rate thresholds take '%' or a bare "
                f"fraction, not {unit!r}"
            )
        if value > 1.0:
            raise ServiceError(
                f"bad SLO spec {spec!r}: rate threshold {value:g} exceeds 1.0"
            )
        return Objective(
            name=metric, spec=spec, kind="rate", subject=metric, threshold=value
        )
    latency = re.fullmatch(
        r"(?P<subject>[A-Za-z_][A-Za-z0-9_]*)\.p(?P<pct>\d{1,3}(?:\.\d+)?)",
        metric,
    )
    if latency is not None:
        subject = latency.group("subject")
        tail = f"p{latency.group('pct')}"
        percentile = float(latency.group("pct"))
        if not 0.0 < percentile <= 100.0:
            raise ServiceError(
                f"bad SLO spec {spec!r}: percentile must be in (0, 100]"
            )
        if unit not in _LATENCY_UNITS:
            raise ServiceError(
                f"bad SLO spec {spec!r}: latency thresholds need a unit "
                "(s / ms / us)"
            )
        return Objective(
            name=f"{subject}_{tail}".replace(".", "_"),
            spec=spec,
            kind="latency",
            subject=subject,
            threshold=value * _LATENCY_UNITS[unit],
            percentile=percentile,
        )
    raise ServiceError(
        f"bad SLO spec {spec!r}: metric must be error_rate, unknown_rate, "
        "or <subject>.p<NN> (subject: reach, batch, or a route name)"
    )


class SLOTracker:
    """Evaluate objectives over fast/slow burn-rate windows; act on breach.

    ``evaluate()`` runs one pass and returns per-objective status dicts;
    ``start(interval_s)`` runs passes on a daemon thread.  A breach
    (burn ≥ ``burn_threshold`` in *both* windows) increments
    ``slo.breaches`` / ``slo.breach.<name>`` on the transition in and —
    when a ``breaker`` is attached — keeps it tripped OPEN while the
    burn lasts, which the serving engine reads as "degrade now", before
    the failure pile-up a reactive breaker would need.

    Rate objectives need at least one earlier counter sample to delta
    against; the tracker seeds one at construction, so the very first
    ``evaluate()`` already measures traffic since attach.  Window
    lookbacks clamp to the observed history (a 1 h window reads 40 s of
    samples on a 40 s-old tracker) — burn-rate math degrades to
    single-window alerting at startup rather than staying silent.
    """

    def __init__(
        self,
        objectives: Sequence[Objective | str],
        metrics: MetricsRegistry,
        *,
        breaker: object | None = None,
        fast_window_s: float = 300.0,
        slow_window_s: float = 3600.0,
        burn_threshold: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fast_window_s <= 0 or slow_window_s < fast_window_s:
            raise ServiceError(
                "SLO windows need 0 < fast_window_s <= slow_window_s, got "
                f"{fast_window_s} / {slow_window_s}"
            )
        if burn_threshold <= 0:
            raise ServiceError(
                f"burn_threshold must be > 0, got {burn_threshold}"
            )
        self.objectives = tuple(
            obj if isinstance(obj, Objective) else parse_objective(obj)
            for obj in objectives
        )
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.burn_threshold = float(burn_threshold)
        self._metrics = metrics
        self._breaker = breaker
        self._clock = clock
        self._lock = threading.Lock()
        self._samples: deque[tuple[float, dict[str, int]]] = deque()
        self._breached: dict[str, bool] = {o.name: False for o in self.objectives}
        self._last_status: list[dict[str, object]] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        metrics.counter("slo.evaluations")
        metrics.counter("slo.breaches")
        for objective in self.objectives:
            metrics.counter(f"slo.breach.{objective.name}")
        self._samples.append((self._clock(), self._rate_counters()))

    # -- counter sampling (rate objectives) ------------------------------
    def _rate_counters(self) -> dict[str, int]:
        """The totals every rate objective is a delta of."""
        values = self._metrics.counter_values()
        total = errors = 0
        for name, value in values.items():
            match = _QUERY_COUNTER.match(name)
            if match is None:
                continue
            total += value
            if match.group("route") in ERROR_ROUTES:
                errors += value
        return {
            "total": total,
            "errors": errors,
            "unknowns": values.get("service.unknowns", 0),
        }

    def _windowed_rate(
        self, numerator: str, now: float, window_s: float
    ) -> tuple[float, int]:
        """``(rate, served)`` for ``numerator / total`` over the window.

        The baseline is the newest sample at least ``window_s`` old,
        falling back to the oldest kept (history clamp).
        """
        latest = self._samples[-1][1]
        baseline = self._samples[0][1]
        for when, sample in reversed(self._samples):
            if now - when >= window_s:
                baseline = sample
                break
        served = latest["total"] - baseline["total"]
        if served <= 0:
            return 0.0, 0
        bad = latest[numerator] - baseline[numerator]
        return bad / served, served

    # -- latency windows -------------------------------------------------
    def _latency_window(
        self, subject: str, lookback_s: float
    ) -> WindowTotals | None:
        histograms = self._metrics.histograms()
        if subject == "batch":
            chosen: Iterable[LatencyHistogram] = [
                h
                for n, h in histograms.items()
                if n == "service.batch.latency"
            ]
        elif subject == "reach":
            chosen = [
                h
                for n, h in histograms.items()
                if n.startswith("service.latency.")
            ]
        else:
            chosen = [
                h
                for n, h in histograms.items()
                if n == f"service.latency.{subject}"
            ]
        parts = [h.window(lookback_s) for h in chosen]
        if not parts:
            return None
        return WindowTotals.merged(parts)

    # -- evaluation ------------------------------------------------------
    def _observe(
        self, objective: Objective, now: float, window_s: float
    ) -> tuple[float, int]:
        """``(observed_value, sample_count)`` for one objective/window."""
        if objective.kind == "latency":
            totals = self._latency_window(objective.subject, window_s)
            if totals is None or totals.count == 0:
                return 0.0, 0
            return totals.quantile(objective.percentile), totals.count
        return self._windowed_rate(
            "errors" if objective.subject == "error_rate" else "unknowns",
            now,
            window_s,
        )

    def evaluate(self) -> list[dict[str, object]]:
        """One burn-rate pass over every objective; returns status dicts.

        Each dict: ``objective`` / ``spec`` / ``kind`` / ``threshold`` /
        ``observed_fast`` / ``observed_slow`` / ``burn_fast`` /
        ``burn_slow`` / ``samples_fast`` / ``breached``.
        """
        with self._lock:
            now = self._clock()
            self._samples.append((now, self._rate_counters()))
            while (
                len(self._samples) > 2
                and now - self._samples[1][0] > self.slow_window_s
            ):
                self._samples.popleft()
            self._metrics.counter("slo.evaluations").increment()
            statuses: list[dict[str, object]] = []
            any_new_breach = False
            for objective in self.objectives:
                fast, n_fast = self._observe(objective, now, self.fast_window_s)
                slow, _ = self._observe(objective, now, self.slow_window_s)
                burn_fast = fast / objective.threshold
                burn_slow = slow / objective.threshold
                breached = (
                    n_fast > 0
                    and burn_fast >= self.burn_threshold
                    and burn_slow >= self.burn_threshold
                )
                if breached and not self._breached[objective.name]:
                    any_new_breach = True
                    self._metrics.counter("slo.breaches").increment()
                    self._metrics.counter(
                        f"slo.breach.{objective.name}"
                    ).increment()
                self._breached[objective.name] = breached
                statuses.append(
                    {
                        "objective": objective.name,
                        "spec": objective.spec,
                        "kind": objective.kind,
                        "threshold": objective.threshold,
                        "observed_fast": fast,
                        "observed_slow": slow,
                        "burn_fast": burn_fast,
                        "burn_slow": burn_slow,
                        "samples_fast": n_fast,
                        "breached": breached,
                    }
                )
            self._last_status = statuses
            burning = any(self._breached.values())
        breaker = self._breaker
        if breaker is not None and burning:
            if any_new_breach or getattr(breaker, "state", "open") != "open":
                breaker.trip(reason="slo burn")
        return statuses

    def burning(self) -> bool:
        """True while any objective was breached at the last evaluate."""
        with self._lock:
            return any(self._breached.values())

    def breached_objectives(self) -> tuple[str, ...]:
        """Names of the objectives breached at the last evaluate."""
        with self._lock:
            return tuple(
                name for name, hit in self._breached.items() if hit
            )

    def status(self) -> dict[str, object]:
        """The last evaluation plus window config, as one JSON-safe dict."""
        with self._lock:
            return {
                "objectives": [dict(s) for s in self._last_status],
                "burning": any(self._breached.values()),
                "fast_window_s": self.fast_window_s,
                "slow_window_s": self.slow_window_s,
                "burn_threshold": self.burn_threshold,
            }

    # -- background loop -------------------------------------------------
    def start(self, interval_s: float = 5.0) -> threading.Thread:
        """Evaluate every ``interval_s`` on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return self._thread
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.evaluate()
                except Exception:  # noqa: BLE001 — the monitor must survive
                    pass

        self._thread = threading.Thread(target=run, name="slo-tracker", daemon=True)
        self._thread.start()
        return self._thread

    def stop(self, timeout_s: float = 5.0) -> None:
        """Signal the loop to exit and join its thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None

    def __repr__(self) -> str:
        specs = ", ".join(o.spec for o in self.objectives)
        return f"SLOTracker([{specs}], burning={self.burning()})"
