"""repro.slo — production telemetry on top of :mod:`repro.obs`.

The observability layer records; this layer *judges and acts*.  The
survey's workload-dependence finding — no index dominates, so a running
deployment must watch its own behaviour to know when its index stopped
being the right one — becomes operational here:

* :mod:`repro.slo.objectives` — declarative SLOs (``reach.p99 < 5ms``,
  ``error_rate < 0.1%``) evaluated by an :class:`SLOTracker` as
  fast/slow multi-window burn rates over the histogram sketch ring;
  breaches trip the resilience circuit breaker pre-emptively and feed
  the advisor loop's re-advise trigger;
* :mod:`repro.slo.openmetrics` — OpenMetrics/Prometheus text exposition
  of every registry with dotted suffixes promoted to labels, plus the
  strict line-format validator the tests and CI hold it to;
* :mod:`repro.slo.audit` — the :class:`ShadowAuditor`, replaying a
  sample of served answers against the BFS oracle on the same epoch
  snapshot (``slo.audit.mismatches`` must stay 0);
* :mod:`repro.slo.dashboard` — the ``GET /slo`` payload and the
  ``repro top`` terminal frame.

Everything here reads metric *names*, not serving-tier types, so the
package imports only :mod:`repro.obs` / :mod:`repro.traversal` and
attaches to a service by duck type.
"""

from repro.slo.audit import ShadowAuditor
from repro.slo.dashboard import build_slo_payload, fetch_slo, render_dashboard
from repro.slo.objectives import Objective, SLOTracker, parse_objective
from repro.slo.openmetrics import (
    Gauge,
    render_openmetrics,
    service_openmetrics,
    validate_openmetrics,
)

__all__ = [
    "Gauge",
    "Objective",
    "SLOTracker",
    "ShadowAuditor",
    "build_slo_payload",
    "fetch_slo",
    "parse_objective",
    "render_dashboard",
    "render_openmetrics",
    "service_openmetrics",
    "validate_openmetrics",
]
