"""OpenMetrics text exposition of the metrics registries, plus a
strict line-format validator.

The registries keep dotted names (``service.queries.cache``,
``shard.build.workers``); Prometheus wants *families* with *labels*
(``repro_service_queries_total{route="cache"}``).  The mapping table
here promotes the dotted suffixes every layer already encodes — route,
shard build event, chaos kind, breaker event, SLO objective — into
proper labels, so one scrape config covers the whole stack and route
dashboards need no regex relabelling.  Anything unmapped falls back to
a sanitised flat family, never dropped.

Histograms expose their full cumulative bucket counts
(``_bucket{le="..."}`` ascending, ``+Inf``, ``_count``, ``_sum``) from
one consistent :meth:`~repro.obs.metrics.LatencyHistogram.bucket_counts`
read, so scrape-side ``histogram_quantile`` agrees with the service's
own percentiles up to bucket resolution.

:func:`validate_openmetrics` is the contract's teeth: a line-level
checker (EOF terminator, name/label/escape grammar, TYPE-before-sample,
``_total`` counter suffixes, ``le``-labelled monotone buckets) that the
tests and the CI smoke run against every exposition this module emits —
and that rejects the classic malformations a hand-rolled formatter
drifts into.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.obs.metrics import LatencyHistogram, MetricsRegistry, global_registry

__all__ = [
    "Gauge",
    "render_openmetrics",
    "service_openmetrics",
    "validate_openmetrics",
]


@dataclass(frozen=True)
class Gauge:
    """One gauge sample to splice into an exposition."""

    family: str
    value: float
    labels: Mapping[str, str] = field(default_factory=dict)
    help: str | None = None


#: dotted-name pattern -> (family, help).  Named groups become labels.
_RULES: tuple[tuple[re.Pattern[str], str, str], ...] = tuple(
    (re.compile(pattern), family, help_text)
    for pattern, family, help_text in (
        (
            r"^service\.queries\.(?P<route>.+)$",
            "repro_service_queries",
            "Queries served, by answering route.",
        ),
        (
            r"^service\.latency\.(?P<route>.+)$",
            "repro_service_latency_seconds",
            "Per-route query latency.",
        ),
        (
            r"^service\.batch\.latency$",
            "repro_service_batch_latency_seconds",
            "Batch endpoint latency.",
        ),
        (
            r"^service\.batch\.size$",
            "repro_service_batch_size",
            "Pairs per batch request.",
        ),
        (
            r"^service\.batch\.(?P<event>.+)$",
            "repro_service_batch",
            "Batch endpoint tallies, by event.",
        ),
        (
            r"^service\.advisor\.(?P<event>.+)$",
            "repro_service_advisor",
            "Advisor loop decisions, by event.",
        ),
        (
            r"^service\.shed\.(?P<reason>.+)$",
            "repro_service_shed",
            "Requests shed by admission control, by reason.",
        ),
        (
            r"^service\.patch_audit\.(?P<event>.+)$",
            "repro_service_patch_audit",
            "Post-patch differential audits against the BFS oracle, by event.",
        ),
        (
            r"^service\.(?P<event>patches|rebuilds|swaps|updates_applied)$",
            "repro_service_writes",
            "Write-path outcomes (patch vs rebuild vs swap), by event.",
        ),
        (
            r"^wal\.fsync_latency$",
            "repro_wal_fsync_latency_seconds",
            "WAL fsync latency.",
        ),
        (
            r"^wal\.replay\.(?P<event>.+)$",
            "repro_wal_replay",
            "WAL startup replay tallies, by event.",
        ),
        (
            r"^wal\.(?P<event>.+)$",
            "repro_wal",
            "Write-ahead log activity, by event.",
        ),
        (
            r"^index\.route\.(?P<route>.+)$",
            "repro_index_route",
            "Index-core query attribution, by answering route.",
        ),
        (
            r"^gdbms\.route\.(?P<route>.+)$",
            "repro_gdbms_route",
            "GDBMS planner dispatch, by route.",
        ),
        (
            r"^shard\.route\.(?P<route>.+)$",
            "repro_shard_route",
            "Sharded-index composition, by route.",
        ),
        (
            r"^shard\.build\.(?P<event>.+)$",
            "repro_shard_build",
            "Shard build pipeline tallies, by event.",
        ),
        (
            r"^chaos\.injected\.(?P<kind>.+)$",
            "repro_chaos_injected",
            "Chaos faults fired, by kind.",
        ),
        (
            r"^resilience\.breaker\.(?P<event>.+)$",
            "repro_resilience_breaker",
            "Circuit breaker transitions, by event.",
        ),
        (
            r"^resilience\.deadline\.(?P<event>.+)$",
            "repro_resilience_deadline",
            "Deadline outcomes, by event.",
        ),
        (
            r"^slo\.audit\.(?P<event>.+)$",
            "repro_slo_audit",
            "Shadow correctness auditor tallies, by event.",
        ),
        (
            r"^slo\.breach\.(?P<objective>.+)$",
            "repro_slo_breach",
            "SLO breach transitions, by objective.",
        ),
    )
)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _sanitize(dotted: str) -> str:
    """A dotted metric name as one valid OpenMetrics family token."""
    flat = "".join(c if c.isalnum() or c == "_" else "_" for c in dotted)
    if not flat or not (flat[0].isalpha() or flat[0] == "_"):
        flat = "_" + flat
    return f"repro_{flat}"


def _map_name(dotted: str) -> tuple[str, dict[str, str], str | None]:
    """``(family, labels, help)`` for one dotted registry name."""
    for pattern, family, help_text in _RULES:
        match = pattern.match(dotted)
        if match is not None:
            labels = {
                key: value
                for key, value in match.groupdict().items()
                if value is not None
            }
            return family, labels, help_text
    return _sanitize(dotted), {}, None


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labelset(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Family:
    __slots__ = ("name", "kind", "help", "lines")

    def __init__(self, name: str, kind: str, help_text: str | None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.lines: list[str] = []


def render_openmetrics(
    registries: Sequence[MetricsRegistry],
    gauges: Iterable[Gauge] = (),
    const_labels: Mapping[str, str] | None = None,
) -> str:
    """Every counter/histogram in ``registries`` (first wins on duplicate
    dotted names) plus ``gauges``, as one OpenMetrics text document.

    ``const_labels`` are stamped onto every sample — the serving tier
    passes the active index family and accel backend here so each series
    is attributable without joins.
    """
    const = dict(const_labels or {})
    counters: dict[str, int] = {}
    histograms: dict[str, LatencyHistogram] = {}
    for registry in registries:
        for name, value in registry.counter_values().items():
            counters.setdefault(name, value)
        for name, histogram in registry.histograms().items():
            histograms.setdefault(name, histogram)

    families: dict[str, _Family] = {}

    def family(name: str, kind: str, help_text: str | None) -> _Family:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = _Family(name, kind, help_text)
        elif entry.kind != kind:
            # Two dotted names collapsed onto one family with different
            # kinds — keep both by shunting the newcomer to a suffixed
            # family rather than emitting an invalid document.
            return family(f"{name}_{kind}", kind, help_text)
        return entry

    for dotted in sorted(counters):
        fam_name, labels, help_text = _map_name(dotted)
        labels.update(const)
        entry = family(fam_name, "counter", help_text)
        entry.lines.append(
            f"{entry.name}_total{_labelset(labels)} {counters[dotted]}"
        )

    for dotted in sorted(histograms):
        fam_name, labels, help_text = _map_name(dotted)
        labels.update(const)
        entry = family(fam_name, "histogram", help_text)
        bounds, bucket_counts, count, sum_s, _max = histograms[
            dotted
        ].bucket_counts()
        cumulative = 0
        for bound, bucket in zip(bounds, bucket_counts):
            cumulative += bucket
            le_labels = dict(labels)
            le_labels["le"] = repr(float(bound))
            entry.lines.append(
                f"{entry.name}_bucket{_labelset(le_labels)} {cumulative}"
            )
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        entry.lines.append(f"{entry.name}_bucket{_labelset(inf_labels)} {count}")
        entry.lines.append(f"{entry.name}_count{_labelset(labels)} {count}")
        entry.lines.append(
            f"{entry.name}_sum{_labelset(labels)} {_format_value(sum_s)}"
        )

    for gauge in gauges:
        labels = dict(gauge.labels)
        labels.update(const)
        entry = family(gauge.family, "gauge", gauge.help)
        entry.lines.append(
            f"{entry.name}{_labelset(labels)} {_format_value(gauge.value)}"
        )

    lines: list[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# TYPE {entry.name} {entry.kind}")
        if entry.help:
            lines.append(f"# HELP {entry.name} {entry.help}")
        lines.extend(entry.lines)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def service_openmetrics(
    service,
    *,
    tracker=None,
    auditor=None,
    uptime_s: float | None = None,
    admission=None,
) -> str:
    """The full OpenMetrics exposition for one running service.

    Merges the service registry with the process-wide one (index-core
    route attribution, breaker/chaos tallies), then splices in state
    gauges: epoch, cache, coalescer, breaker, admission, accel backend,
    SLO burn rates and audit queue depth.  Duck-typed on the service so
    the SLO layer stays import-free of the serving tier.
    """
    from repro import accel

    gauges: list[Gauge] = [
        Gauge(
            "repro_service_epoch",
            float(service.epoch),
            help="Epoch of the serving snapshot.",
        ),
        Gauge(
            "repro_service_info",
            1.0,
            labels={
                "index": service.index_name,
                "mode": "labeled" if service.labeled_mode else "plain",
                "backend": accel.backend_name(),
            },
            help="Serving identity (value is always 1).",
        ),
        Gauge(
            "repro_accel_info",
            1.0,
            labels=accel.backend_labels(),
            help="Acceleration backend identity (value is always 1).",
        ),
    ]
    if uptime_s is not None:
        gauges.append(
            Gauge(
                "repro_service_uptime_seconds",
                float(uptime_s),
                help="Seconds since the server started.",
            )
        )
    breaker = service.breaker.snapshot()
    gauges.append(
        Gauge(
            "repro_service_breaker_open",
            1.0 if breaker.get("state") != "closed" else 0.0,
            help="1 while the index circuit breaker is open or half-open.",
        )
    )
    gauges.append(
        Gauge(
            "repro_service_breaker_consecutive_failures",
            float(breaker.get("consecutive_failures", 0)),
            help="Consecutive protected-call failures.",
        )
    )
    cache = getattr(service, "_cache", None)
    if cache is not None:
        stats = cache.statistics()
        for stat in (
            "hits",
            "misses",
            "evictions",
            "size",
            "capacity",
        ):
            gauges.append(
                Gauge(
                    "repro_service_cache",
                    float(getattr(stats, stat)),
                    labels={"stat": stat},
                    help="Result cache state, by stat.",
                )
            )
    if admission is not None:
        snap = admission.snapshot()
        for stat, value in snap.items():
            if isinstance(value, (int, float)):
                gauges.append(
                    Gauge(
                        "repro_service_admission",
                        float(value),
                        labels={"stat": stat},
                        help="Admission controller state, by stat.",
                    )
                )
    if tracker is not None:
        for status in tracker.status()["objectives"]:
            objective = str(status["objective"])
            for window in ("fast", "slow"):
                gauges.append(
                    Gauge(
                        "repro_slo_burn_rate",
                        float(status[f"burn_{window}"]),
                        labels={"objective": objective, "window": window},
                        help="Observed value over threshold, per window.",
                    )
                )
            gauges.append(
                Gauge(
                    "repro_slo_breached",
                    1.0 if status["breached"] else 0.0,
                    labels={"objective": objective},
                    help="1 while the objective is in breach.",
                )
            )
    if auditor is not None:
        gauges.append(
            Gauge(
                "repro_slo_audit_queue_depth",
                float(auditor.queue_depth),
                help="Sampled queries awaiting oracle verification.",
            )
        )
    wal_status = getattr(service, "wal_status", None)
    wal_state = wal_status() if callable(wal_status) else None
    if wal_state is not None:
        for stat, value in wal_state.items():
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                gauges.append(
                    Gauge(
                        "repro_wal_state",
                        float(value),
                        labels={"stat": stat},
                        help="Write-ahead log state, by stat.",
                    )
                )
    return render_openmetrics(
        [service.metrics, global_registry()],
        gauges,
        const_labels={"index": service.index_name},
    )


# -- validation ----------------------------------------------------------

_SAMPLE = re.compile(
    r"""^
    (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)
    (?:\{(?P<labels>[^{}]*)\})?
    [ ]
    (?P<value>-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)|[+-]Inf|NaN)
    (?:[ ](?P<timestamp>-?\d+(?:\.\d+)?))?
    $""",
    re.VERBOSE,
)

_LABEL = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\\n]|\\["\\n])*)"$'
)

_TYPES = ("counter", "gauge", "histogram", "summary", "unknown", "info", "stateset")

_HISTOGRAM_SUFFIXES = ("_bucket", "_count", "_sum", "_created")
_SUMMARY_SUFFIXES = ("_count", "_sum", "_created", "")


def _split_labels(raw: str) -> list[str]:
    """Split a labelset body on commas outside quoted values."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in raw:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    parts.append("".join(current))
    return parts


def validate_openmetrics(text: str) -> dict[str, int]:
    """Strict line-format check; raises ``ValueError`` on any violation.

    Enforces the parts of the OpenMetrics spec a scraper trips over:
    one final ``# EOF`` line, valid metric-name and label grammar,
    ``# TYPE`` declared once per family and before its samples, counter
    samples suffixed ``_total``/``_created``, histogram samples limited
    to ``_bucket``/``_count``/``_sum``/``_created`` with ``le`` on every
    bucket and cumulative bucket counts non-decreasing per series.
    Returns ``{"families": N, "samples": M}`` on success.
    """
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must terminate with a '# EOF' line")
    if "# EOF" in lines[:-1]:
        raise ValueError("'# EOF' must appear exactly once, at the end")

    types: dict[str, str] = {}
    helps: set[str] = set()
    seen_samples: set[str] = set()
    sample_count = 0
    # (family, labelset-minus-le) -> last cumulative bucket value + le
    bucket_state: dict[tuple[str, str], tuple[float, float]] = {}

    def family_of(name: str) -> tuple[str, str]:
        """``(family, suffix)`` for a sample name, longest match wins."""
        candidates = [
            fam
            for fam in types
            if name == fam or name.startswith(fam + "_")
        ]
        if not candidates:
            raise ValueError(f"sample {name!r} precedes any # TYPE for it")
        fam = max(candidates, key=len)
        return fam, name[len(fam):]

    for lineno, line in enumerate(lines[:-1], start=1):
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            _, _, fam, kind = parts
            if not _NAME_OK.match(fam):
                raise ValueError(f"line {lineno}: bad family name {fam!r}")
            if kind not in _TYPES:
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            if fam in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {fam!r}")
            if any(s == fam or s.startswith(fam + "_") for s in seen_samples):
                raise ValueError(
                    f"line {lineno}: TYPE for {fam!r} after its samples"
                )
            types[fam] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_OK.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed HELP line {line!r}")
            if parts[2] in helps:
                raise ValueError(
                    f"line {lineno}: duplicate HELP for {parts[2]!r}"
                )
            helps.add(parts[2])
            continue
        if line.startswith("#"):
            raise ValueError(
                f"line {lineno}: OpenMetrics has no comments beyond "
                f"TYPE/HELP/UNIT/EOF: {line!r}"
            )
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels is not None:
            if raw_labels == "":
                raise ValueError(f"line {lineno}: empty labelset braces")
            for part in _split_labels(raw_labels):
                label_match = _LABEL.match(part)
                if label_match is None:
                    raise ValueError(
                        f"line {lineno}: malformed label {part!r}"
                    )
                key = label_match.group("key")
                if key in labels:
                    raise ValueError(
                        f"line {lineno}: duplicate label {key!r}"
                    )
                labels[key] = label_match.group("value")
        fam, suffix = family_of(name)
        kind = types[fam]
        if kind == "counter" and suffix not in ("_total", "_created"):
            raise ValueError(
                f"line {lineno}: counter sample {name!r} must end in "
                "_total or _created"
            )
        if kind == "gauge" and suffix != "":
            raise ValueError(
                f"line {lineno}: gauge sample {name!r} must match its family"
            )
        if kind == "histogram":
            if suffix not in _HISTOGRAM_SUFFIXES:
                raise ValueError(
                    f"line {lineno}: histogram sample {name!r} has "
                    f"invalid suffix {suffix!r}"
                )
            if suffix == "_bucket":
                if "le" not in labels:
                    raise ValueError(
                        f"line {lineno}: histogram bucket without 'le' label"
                    )
                le_raw = labels["le"]
                le = float("inf") if le_raw == "+Inf" else float(le_raw)
                series = ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
                )
                value = float(match.group("value"))
                prior = bucket_state.get((fam, series))
                if prior is not None:
                    prior_value, prior_le = prior
                    if le <= prior_le:
                        raise ValueError(
                            f"line {lineno}: bucket le={le_raw} out of order"
                        )
                    if value < prior_value:
                        raise ValueError(
                            f"line {lineno}: bucket counts must be "
                            f"cumulative (got {value} after {prior_value})"
                        )
                bucket_state[(fam, series)] = (value, le)
        seen_samples.add(name)
        sample_count += 1
    return {"families": len(types), "samples": sample_count}
