"""The ops view: the ``/slo`` JSON payload and the ``repro top`` frame.

One function builds the payload (:func:`build_slo_payload` — duck-typed
over the service so this module imports nothing from the serving tier),
one renders it as a fixed-width terminal frame
(:func:`render_dashboard` — pure string-in/string-out, so tests assert
on it without a TTY).  ``repro top`` in the CLI glues them to a live
server: fetch ``GET /slo``, render, clear, repeat.
"""

from __future__ import annotations

import json
import urllib.request

__all__ = ["build_slo_payload", "fetch_slo", "render_dashboard"]


def build_slo_payload(
    service,
    *,
    tracker=None,
    auditor=None,
    uptime_s: float | None = None,
    draining: bool = False,
    window_s: float = 300.0,
) -> dict[str, object]:
    """Everything ``repro top`` shows, as one JSON-safe dict.

    Per-route quantiles are *windowed* (last ``window_s`` seconds from
    the histogram sketch ring), not lifetime — the dashboard is about
    now, the cumulative view stays on ``/metrics``.
    """
    from repro import accel

    routes: dict[str, dict[str, float | int]] = {}
    for name, histogram in sorted(service.metrics.histograms().items()):
        prefix = "service.latency."
        if name.startswith(prefix):
            summary = histogram.window_summary(window_s)
            if summary["count"]:
                routes[name[len(prefix):]] = summary
    counters = service.metrics.counter_values()
    served = sum(
        value
        for name, value in counters.items()
        if name.startswith("service.queries.")
    )
    payload: dict[str, object] = {
        "epoch": service.epoch,
        "index": service.index_name,
        "index_params": service.index_params,
        "mode": "labeled" if service.labeled_mode else "plain",
        "backend": accel.backend_name(),
        "draining": draining,
        "window_s": window_s,
        "routes": routes,
        "queries_total": served,
        "unknowns_total": counters.get("service.unknowns", 0),
        "breaker": service.breaker.snapshot(),
        "slo": tracker.status() if tracker is not None else None,
        "audit": auditor.status() if auditor is not None else None,
    }
    if uptime_s is not None:
        payload["uptime_s"] = uptime_s
    return payload


def fetch_slo(base_url: str, timeout_s: float = 5.0) -> dict[str, object]:
    """GET ``<base_url>/slo`` and decode the payload."""
    url = base_url.rstrip("/") + "/slo"
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.load(response)


def _fmt_latency(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _fmt_burn(burn: float) -> str:
    return f"{burn:.2f}x"


def render_dashboard(payload: dict, width: int = 78) -> str:
    """One terminal frame of the SLO payload (pure; no ANSI codes).

    Sections: identity header, per-route windowed quantiles, SLO burn
    table, audit status.  Everything degrades gracefully when a section
    is absent (no tracker, no auditor, no traffic yet).
    """
    rule = "─" * width
    lines: list[str] = []
    state = "DRAINING" if payload.get("draining") else "SERVING"
    uptime = payload.get("uptime_s")
    uptime_text = f"  up {float(uptime):.0f}s" if uptime is not None else ""
    lines.append(rule)
    lines.append(
        f" repro top · {state} · epoch {payload.get('epoch', '?')} · "
        f"index {payload.get('index', '?')} · backend "
        f"{payload.get('backend', '?')} · {payload.get('mode', '?')} mode"
        f"{uptime_text}"
    )
    breaker = payload.get("breaker") or {}
    lines.append(
        f" queries {payload.get('queries_total', 0)} · unknowns "
        f"{payload.get('unknowns_total', 0)} · breaker "
        f"{breaker.get('state', '?')}"
    )
    lines.append(rule)

    routes = payload.get("routes") or {}
    window_s = payload.get("window_s", 0)
    lines.append(f" routes (last {window_s:g}s)")
    header = (
        f"   {'route':<16}{'count':>8}{'rate/s':>10}{'p50':>10}"
        f"{'p95':>10}{'p99':>10}{'max':>10}"
    )
    lines.append(header)
    if not routes:
        lines.append("   (no traffic in window)")
    for route, summary in sorted(routes.items()):
        lines.append(
            f"   {route:<16}{summary['count']:>8}"
            f"{summary['rate_per_s']:>10.1f}"
            f"{_fmt_latency(summary['p50_s']):>10}"
            f"{_fmt_latency(summary['p95_s']):>10}"
            f"{_fmt_latency(summary['p99_s']):>10}"
            f"{_fmt_latency(summary['max_s']):>10}"
        )
    lines.append(rule)

    slo = payload.get("slo")
    if slo:
        burning = slo.get("burning")
        lines.append(
            f" slo ({slo.get('fast_window_s', 0):g}s / "
            f"{slo.get('slow_window_s', 0):g}s windows) · "
            f"{'BURNING' if burning else 'ok'}"
        )
        lines.append(
            f"   {'objective':<24}{'observed':>12}{'burn 5m':>10}"
            f"{'burn 1h':>10}{'state':>10}"
        )
        for status in slo.get("objectives", []):
            observed = status.get("observed_fast", 0.0)
            observed_text = (
                _fmt_latency(float(observed))
                if status.get("kind") == "latency"
                else f"{float(observed) * 100:.2f}%"
            )
            lines.append(
                f"   {str(status.get('spec', status.get('objective'))):<24}"
                f"{observed_text:>12}"
                f"{_fmt_burn(float(status.get('burn_fast', 0.0))):>10}"
                f"{_fmt_burn(float(status.get('burn_slow', 0.0))):>10}"
                f"{'BREACH' if status.get('breached') else 'ok':>10}"
            )
    else:
        lines.append(" slo: no tracker attached")
    lines.append(rule)

    audit = payload.get("audit")
    if audit:
        mismatches = audit.get("mismatches", 0)
        verdict = "FAIL" if mismatches else "ok"
        lines.append(
            f" audit · rate {float(audit.get('sample_rate', 0)):g} · sampled "
            f"{audit.get('sampled', 0)} · checked {audit.get('checked', 0)} · "
            f"mismatches {mismatches} [{verdict}] · queued "
            f"{audit.get('queue_depth', 0)}"
        )
        for trace in audit.get("traces", []):
            lines.append(
                f"   MISMATCH {trace.get('source')}→{trace.get('target')} "
                f"epoch {trace.get('epoch')} route {trace.get('route')}: "
                f"served {trace.get('served')} oracle {trace.get('oracle')}"
            )
    else:
        lines.append(" audit: no auditor attached")
    lines.append(rule)
    return "\n".join(lines) + "\n"
