"""Shadow correctness auditing: replay served answers against the oracle.

An index bug that returns *wrong* booleans is invisible to every other
signal in the stack — latency, error rate, breaker state all stay
green.  The auditor closes that hole the way the test suite's
differential matrices do, but continuously and in production: it
samples a small fraction (default 0.1%) of served plain pair queries
and replays each against :func:`~repro.traversal.online.bfs_reachable`
**on the same epoch snapshot that served it**, so a concurrent update
batch can never manufacture a false alarm.

The serving hot path pays one RNG draw per exact answer
(:meth:`ShadowAuditor.offer`); sampled queries land in a bounded queue
(overflow is counted as ``slo.audit.dropped``, never blocks) and a
background thread — or a synchronous :meth:`ShadowAuditor.drain` in
tests and CI — does the BFS work.  Tallies land in the attached
registry as ``slo.audit.sampled`` / ``checked`` / ``mismatches`` /
``dropped``; **mismatches must stay 0**.  On a mismatch the auditor
captures a full trace (pair, epoch, route, served vs. oracle answer,
and the index's own ``explain`` rationale) into a bounded ring exposed
via :meth:`ShadowAuditor.status`, so the one repro that matters
survives to be read.
"""

from __future__ import annotations

import random
import threading
from collections import deque

from repro.obs.metrics import MetricsRegistry, global_registry
from repro.traversal.online import bfs_reachable

__all__ = ["ShadowAuditor"]


class ShadowAuditor:
    """Background sampler verifying served answers against BFS.

    ``sample_rate`` is the per-answer probability of enqueueing;
    ``max_queue`` bounds pending work (each entry pins its snapshot, so
    the bound also caps retained epochs); ``max_traces`` bounds kept
    mismatch records.  ``seed`` makes sampling deterministic for tests.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 0.001,
        metrics: MetricsRegistry | None = None,
        max_queue: int = 256,
        max_traces: int = 16,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.sample_rate = float(sample_rate)
        self._metrics = metrics if metrics is not None else global_registry()
        self._rng = random.Random(seed)
        self._max_queue = int(max_queue)
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._pending = threading.Event()
        self._traces: deque[dict[str, object]] = deque(maxlen=max_traces)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        for event in ("sampled", "checked", "mismatches", "dropped"):
            self._metrics.counter(f"slo.audit.{event}")

    # -- hot path --------------------------------------------------------
    def offer(
        self,
        snapshot,
        source: int,
        target: int,
        answer: bool,
        route: str,
    ) -> None:
        """Maybe sample one served exact answer (cheap: one RNG draw).

        Callers pass only plain (unconstrained) queries with boolean
        answers — UNKNOWNs assert nothing and are not auditable.
        """
        if self._rng.random() >= self.sample_rate:
            return
        with self._lock:
            if len(self._queue) >= self._max_queue:
                self._metrics.counter("slo.audit.dropped").increment()
                return
            self._queue.append((snapshot, source, target, answer, route))
        self._metrics.counter("slo.audit.sampled").increment()
        self._pending.set()

    # -- verification ----------------------------------------------------
    def drain(self) -> int:
        """Verify everything queued right now; returns the number checked.

        Synchronous and reentrant-safe — tests and the CI smoke call it
        directly instead of racing the background thread.
        """
        checked = 0
        while True:
            with self._lock:
                if not self._queue:
                    self._pending.clear()
                    return checked
                item = self._queue.popleft()
            self._check(*item)
            checked += 1

    def _check(
        self, snapshot, source: int, target: int, answer: bool, route: str
    ) -> None:
        oracle = bfs_reachable(snapshot.graph, source, target)
        self._metrics.counter("slo.audit.checked").increment()
        if bool(answer) == oracle:
            return
        self._metrics.counter("slo.audit.mismatches").increment()
        trace: dict[str, object] = {
            "source": source,
            "target": target,
            "epoch": snapshot.epoch,
            "route": route,
            "served": bool(answer),
            "oracle": oracle,
            "index": type(snapshot.plain).__name__,
        }
        try:
            explanation = snapshot.plain.explain(source, target)
            trace["explain"] = explanation.as_dict()
        except Exception as exc:  # noqa: BLE001 — the trace must survive
            trace["explain_error"] = f"{type(exc).__name__}: {exc}"
        with self._lock:
            self._traces.append(trace)

    # -- state -----------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Sampled queries awaiting verification."""
        with self._lock:
            return len(self._queue)

    @property
    def mismatches(self) -> int:
        """Total mismatches observed (must stay 0)."""
        return self._metrics.counter("slo.audit.mismatches").value

    def status(self) -> dict[str, object]:
        """Counters, queue depth and captured mismatch traces as a dict."""
        values = self._metrics.counter_values()
        with self._lock:
            depth = len(self._queue)
            traces = [dict(t) for t in self._traces]
        return {
            "sample_rate": self.sample_rate,
            "sampled": values.get("slo.audit.sampled", 0),
            "checked": values.get("slo.audit.checked", 0),
            "mismatches": values.get("slo.audit.mismatches", 0),
            "dropped": values.get("slo.audit.dropped", 0),
            "queue_depth": depth,
            "traces": traces,
        }

    # -- background thread -----------------------------------------------
    def start(self, poll_s: float = 0.25) -> threading.Thread:
        """Drain the queue on a daemon thread whenever work arrives."""
        if self._thread is not None and self._thread.is_alive():
            return self._thread
        self._stop.clear()

        def run() -> None:
            while not self._stop.is_set():
                self._pending.wait(poll_s)
                try:
                    self.drain()
                except Exception:  # noqa: BLE001 — the auditor must survive
                    pass

        self._thread = threading.Thread(
            target=run, name="shadow-auditor", daemon=True
        )
        self._thread.start()
        return self._thread

    def stop(self, timeout_s: float = 5.0) -> None:
        """Signal the thread to exit, drain the tail, and join."""
        self._stop.set()
        self._pending.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
        self.drain()

    def __repr__(self) -> str:
        return (
            f"ShadowAuditor(rate={self.sample_rate}, "
            f"queued={self.queue_depth}, mismatches={self.mismatches})"
        )
