"""A stdlib JSON-over-HTTP front door for the reachability service.

``ThreadingHTTPServer`` gives one thread per connection, which is
exactly the concurrency shape the engine is built for: every request
thread is a lock-free snapshot reader, and ``POST /update`` funnels into
the engine's single-writer path.

Routes
------
``GET /healthz``
    Pure liveness: ``{"status": "ok", "uptime_s": T}`` — answers 200
    as long as the process serves HTTP, even while draining.  Point
    restart-deciding probes here.
``GET /readyz``
    Readiness: 200 with ``{"status": "ok", "epoch", "index",
    "index_params", "mode", "backend", "uptime_s", "in_flight"}``
    while accepting traffic; 503 with ``"status": "draining"`` once a
    drain began.  Point load-balancer membership probes here.
``GET /reach?source=S&target=T``
    Plain reachability; answer plus epoch/route provenance.
``GET /lreach?source=S&target=T&constraint=C``
    Path-constrained reachability (labeled mode only).
``POST /reach/batch``
    Body ``{"pairs": [[S, T], ...]}``.  Answers the whole batch against
    one snapshot through the engine's amortised batch path; per-pair
    cache probes first, then one ``query_batch`` call for the misses.
``POST /update``
    Body ``{"ops": [{"kind": "insert", "source": 0, "target": 1,
    "label": "a"}, ...]}`` (``label`` only in labeled mode).  Applies
    the batch as one snapshot swap and returns the new epoch.
``POST /authz/write``
    Body ``{"namespace": N, "writes": ["s#rel@o", ...], "deletes":
    [...]}``.  Applies grants/revokes to the attached
    :class:`~repro.authz.store.AuthzStore` and returns the new epoch's
    zookie.
``POST /authz/check``
    Body ``{"namespace": N, "subject": S, "object": O}`` — or
    ``"objects": [O1, ...]`` for a batch of pair probes.  Optional
    ``"at_least"`` zookie; a snapshot older than it answers 409
    (``stale_zookie``) instead of stale data.
``POST /authz/expand``
    Body ``{"namespace": N, "entity": E, "direction": "objects" |
    "subjects"}`` (optional ``"type"`` prefix filter, ``"at_least"``
    zookie).  One set-enumeration call — the fast path behind
    list-objects / list-subjects — with the index route it took.
``GET /metrics``
    Flat text exposition; ``?format=json`` for the nested dict;
    ``?format=openmetrics`` for the OpenMetrics/Prometheus document
    (labelled families, histogram buckets, ``# EOF`` terminated — see
    :mod:`repro.slo.openmetrics`).
``GET /slo``
    The live ops payload: per-route windowed quantiles, SLO burn rates
    and breach states (when a tracker is attached), shadow-audit status
    (when an auditor is attached), epoch/index/backend identity.  The
    ``repro top`` dashboard renders exactly this.
``GET /explain?source=S&target=T``
    The routed decision path the query takes (cache probe, label probe,
    certificate, fallback) without bumping route counters.
``GET /debug/trace``
    Tracer statistics plus the ring buffer of finished root spans as
    JSON (empty unless tracing is enabled; ``?limit=N`` caps the spans).
``GET /advise``
    Run the index advisor against the live snapshot and telemetry and
    return the full :class:`~repro.advisor.advise.Advice` payload
    (``?budget_bytes=N`` to cap index size, ``?probe=0`` for the
    instant analytic-only answer).  When an
    :class:`~repro.service.advisor.AdvisorLoop` is attached,
    ``?cached=1`` serves the loop's latest advice and last action
    without recomputing.

Resilience
----------
Every query/update route passes through an
:class:`~repro.service.admission.AdmissionController`: beyond the
configured concurrency and queue bounds, requests are shed with ``503``
plus a ``Retry-After`` header instead of piling onto the thread pool.
(``/healthz`` and ``/metrics`` bypass admission — health checks must
answer precisely when the service is saturated.)

Per-request deadlines: ``?timeout_ms=N`` (query string), an
``X-Timeout-Ms`` header, or a ``"timeout_ms"`` JSON body field install a
:func:`~repro.resilience.deadline_scope` around evaluation; on expiry
the engine answers ``UNKNOWN`` (``"reachable": null``, route
``deadline_abort``) rather than hanging.  A server-wide
``default_timeout_ms`` applies when the request names none.

``service.handler`` is a chaos injection point, fired at dispatch.  Any
unexpected exception becomes a JSON ``500`` — never a raw traceback on
the wire.  :meth:`ServiceHTTPServer.drain` implements graceful
shutdown: stop admitting, wait out in-flight requests, stop serving.

Errors are JSON too: 400 for malformed requests, 404 for unknown paths,
503 (with ``Retry-After``) when shedding.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro import accel
from repro.advisor import advise
from repro.authz.store import AuthzStore, Zookie
from repro.authz.tuples import parse_tuples
from repro.errors import (
    ChaosInjectedError,
    DeadlineExceeded,
    InvalidVertexError,
    ReproError,
    ServiceOverloadedError,
)
from repro.obs.tracer import TRACER, span_to_dict
from repro.resilience.chaos import chaos_point
from repro.resilience.deadline import deadline_scope
from repro.service.admission import AdmissionController
from repro.service.advisor import AdvisorLoop
from repro.service.engine import QueryResult, ReachabilityService
from repro.slo import build_slo_payload, service_openmetrics
from repro.workloads.updates import EdgeOp, LabeledEdgeOp

__all__ = ["ServiceHTTPServer", "serve"]

#: Routes that bypass admission control (must answer under saturation —
#: health probes, scrapers and the ops dashboard are how an operator
#: *sees* the saturation).
UNGATED_PATHS = ("/healthz", "/readyz", "/metrics", "/slo")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ReachabilityService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ReachabilityService,
        quiet: bool = True,
        admission: AdmissionController | None = None,
        default_timeout_ms: float | None = None,
        advisor: "AdvisorLoop | None" = None,
        slo_tracker: object | None = None,
        auditor: object | None = None,
        authz: AuthzStore | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet
        self.admission = admission if admission is not None else AdmissionController()
        self.default_timeout_ms = default_timeout_ms
        self.advisor = advisor
        self.slo_tracker = slo_tracker
        self.auditor = auditor
        self.authz = authz
        self.started_at = time.monotonic()

    @property
    def uptime_s(self) -> float:
        """Seconds since this server object was constructed."""
        return time.monotonic() - self.started_at

    def start_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Graceful shutdown: shed new requests, wait out in-flight ones.

        Returns True when in-flight work finished inside ``timeout_s``;
        either way the server has stopped serving when this returns.
        """
        self.admission.start_draining()
        drained = self.admission.wait_drained(timeout_s)
        self.shutdown()
        self.server_close()  # close the listener: no half-open backlog
        return drained


def serve(
    service: ReachabilityService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    max_concurrent: int = 64,
    queue_depth: int = 128,
    queue_timeout_s: float = 0.25,
    default_timeout_ms: float | None = None,
    advisor: AdvisorLoop | None = None,
    slo_tracker: object | None = None,
    auditor: object | None = None,
    authz: AuthzStore | None = None,
) -> ServiceHTTPServer:
    """Bind a :class:`ServiceHTTPServer`; call ``serve_forever`` to run."""
    admission = AdmissionController(
        max_concurrent=max_concurrent,
        queue_depth=queue_depth,
        queue_timeout_s=queue_timeout_s,
    )
    return ServiceHTTPServer(
        (host, port),
        service,
        quiet=quiet,
        admission=admission,
        default_timeout_ms=default_timeout_ms,
        advisor=advisor,
        slo_tracker=slo_tracker,
        auditor=auditor,
        authz=authz,
    )


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: dict[str, object],
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self._send(
            status,
            json.dumps(payload).encode() + b"\n",
            "application/json; charset=utf-8",
            extra_headers,
        )

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _overloaded(self, exc: ServiceOverloadedError) -> None:
        retry_after = max(1, int(round(exc.retry_after_s)))
        self._send_json(
            503,
            {"error": str(exc), "retry_after_s": exc.retry_after_s},
            {"Retry-After": str(retry_after)},
        )

    def _params(self) -> dict[str, str]:
        query = parse_qs(urlsplit(self.path).query)
        return {key: values[-1] for key, values in query.items()}

    def _vertex(self, params: dict[str, str], name: str) -> int:
        try:
            return int(params[name])
        except KeyError:
            raise ValueError(f"missing parameter {name!r}") from None
        except ValueError:
            raise ValueError(f"parameter {name!r} must be an integer") from None

    def _query_payload(self, result: QueryResult) -> dict[str, object]:
        return {
            "reachable": result.answer,
            "status": result.status,
            "epoch": result.epoch,
            "route": result.route,
            "shared": result.shared,
        }

    def _check_known_vertices(self, pairs, batched: bool = False) -> None:
        """Reject unknown vertex ids up front with a typed 400.

        ``batched`` reports the zero-based pair ``position`` in the
        payload so callers can point at the offending pair.
        """
        n = self.server.service.acquire().graph.num_vertices
        for position, (source, target) in enumerate(pairs):
            for vertex in (source, target):
                if not 0 <= vertex < n:
                    raise InvalidVertexError(
                        vertex, n, position=position if batched else None
                    )

    def _request_timeout_ms(self) -> float | None:
        """The request's deadline budget: query param, header, or default."""
        raw = self._params().get("timeout_ms")
        if raw is None:
            raw = self.headers.get("X-Timeout-Ms")
        if raw is None:
            return self.server.default_timeout_ms
        try:
            timeout_ms = float(raw)
        except ValueError:
            raise ValueError("timeout_ms must be a number") from None
        if timeout_ms < 0:
            raise ValueError("timeout_ms must be >= 0")
        return timeout_ms

    # -- dispatch --------------------------------------------------------
    def _gated(self, fn) -> None:
        """Admission-controlled dispatch: shed with 503, never crash."""
        try:
            admission = self.server.admission.admit()
        except ServiceOverloadedError as exc:
            self._overloaded(exc)
            return
        with admission:
            self._safely(fn)

    def _safely(self, fn) -> None:
        """Run a route body; every failure becomes a typed JSON response."""
        try:
            chaos_point("service.handler")
            with deadline_scope(self._request_timeout_ms()):
                fn()
        except ServiceOverloadedError as exc:
            self._overloaded(exc)
        except DeadlineExceeded as exc:
            self._error(504, str(exc))
        except ChaosInjectedError as exc:
            self._error(500, f"injected fault: {exc}")
        except (ValueError, ReproError) as exc:
            # Typed library errors carry their own status and payload
            # shape; everything else renders as a plain 400.
            status = getattr(exc, "http_status", 400)
            as_payload = getattr(exc, "as_payload", None)
            payload = as_payload() if callable(as_payload) else {"error": str(exc)}
            headers = None
            retry_after_s = getattr(exc, "retry_after_s", None)
            if retry_after_s is not None:
                # Backpressure errors (WAL write backlog, etc.) tell
                # clients when to come back, like _overloaded does.
                headers = {"Retry-After": str(max(1, int(round(retry_after_s))))}
            self._send_json(status, payload, headers)
        except Exception as exc:  # noqa: BLE001 — last-resort JSON 500
            self._error(500, f"internal error: {type(exc).__name__}: {exc}")

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = urlsplit(self.path).path
        if path in UNGATED_PATHS:
            self._safely(lambda: self._route_get(path))
        else:
            self._gated(lambda: self._route_get(path))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = urlsplit(self.path).path
        self._gated(lambda: self._route_post(path))

    def _route_get(self, path: str) -> None:
        service = self.server.service
        if path == "/healthz":
            # Pure liveness: the process answers HTTP, nothing more.
            # Draining is a readiness concern — a restart probe that
            # kills a draining server would defeat graceful shutdown.
            self._send_json(
                200, {"status": "ok", "uptime_s": self.server.uptime_s}
            )
        elif path == "/readyz":
            admission = self.server.admission
            draining = admission.draining
            payload: dict[str, object] = {
                "status": "draining" if draining else "ok",
                "epoch": service.epoch,
                "index": service.index_name,
                "index_params": service.index_params,
                "mode": "labeled" if service.labeled_mode else "plain",
                "backend": accel.backend_name(),
                "uptime_s": self.server.uptime_s,
                "in_flight": admission.in_flight,
            }
            wal_status = service.wal_status()
            if wal_status is not None:
                payload["wal"] = wal_status
            self._send_json(503 if draining else 200, payload)
        elif path == "/slo":
            self._send_json(
                200,
                build_slo_payload(
                    service,
                    tracker=self.server.slo_tracker,
                    auditor=self.server.auditor,
                    uptime_s=self.server.uptime_s,
                    draining=self.server.admission.draining,
                ),
            )
        elif path == "/reach":
            params = self._params()
            source = self._vertex(params, "source")
            target = self._vertex(params, "target")
            self._check_known_vertices([(source, target)])
            result = service.reach_ex(source, target)
            self._send_json(200, self._query_payload(result))
        elif path == "/lreach":
            params = self._params()
            constraint = params.get("constraint")
            if constraint is None:
                raise ValueError("missing parameter 'constraint'")
            result = service.lreach_ex(
                self._vertex(params, "source"),
                self._vertex(params, "target"),
                constraint,
            )
            self._send_json(200, self._query_payload(result))
        elif path == "/metrics":
            fmt = self._params().get("format")
            if fmt == "json":
                self._send_json(200, service.metrics_dict())
            elif fmt == "openmetrics":
                self._send(
                    200,
                    service_openmetrics(
                        service,
                        tracker=self.server.slo_tracker,
                        auditor=self.server.auditor,
                        uptime_s=self.server.uptime_s,
                        admission=self.server.admission,
                    ).encode(),
                    "application/openmetrics-text; version=1.0.0; "
                    "charset=utf-8",
                )
            else:
                self._send(
                    200,
                    service.metrics_text().encode(),
                    "text/plain; charset=utf-8",
                )
        elif path == "/explain":
            params = self._params()
            explanation = service.explain(
                self._vertex(params, "source"), self._vertex(params, "target")
            )
            self._send_json(200, explanation.as_dict())
        elif path == "/advise":
            params = self._params()
            payload = {}
            loop = self.server.advisor
            if params.get("cached") in ("1", "true") and loop is not None:
                advice = loop.last_advice
                if advice is None:
                    raise ValueError("advisor loop has not produced advice yet")
                payload = advice.as_dict()
                payload["last_action"] = loop.last_action
            else:
                budget = None
                if "budget_bytes" in params:
                    try:
                        budget = int(params["budget_bytes"])
                    except ValueError:
                        raise ValueError(
                            "parameter 'budget_bytes' must be an integer"
                        ) from None
                probe = params.get("probe") not in ("0", "false")
                snap = service.acquire()
                advice = advise(
                    snap.graph,
                    metrics=service.metrics_dict(),
                    budget_bytes=budget,
                    probe=probe,
                )
                payload = advice.as_dict()
                payload["epoch"] = snap.epoch
            payload["serving"] = {
                "index": service.index_name,
                "index_params": service.index_params,
            }
            self._send_json(200, payload)
        elif path == "/debug/trace":
            params = self._params()
            spans = TRACER.finished()
            if "since_ms" in params:
                try:
                    since_ms = float(params["since_ms"])
                except ValueError:
                    raise ValueError(
                        "parameter 'since_ms' must be a number"
                    ) from None
                cutoff = time.time() - since_ms / 1000.0
                spans = [s for s in spans if s.start_unix_s >= cutoff]
            if "limit" in params:
                try:
                    limit = max(0, int(params["limit"]))
                except ValueError:
                    raise ValueError("parameter 'limit' must be an integer") from None
                spans = spans[-limit:] if limit else []
            self._send_json(
                200,
                {
                    "tracer": TRACER.statistics(),
                    "spans": [span_to_dict(span) for span in spans],
                },
            )
        else:
            self._error(404, f"unknown path {path!r}")

    def _route_post(self, path: str) -> None:
        service = self.server.service
        if path == "/update":
            body = self._json_body()
            ops = _parse_ops(body, labeled=service.labeled_mode)
            with deadline_scope(_body_timeout_ms(body)):
                epoch = service.apply_updates(ops)
            self._send_json(200, {"epoch": epoch, "applied": len(ops)})
        elif path == "/reach/batch":
            body = self._json_body()
            pairs = _parse_pairs(body)
            self._check_known_vertices(pairs, batched=True)
            with deadline_scope(_body_timeout_ms(body)):
                results = service.execute_batch(pairs)
            self._send_json(
                200,
                {
                    "epoch": results[0].epoch if results else service.epoch,
                    "count": len(results),
                    "results": [self._query_payload(r) for r in results],
                },
            )
        elif path == "/authz/write":
            store = self._authz_store()
            body = self._json_body()
            namespace = _authz_namespace(body)
            writes = parse_tuples(_string_list(body, "writes"))
            deletes = parse_tuples(_string_list(body, "deletes"))
            zookie = store.write(namespace, writes=writes, deletes=deletes)
            self._send_json(
                200,
                {
                    "namespace": namespace,
                    "epoch": zookie.epoch,
                    "zookie": zookie.encode(),
                    "applied": len(writes) + len(deletes),
                },
            )
        elif path == "/authz/check":
            store = self._authz_store()
            body = self._json_body()
            namespace = _authz_namespace(body)
            at_least = _authz_zookie(body)
            subject = _string_field(body, "subject")
            if "objects" in body:
                objects = _string_list(body, "objects")
                results = [
                    store.check(namespace, subject, obj, at_least=at_least)
                    for obj in objects
                ]
                self._send_json(
                    200,
                    {
                        "namespace": namespace,
                        "subject": subject,
                        "allowed": [r.allowed for r in results],
                        "zookie": results[-1].zookie.encode() if results else None,
                    },
                )
            else:
                result = store.check(
                    namespace, subject, _string_field(body, "object"), at_least=at_least
                )
                self._send_json(
                    200,
                    {
                        "namespace": namespace,
                        "allowed": result.allowed,
                        "zookie": result.zookie.encode(),
                    },
                )
        elif path == "/authz/expand":
            store = self._authz_store()
            body = self._json_body()
            namespace = _authz_namespace(body)
            direction = body.get("direction", "objects")
            if not isinstance(direction, str):
                raise ValueError("'direction' must be a string")
            result = store.expand(
                namespace,
                _string_field(body, "entity"),
                direction=direction,
                at_least=_authz_zookie(body),
            )
            names = result.names
            entity_type = body.get("type")
            if entity_type is not None:
                if not isinstance(entity_type, str):
                    raise ValueError("'type' must be a string")
                prefix = entity_type + ":"
                names = tuple(n for n in names if n.startswith(prefix))
            self._send_json(
                200,
                {
                    "namespace": namespace,
                    "entity": result.entity,
                    "direction": result.direction,
                    "names": list(names),
                    "count": len(names),
                    "route": result.route,
                    "zookie": result.zookie.encode(),
                },
            )
        else:
            self._error(404, f"unknown path {path!r}")

    def _authz_store(self) -> AuthzStore:
        store = self.server.authz
        if store is None:
            raise ValueError(
                "no authz store attached to this server (start with --authz)"
            )
        return store

    def _json_body(self) -> object:
        length = int(self.headers.get("Content-Length", "0"))
        try:
            return json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from None


def _body_timeout_ms(body: object) -> float | None:
    """The ``"timeout_ms"`` JSON body field, validated (None when absent).

    Installed as a *nested* deadline scope: the tighter of the body field
    and any header/query/default budget wins.
    """
    if not isinstance(body, dict) or "timeout_ms" not in body:
        return None
    raw = body["timeout_ms"]
    if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw < 0:
        raise ValueError("timeout_ms must be a non-negative number")
    return float(raw)


def _string_field(body: object, name: str) -> str:
    if not isinstance(body, dict) or not isinstance(body.get(name), str):
        raise ValueError(f"body needs a string {name!r} field")
    return body[name]


def _string_list(body: object, name: str) -> list[str]:
    if not isinstance(body, dict):
        raise ValueError("body must be a JSON object")
    raw = body.get(name, [])
    if not isinstance(raw, list) or not all(isinstance(x, str) for x in raw):
        raise ValueError(f"{name!r} must be a list of strings")
    return raw


def _authz_namespace(body: object) -> str:
    return _string_field(body, "namespace")


def _authz_zookie(body: object) -> Zookie | None:
    """The optional ``"at_least"`` zookie of an authz read body."""
    if not isinstance(body, dict) or "at_least" not in body:
        return None
    return Zookie.decode(body["at_least"])


def _parse_pairs(body: object) -> list[tuple[int, int]]:
    if not isinstance(body, dict) or not isinstance(body.get("pairs"), list):
        raise ValueError('body must be {"pairs": [[source, target], ...]}')
    pairs: list[tuple[int, int]] = []
    for position, raw in enumerate(body["pairs"]):
        if not isinstance(raw, (list, tuple)) or len(raw) != 2:
            raise ValueError(f"pairs[{position}] must be a [source, target] pair")
        try:
            pairs.append((int(raw[0]), int(raw[1])))
        except (TypeError, ValueError):
            raise ValueError(
                f"pairs[{position}] needs integer source and target"
            ) from None
    return pairs


def _parse_ops(body: object, labeled: bool) -> list[EdgeOp | LabeledEdgeOp]:
    if not isinstance(body, dict) or not isinstance(body.get("ops"), list):
        raise ValueError('body must be {"ops": [...]}')
    ops: list[EdgeOp | LabeledEdgeOp] = []
    for position, raw in enumerate(body["ops"]):
        if not isinstance(raw, dict):
            raise ValueError(f"ops[{position}] must be an object")
        kind = raw.get("kind")
        if kind not in ("insert", "delete"):
            raise ValueError(f"ops[{position}].kind must be 'insert' or 'delete'")
        try:
            source = int(raw["source"])
            target = int(raw["target"])
        except (KeyError, TypeError, ValueError):
            raise ValueError(
                f"ops[{position}] needs integer 'source' and 'target'"
            ) from None
        if labeled:
            label = raw.get("label")
            if not isinstance(label, str):
                raise ValueError(f"ops[{position}] needs a string 'label'")
            ops.append(LabeledEdgeOp(kind, source, target, label))
        else:
            ops.append(EdgeOp(kind, source, target))
    return ops
