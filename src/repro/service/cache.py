"""Epoch-tagged LRU result cache for the serving tier.

Reachability answers are tiny (one bit) and workloads are skewed — the
Wikidata query-log study behind :mod:`repro.workloads.querylog` found
heavy repetition of identical property paths — so memoising answers in
front of the index is the cheapest speedup the serving tier has.

Correctness under concurrent updates comes from **epoch tagging**: every
entry records the snapshot epoch it was computed against, and a lookup
only hits when the caller's epoch matches the entry's.  A reader holding
an old snapshot may still be served an old-epoch entry — that *is*
snapshot isolation — while a reader on the new epoch can never see a
stale answer, even in the race window between a snapshot swap and the
writer's cache sweep.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStatistics", "ResultCache", "MISS"]


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached False."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISS"


MISS = _Miss()


@dataclass(frozen=True)
class CacheStatistics:
    """A point-in-time copy of the cache counters."""

    hits: int
    misses: int
    evictions: int
    invalidated_entries: int
    invalidation_cycles: int
    size: int
    capacity: int

    def hit_rate(self) -> float:
        """hits / (hits + misses), 0.0 when no lookups happened."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded LRU of ``key -> (epoch, value)`` with accounting.

    ``get``/``put`` take the caller's snapshot epoch explicitly; an
    entry written at another epoch is treated as a miss (and dropped on
    sight, since the epoch it belongs to is unreachable once a newer
    one exists under the single-writer discipline).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[object, tuple[int, object]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidated_entries = 0
        self._invalidation_cycles = 0

    def get(self, key: object, epoch: int) -> object:
        """The cached value for ``key`` at ``epoch``, or :data:`MISS`."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return MISS
            entry_epoch, value = entry
            if entry_epoch != epoch:
                del self._entries[key]
                self._invalidated_entries += 1
                self._misses += 1
                return MISS
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: object, epoch: int, value: object) -> None:
        """Remember ``value`` for ``key`` as computed at ``epoch``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (epoch, value)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate_all(self) -> int:
        """Drop every entry (called on snapshot swap); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._invalidated_entries += dropped
            self._invalidation_cycles += 1
            return dropped

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        """Maximum number of entries held."""
        return self._capacity

    def statistics(self) -> CacheStatistics:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStatistics(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidated_entries=self._invalidated_entries,
                invalidation_cycles=self._invalidation_cycles,
                size=len(self._entries),
                capacity=self._capacity,
            )

    def __repr__(self) -> str:
        stats = self.statistics()
        return (
            f"ResultCache(size={stats.size}/{stats.capacity}, "
            f"hits={stats.hits}, misses={stats.misses})"
        )
