"""Compatibility shim: the metrics primitives moved to :mod:`repro.obs`.

The serving tier grew these first; once the index core and the GDBMS
planner needed the same counters and histograms, the implementation was
promoted to the cross-cutting :mod:`repro.obs.metrics` layer.  Existing
imports (``from repro.service.metrics import MetricsRegistry``) keep
working through this re-export.
"""

from repro.obs.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    default_latency_buckets,
    global_registry,
)

__all__ = [
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "default_latency_buckets",
    "global_registry",
]
