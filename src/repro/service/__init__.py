"""The serving tier: concurrent queries over snapshot-isolated indexes.

:class:`ReachabilityService` answers plain and path-constrained
reachability from many threads while a writer applies update batches —
readers see immutable epoch-tagged snapshots, never torn state.  The
supporting cast: an epoch-tagged LRU result cache, an in-flight request
coalescer, fixed-bucket latency metrics, and a stdlib JSON-over-HTTP
server (:mod:`repro.service.server`).

Resilience (:mod:`repro.resilience` integration): queries carry
three-valued answers (``QueryResult.status`` is TRUE/FALSE/UNKNOWN),
an :class:`AdmissionController` bounds concurrent requests and sheds
the overflow with 503 + ``Retry-After``, and per-request deadlines
degrade to typed UNKNOWNs instead of hanging.

Online re-optimization (:mod:`repro.advisor` integration): an
:class:`AdvisorLoop` watches the service's telemetry, re-runs the index
advisor when the workload or graph drifts, and swaps the recommended
index in live via epoch-conditional adoption.

Production telemetry (:mod:`repro.slo` integration): an
:class:`~repro.slo.SLOTracker` turns the per-route latency sketches and
counters into burn-rate objectives that trip the breaker pre-emptively
and feed the advisor; a :class:`~repro.slo.ShadowAuditor` attached via
:meth:`ReachabilityService.attach_auditor` replays sampled answers
against the BFS oracle; ``/metrics?format=openmetrics`` and ``/slo``
expose it all.
"""

from repro.service.admission import AdmissionController
from repro.service.advisor import AdvisorLoop
from repro.service.batching import QueryCoalescer, dedupe
from repro.service.cache import MISS, CacheStatistics, ResultCache
from repro.service.engine import (
    DEGRADED_ROUTES,
    ROUTES,
    QueryResult,
    ReachabilityService,
    Snapshot,
)
from repro.service.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    default_latency_buckets,
)

__all__ = [
    "AdmissionController",
    "AdvisorLoop",
    "DEGRADED_ROUTES",
    "ROUTES",
    "QueryCoalescer",
    "dedupe",
    "MISS",
    "CacheStatistics",
    "ResultCache",
    "QueryResult",
    "ReachabilityService",
    "Snapshot",
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "default_latency_buckets",
]
