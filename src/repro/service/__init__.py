"""The serving tier: concurrent queries over snapshot-isolated indexes.

:class:`ReachabilityService` answers plain and path-constrained
reachability from many threads while a writer applies update batches —
readers see immutable epoch-tagged snapshots, never torn state.  The
supporting cast: an epoch-tagged LRU result cache, an in-flight request
coalescer, fixed-bucket latency metrics, and a stdlib JSON-over-HTTP
server (:mod:`repro.service.server`).
"""

from repro.service.batching import QueryCoalescer, dedupe
from repro.service.cache import MISS, CacheStatistics, ResultCache
from repro.service.engine import QueryResult, ReachabilityService, Snapshot
from repro.service.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    default_latency_buckets,
)

__all__ = [
    "QueryCoalescer",
    "dedupe",
    "MISS",
    "CacheStatistics",
    "ResultCache",
    "QueryResult",
    "ReachabilityService",
    "Snapshot",
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "default_latency_buckets",
]
