"""Request coalescing and batch deduplication.

Under skewed concurrent traffic, many threads ask the same ``(source,
target, constraint)`` at the same time.  Evaluating each copy wastes
index probes; the coalescer lets the first arrival (the *leader*)
evaluate while identical in-flight requests (*followers*) block on an
event and share the leader's result.  Because every result carries the
epoch of the snapshot it was computed against, sharing is safe under
snapshot isolation: followers receive an answer that was exact at a
well-defined epoch.

The same idea applies within one explicit batch: `dedupe` collapses a
request list to its unique keys so a batch is evaluated once per
distinct query against a single snapshot acquisition.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from typing import TypeVar

__all__ = ["QueryCoalescer", "dedupe"]

T = TypeVar("T")
K = TypeVar("K")


class _InFlight:
    __slots__ = ("done", "error", "result")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: object = None
        self.error: BaseException | None = None


class QueryCoalescer:
    """Deduplicate identical in-flight evaluations across threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[object, _InFlight] = {}
        self._coalesced = 0
        self._led = 0

    def run(self, key: object, evaluate: Callable[[], T]) -> tuple[T, bool]:
        """Evaluate ``key`` once across concurrent callers.

        Returns ``(result, shared)`` where ``shared`` is True when this
        caller piggybacked on another thread's in-flight evaluation.  A
        leader's exception propagates to every follower of that flight.
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                self._coalesced += 1
                leader = False
            else:
                entry = _InFlight()
                self._inflight[key] = entry
                self._led += 1
                leader = True
        if not leader:  # follower: wait for the leader's result
            entry.done.wait()
            if entry.error is not None:
                raise entry.error
            return entry.result, True  # type: ignore[return-value]
        try:
            entry.result = evaluate()
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            entry.done.set()
        return entry.result, False

    @property
    def coalesced(self) -> int:
        """How many requests were answered by piggybacking."""
        return self._coalesced

    @property
    def led(self) -> int:
        """How many requests were evaluated as flight leaders."""
        return self._led

    def __repr__(self) -> str:
        return f"QueryCoalescer(led={self._led}, coalesced={self._coalesced})"


def dedupe(keys: Sequence[K]) -> tuple[list[K], list[int]]:
    """Collapse a batch to unique keys.

    Returns ``(unique, back_refs)`` where ``unique`` preserves first-seen
    order and ``back_refs[i]`` is the position in ``unique`` answering
    ``keys[i]`` — evaluate ``unique`` once, then fan results back out.
    """
    unique: list[K] = []
    positions: dict[K, int] = {}
    back_refs: list[int] = []
    for key in keys:
        slot = positions.get(key)
        if slot is None:
            slot = len(unique)
            positions[key] = slot
            unique.append(key)
        back_refs.append(slot)
    return unique, back_refs
