"""Online re-optimization: the advisor running inside the service.

The offline :func:`repro.advisor.advise` answers "which index should I
build for this graph and workload?" once.  :class:`AdvisorLoop` asks it
*continually*: a background thread watches the service's own telemetry
(route mix, query volume, applied updates) and, when the workload
drifts or the graph changes, re-runs the advisor against the live
snapshot and adopts its pick through
:meth:`~repro.service.engine.ReachabilityService.adopt_index`.

The swap is built for safety, not speed:

* the candidate index is built **off** the writer lock, over the
  current snapshot's graph — published snapshot graphs are immutable
  (writers always copy), so the build races with nothing;
* adoption is epoch-conditional: if an update batch swapped the
  snapshot while the build ran, the now-stale index is discarded
  (``service.advisor.stale_builds``) and the loop retries next tick;
* readers never wait — they keep resolving queries against whichever
  snapshot they already hold, and the adoption itself is the same
  atomic snapshot replacement every update batch performs.

Every decision is counted under ``service.advisor.*`` so ``/metrics``
shows the loop's behaviour, and the latest :class:`Advice` is kept for
the ``/advise`` endpoint to serve without recomputation.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence

from repro.advisor import Advice, advise
from repro.service.engine import ReachabilityService

__all__ = ["AdvisorLoop"]


def _route_counts(metrics: Mapping[str, object]) -> dict[str, int]:
    service = metrics.get("service")
    if not isinstance(service, Mapping):
        return {}
    queries = service.get("queries")
    if not isinstance(queries, Mapping):
        return {}
    return {
        str(route): int(count)
        for route, count in queries.items()
        if isinstance(count, (int, float))
    }


def _updates_applied(metrics: Mapping[str, object]) -> int:
    service = metrics.get("service")
    if isinstance(service, Mapping):
        value = service.get("updates_applied")
        if isinstance(value, (int, float)):
            return int(value)
    return 0


class AdvisorLoop:
    """Re-advise a running service when its telemetry drifts.

    ``tick()`` runs one observe→decide→(build→swap) cycle and returns a
    summary dict (``action`` is one of ``"adopted"``, ``"kept"``,
    ``"skipped"``, ``"stale"``, ``"error"``); ``start()`` runs ticks on
    a daemon thread every ``interval_s`` until ``stop()``.

    Drift triggers (any one re-advises; the first tick always does):

    * graph drift — ``service.updates_applied`` moved since the last
      decision;
    * workload drift — at least ``min_queries`` new queries arrived
      *and* the normalised route mix (cache / plain_index / traversal /
      degraded shares) moved by more than ``drift_threshold`` in L1
      distance;
    * SLO burn — an attached :class:`~repro.slo.SLOTracker` reports a
      breached objective (``slo_tracker=``): when latency or error-rate
      burn says the current index stopped meeting its objectives,
      re-advising immediately beats waiting for the route mix to move.
    """

    def __init__(
        self,
        service: ReachabilityService,
        *,
        interval_s: float = 30.0,
        budget_bytes: int | None = None,
        candidates: Sequence[str] | None = None,
        probe: bool = True,
        min_queries: int = 100,
        drift_threshold: float = 0.2,
        seed: int = 0,
        slo_tracker: object | None = None,
    ) -> None:
        self._service = service
        self._interval_s = interval_s
        self._budget_bytes = budget_bytes
        self._candidates = tuple(candidates) if candidates else None
        self._probe = probe
        self._min_queries = min_queries
        self._drift_threshold = drift_threshold
        self._seed = seed
        self._slo_tracker = slo_tracker
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()  # serialises concurrent tick() calls
        self._baseline_routes: dict[str, int] | None = None
        self._baseline_updates = 0
        self._last_advice: Advice | None = None
        self._last_action: dict[str, object] | None = None

    # -- observability ---------------------------------------------------
    @property
    def last_advice(self) -> Advice | None:
        """The most recent Advice this loop computed (None before any)."""
        return self._last_advice

    @property
    def last_action(self) -> dict[str, object] | None:
        """Summary of the most recent tick."""
        return self._last_action

    # -- drift detection -------------------------------------------------
    def _drifted(self, metrics: Mapping[str, object]) -> tuple[bool, str]:
        if self._baseline_routes is None:
            return True, "first tick"
        tracker = self._slo_tracker
        if tracker is not None and tracker.burning():
            breached = ", ".join(tracker.breached_objectives()) or "objectives"
            return True, f"SLO burn: {breached}"
        updates = _updates_applied(metrics)
        if updates != self._baseline_updates:
            return True, f"graph drift: {updates - self._baseline_updates} updates applied"
        now = _route_counts(metrics)
        new_queries = sum(now.values()) - sum(self._baseline_routes.values())
        if new_queries < self._min_queries:
            return False, f"only {new_queries} new queries (< {self._min_queries})"
        distance = self._route_mix_distance(self._baseline_routes, now)
        if distance > self._drift_threshold:
            return True, f"route-mix drift {distance:.2f} > {self._drift_threshold}"
        return False, f"route mix stable (drift {distance:.2f})"

    @staticmethod
    def _route_mix_distance(before: dict[str, int], after: dict[str, int]) -> float:
        """L1 distance between normalised route distributions, on the
        *new* traffic vs the old mix (what changed, not what accumulated)."""
        delta = {
            route: max(0, after.get(route, 0) - before.get(route, 0))
            for route in set(before) | set(after)
        }
        new_total = sum(delta.values())
        old_total = sum(before.values())
        if new_total == 0 or old_total == 0:
            return 0.0
        return sum(
            abs(delta.get(r, 0) / new_total - before.get(r, 0) / old_total)
            for r in set(before) | set(delta)
        )

    def _rebase(self, metrics: Mapping[str, object]) -> None:
        self._baseline_routes = _route_counts(metrics)
        self._baseline_updates = _updates_applied(metrics)

    # -- the cycle -------------------------------------------------------
    def tick(self) -> dict[str, object]:
        """One observe→decide→(build→swap) cycle; never raises."""
        with self._lock:
            counters = self._service.metrics
            counters.counter("service.advisor.ticks").increment()
            try:
                summary = self._tick_locked()
            except Exception as exc:  # noqa: BLE001 — the loop must survive
                counters.counter("service.advisor.errors").increment()
                summary = {"action": "error", "reason": f"{type(exc).__name__}: {exc}"}
            self._last_action = summary
            return summary

    def _tick_locked(self) -> dict[str, object]:
        service = self._service
        metrics = service.metrics_dict()
        drifted, reason = self._drifted(metrics)
        if not drifted:
            service.metrics.counter("service.advisor.skipped").increment()
            return {"action": "skipped", "reason": reason}
        snap = service.acquire()
        advice = advise(
            snap.graph,
            metrics=metrics,
            budget_bytes=self._budget_bytes,
            candidates=self._candidates,
            probe=self._probe,
            seed=self._seed,
        )
        self._last_advice = advice
        pick = advice.recommended
        current = (service.index_name, service.index_params)
        if (pick.family, pick.index_params) == current:
            self._rebase(metrics)
            service.metrics.counter("service.advisor.kept").increment()
            return {
                "action": "kept",
                "reason": reason,
                "family": pick.family,
                "epoch": snap.epoch,
            }
        # Build off the writer lock over the immutable snapshot graph;
        # adopt only if the epoch has not moved underneath the build.
        index = pick.build(snap.graph)
        epoch = service.adopt_index(
            pick.family,
            pick.index_params,
            prebuilt=index,
            expected_epoch=snap.epoch,
        )
        if epoch is None:
            return {
                "action": "stale",
                "reason": f"epoch moved past {snap.epoch} during build",
                "family": pick.family,
            }
        self._rebase(metrics)
        return {
            "action": "adopted",
            "reason": reason,
            "family": pick.family,
            "index_params": dict(pick.index_params),
            "epoch": epoch,
        }

    # -- background thread -----------------------------------------------
    def start(self) -> threading.Thread:
        """Run :meth:`tick` every ``interval_s`` on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return self._thread
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="advisor-loop", daemon=True
        )
        self._thread.start()
        return self._thread

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            self.tick()

    def stop(self, timeout_s: float = 5.0) -> None:
        """Signal the loop to exit and join its thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
