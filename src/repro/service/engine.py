"""A concurrent reachability query service with snapshot isolation.

This is the serving half of the survey's §5 GDBMS vision: the indexes of
§3/§4 answer queries in microseconds, but a system that "serves heavy
traffic" must keep answering *while the graph changes*.  The engine
separates the two concerns with copy-on-write snapshots:

* **Readers** load the current :class:`Snapshot` — an immutable
  ``(graph, index, epoch)`` triple — with a single atomic attribute
  read and answer against it lock-free.  A reader keeps its snapshot
  for the duration of one query (or one batch), so its answers are
  exact with respect to a well-defined epoch even mid-update.
* **A single writer** applies a batch of edge updates from
  :mod:`repro.workloads.updates` to a *copy* of the current graph,
  produces a fresh index — rebuilt from scratch, or incrementally
  patched through the §3.2 dynamic maintenance API (DAGGER, TC, TOL,
  DLCR, …) on a deep copy — and atomically swaps the new snapshot in.
  Old snapshots survive as long as some reader holds them; garbage
  collection retires them.

In front of the index sits an epoch-tagged LRU result cache
(:mod:`repro.service.cache`) and an in-flight request coalescer
(:mod:`repro.service.batching`); every answer is tallied per route in a
:class:`~repro.service.metrics.MetricsRegistry`.  Constraint routing
reuses :func:`repro.gdbms.planner.classify_constraint` — the planner's
§5 dispatch decision is the service's routing brain.
"""

from __future__ import annotations

import copy
import logging
import random
import threading
import time
from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import dataclass

from repro import accel
from repro.core.base import (
    Explanation,
    LabelConstrainedIndex,
    ReachabilityIndex,
    TriState,
)
from repro.core.condensed import CondensedIndex
from repro.core.registry import labeled_index as labeled_index_cls
from repro.core.registry import plain_index as plain_index_cls
from repro.errors import (
    DeadlineExceeded,
    GraphError,
    QueryError,
    ServiceError,
    UnsupportedOperationError,
)
from repro.gdbms.planner import classify_constraint
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.graphs.topo import is_dag
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.tracer import TRACER
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.chaos import chaos_point
from repro.service.batching import QueryCoalescer, dedupe
from repro.service.cache import MISS, ResultCache
from repro.traversal.online import bfs_reachable
from repro.traversal.rpq import rpq_reachable
from repro.workloads.updates import EdgeOp, LabeledEdgeOp

_LOG = logging.getLogger("repro.service.engine")

__all__ = [
    "DEGRADED_ROUTES",
    "ROUTES",
    "QueryResult",
    "ReachabilityService",
    "Snapshot",
]

ROUTES = ("cache", "plain_index", "labeled_index", "traversal")

#: Routes a query lands on when the service gives up on an exact answer:
#: ``deadline_abort`` (the request's budget expired mid-evaluation) and
#: ``degraded`` (the index circuit breaker is open, or the index raised,
#: and only a bounded label probe was attempted).  Both carry a
#: three-valued answer — ``None`` means UNKNOWN, never a guessed bool.
DEGRADED_ROUTES = ("deadline_abort", "degraded")

#: Bucket bounds for the batch-size histogram (pairs per request).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                      512.0, 1024.0, 2048.0, 4096.0)


@dataclass(frozen=True)
class Snapshot:
    """One immutable epoch of the service: graph(s) plus built index(es).

    Nothing in a snapshot is mutated after the constructor returns; the
    writer always derives the next epoch from copies.
    """

    epoch: int
    graph: DiGraph
    plain: ReachabilityIndex
    labeled_graph: LabeledDiGraph | None = None
    labeled: LabelConstrainedIndex | None = None

    def __repr__(self) -> str:
        return (
            f"Snapshot(epoch={self.epoch}, |V|={self.graph.num_vertices}, "
            f"|E|={self.graph.num_edges})"
        )


@dataclass(frozen=True)
class QueryResult:
    """One answered query: the three-valued answer plus its provenance.

    ``answer`` is ``True`` / ``False`` for exact answers and ``None``
    for UNKNOWN — the service *never* downgrades to a guessed boolean.
    UNKNOWN appears only on the degraded routes (``deadline_abort``,
    ``degraded``); with no deadline set and a healthy index every
    answer is exact, same as before the resilience layer existed.
    """

    answer: bool | None
    epoch: int
    route: str  # ROUTES + DEGRADED_ROUTES
    shared: bool = False  # True when coalesced onto another thread's flight

    @property
    def status(self) -> str:
        """``"TRUE"`` / ``"FALSE"`` / ``"UNKNOWN"`` — the wire form."""
        if self.answer is None:
            return "UNKNOWN"
        return "TRUE" if self.answer else "FALSE"


class ReachabilityService:
    """Thread-safe reachability serving over any registered index.

    Construct over a :class:`DiGraph` (plain mode: :meth:`reach` only)
    or a :class:`LabeledDiGraph` (labeled mode: :meth:`reach` answers
    through a plain index over the label-forgetting projection,
    :meth:`lreach` routes alternation constraints to the labeled index
    and everything else to automaton-guided traversal).

    ``index_params`` forwards extra keyword arguments to the plain
    family's ``build`` on every (re)construction — e.g.
    ``index="Sharded", index_params={"num_shards": 4}`` serves a
    partitioned index with no other change.

    ``rebuild="always"`` forces full index reconstruction on every
    update batch; the default ``"auto"`` patches dynamic indexes
    incrementally on a deep copy and falls back to rebuilding when the
    index family does not support the operation (§3.2's Table 1
    "dynamic" column decides).
    """

    def __init__(
        self,
        graph: DiGraph | LabeledDiGraph,
        *,
        index: str = "PLL",
        index_params: dict[str, object] | None = None,
        labeled_index: str | None = "DLCR",
        cache_capacity: int | None = 4096,
        coalesce: bool = True,
        rebuild: str = "auto",
        metrics: MetricsRegistry | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 5.0,
        patch_audit_pairs: int = 8,
    ) -> None:
        if rebuild not in ("auto", "always"):
            raise ServiceError(f"rebuild must be 'auto' or 'always', got {rebuild!r}")
        if patch_audit_pairs < 0:
            raise ServiceError(
                f"patch_audit_pairs must be >= 0, got {patch_audit_pairs}"
            )
        self._plain_name = index
        self._index_params = dict(index_params or {})
        self._labeled_name = labeled_index
        self._rebuild_policy = rebuild
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._cache = (
            ResultCache(cache_capacity) if cache_capacity else None
        )
        self._coalescer = QueryCoalescer() if coalesce else None
        self._writer_lock = threading.Lock()
        self._breaker = CircuitBreaker(
            name=f"index:{index}",
            failure_threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
        )
        self._auditor = None  # attach_auditor: shadow correctness sampling
        self._patch_audit_pairs = int(patch_audit_pairs)
        self._wal = None  # attach_wal: durable append-before-swap
        self._wal_applied_lsn: int | None = None
        for route in ROUTES + DEGRADED_ROUTES:
            self._metrics.counter(f"service.queries.{route}")
            self._metrics.histogram(f"service.latency.{route}")
        self._metrics.counter("service.unknowns")
        self._metrics.counter("service.batch.requests")
        self._metrics.counter("service.batch.pairs")
        self._metrics.counter("service.batch.cache_hits")
        self._metrics.counter("service.batch.computed")
        self._metrics.histogram("service.batch.size", BATCH_SIZE_BUCKETS)
        self._metrics.histogram("service.batch.latency")
        self._metrics.counter("service.swaps")
        self._metrics.counter("service.updates_applied")
        self._metrics.counter("service.rebuilds")
        self._metrics.counter("service.patches")
        self._metrics.counter("service.patch_audit.passed")
        self._metrics.counter("service.patch_audit.failed")
        self._metrics.counter("service.advisor.ticks")
        self._metrics.counter("service.advisor.adoptions")
        self._metrics.counter("service.advisor.kept")
        self._metrics.counter("service.advisor.skipped")
        self._metrics.counter("service.advisor.stale_builds")
        self._metrics.counter("service.advisor.errors")
        if isinstance(graph, LabeledDiGraph):
            self._labeled_mode = True
            self._snapshot = self._labeled_snapshot(epoch=0, labeled=graph.copy())
        elif isinstance(graph, DiGraph):
            self._labeled_mode = False
            working = graph.copy()
            self._snapshot = Snapshot(
                epoch=0, graph=working, plain=self._build_plain(working)
            )
        else:
            raise ServiceError(
                f"service needs a DiGraph or LabeledDiGraph, got {type(graph).__name__}"
            )

    # -- snapshot construction -------------------------------------------
    def _build_plain(
        self,
        graph: DiGraph,
        name: str | None = None,
        params: dict[str, object] | None = None,
    ) -> ReachabilityIndex:
        cls = plain_index_cls(name if name is not None else self._plain_name)
        params = self._index_params if params is None else params
        if cls.metadata.input_kind == "DAG" and not is_dag(graph):
            return CondensedIndex.build(graph, inner=cls, **params)
        return cls.build(graph, **params)

    def _labeled_snapshot(self, epoch: int, labeled: LabeledDiGraph) -> Snapshot:
        """A fresh fully-rebuilt snapshot over ``labeled`` (writer-owned)."""
        plain_view = labeled.to_plain()
        constrained = None
        if self._labeled_name is not None:
            constrained = labeled_index_cls(self._labeled_name).build(labeled)
        return Snapshot(
            epoch=epoch,
            graph=plain_view,
            plain=self._build_plain(plain_view),
            labeled_graph=labeled,
            labeled=constrained,
        )

    # -- reader API ------------------------------------------------------
    def acquire(self) -> Snapshot:
        """The current snapshot (atomic read; hold it as long as needed)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        """Epoch of the current snapshot."""
        return self._snapshot.epoch

    @property
    def labeled_mode(self) -> bool:
        """True when constructed over a labeled graph."""
        return self._labeled_mode

    @property
    def index_name(self) -> str:
        """The plain index family currently serving (may change via
        :meth:`adopt_index`)."""
        return self._plain_name

    @property
    def index_params(self) -> dict[str, object]:
        """Build parameters of the serving plain family (a copy)."""
        return dict(self._index_params)

    @property
    def metrics(self) -> MetricsRegistry:
        """The service's metrics registry."""
        return self._metrics

    @property
    def breaker(self) -> CircuitBreaker:
        """The per-index circuit breaker guarding snapshot queries."""
        return self._breaker

    def attach_auditor(self, auditor) -> None:
        """Attach a shadow correctness auditor (``None`` detaches).

        The auditor's :meth:`~repro.slo.audit.ShadowAuditor.offer` is
        called with ``(snapshot, source, target, answer, route)`` for
        every exact plain answer served — cache hits included, since a
        poisoned cache is exactly the failure shadow auditing exists to
        catch.  Cost with no auditor attached: one attribute read.
        """
        self._auditor = auditor

    def attach_wal(self, wal) -> None:
        """Attach a :class:`~repro.wal.WriteAheadLog` (``None`` detaches).

        Once attached, every :meth:`apply_updates` batch and
        :meth:`adopt_index` swap appends a record *before* the epoch
        swap, gated by the log's bounded write admission — so an
        acknowledged epoch is always recoverable and an overloaded
        writer path sheds with a typed
        :class:`~repro.errors.WriteBacklogError` instead of queueing
        unboundedly.
        """
        self._wal = wal
        self._wal_applied_lsn = None

    def wal_status(self) -> dict[str, object] | None:
        """The attached WAL's gauge state, or ``None`` when detached."""
        wal = self._wal
        return None if wal is None else wal.status()

    def restore_epoch(self, epoch: int) -> int:
        """Re-stamp the current snapshot at a recovered epoch.

        Startup-recovery only: the service is constructed over the
        replayed graph at epoch 0, then restored to the exact pre-crash
        epoch so clients' epoch provenance (and zookie-style tokens
        above the engine) stay monotone across the restart.
        """
        epoch = int(epoch)
        with self._writer_lock:
            snap = self._snapshot
            if epoch < snap.epoch:
                raise ServiceError(
                    f"cannot restore epoch {epoch} below current {snap.epoch}"
                )
            if epoch != snap.epoch:
                self._snapshot = Snapshot(
                    epoch=epoch,
                    graph=snap.graph,
                    plain=snap.plain,
                    labeled_graph=snap.labeled_graph,
                    labeled=snap.labeled,
                )
                if self._cache is not None:
                    self._cache.invalidate_all()
            return epoch

    def checkpoint_state(self) -> dict[str, object]:
        """A consistent capture for the WAL checkpointer.

        Takes the writer lock only to read immutable references (the
        snapshot graph, the current epoch, the last appended LSN); the
        expensive serialisation happens on the checkpointer's thread.
        Because appends and swaps share this lock, the capture reflects
        every record this service has appended.
        """
        with self._writer_lock:
            snap = self._snapshot
            return {
                "epoch": snap.epoch,
                "labeled": self._labeled_mode,
                "index": self._plain_name,
                "params": dict(self._index_params),
                "graph": snap.labeled_graph if self._labeled_mode else snap.graph,
                "applied_lsn": self._wal_applied_lsn,
            }

    def reach(self, source: int, target: int) -> bool:
        """Plain reachability at the current epoch."""
        return self.reach_ex(source, target).answer

    def reach_ex(self, source: int, target: int) -> QueryResult:
        """Plain reachability with epoch/route provenance."""
        snap = self._snapshot
        return self._serve(snap, (int(source), int(target), None))

    def lreach(self, source: int, target: int, constraint: str) -> bool:
        """Path-constrained reachability at the current epoch."""
        return self.lreach_ex(source, target, constraint).answer

    def lreach_ex(self, source: int, target: int, constraint: str) -> QueryResult:
        """Path-constrained reachability with epoch/route provenance."""
        if not self._labeled_mode:
            raise ServiceError(
                "constrained queries need a service built over a LabeledDiGraph"
            )
        snap = self._snapshot
        return self._serve(snap, (int(source), int(target), str(constraint)))

    def batch(
        self, queries: Sequence[tuple[int, int] | tuple[int, int, str | None]]
    ) -> list[QueryResult]:
        """Answer a batch against ONE snapshot, deduplicating within it.

        Every result carries the same epoch: the whole batch is evaluated
        against a single snapshot acquisition.
        """
        snap = self._snapshot
        keys = [
            (int(q[0]), int(q[1]), str(q[2]) if len(q) > 2 and q[2] is not None else None)
            for q in queries
        ]
        unique, back_refs = dedupe(keys)
        answered = [self._serve(snap, key) for key in unique]
        return [answered[slot] for slot in back_refs]

    def reach_batch(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Plain reachability for a batch of pairs at one epoch."""
        return [result.answer for result in self.execute_batch(pairs)]

    def execute_batch(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[QueryResult]:
        """Answer a batch of plain pairs against ONE snapshot, amortised.

        Unlike :meth:`batch`, which serves each unique key through the
        scalar path, this probes the result cache per pair and then hands
        *all* remaining misses to the index's ``query_batch`` in a single
        call, so the bit-parallel kernels (shared traversal frontiers,
        bound-once label merges) see the whole batch at once.  Every
        result carries the same epoch.
        """
        start = time.perf_counter()
        snap = self._snapshot
        epoch = snap.epoch
        with TRACER.span("service.batch", epoch=epoch, pairs=len(pairs)) as span:
            keys = [(int(s), int(t)) for s, t in pairs]
            results: list[QueryResult | None] = [None] * len(keys)
            cache = self._cache
            auditor = self._auditor
            cache_hits = 0
            unknowns = 0
            misses: list[int] = []
            if cache is not None:
                for position, (s, t) in enumerate(keys):
                    hit = cache.get((s, t, None), epoch)
                    if hit is not MISS:
                        results[position] = QueryResult(bool(hit), epoch, "cache")
                        cache_hits += 1
                        if auditor is not None:
                            auditor.offer(snap, s, t, bool(hit), "cache")
                    else:
                        misses.append(position)
            else:
                misses = list(range(len(keys)))
            computed = 0
            degraded_route: str | None = None
            if misses and not self._breaker.allow():
                # Breaker open: bounded per-pair probes, never the batch kernel.
                degraded_route = "degraded"
                for position in misses:
                    s, t = keys[position]
                    answer = self._degraded_probe(snap, (s, t, None))
                    if answer is None:
                        unknowns += 1
                    results[position] = QueryResult(answer, epoch, "degraded")
            elif misses:
                unique, back_refs = dedupe([keys[i] for i in misses])
                try:
                    answers = snap.plain.query_batch(unique)
                except DeadlineExceeded:
                    # Budget expired mid-batch: cache hits already answered
                    # stand; every unanswered pair is UNKNOWN, not a guess.
                    degraded_route = "deadline_abort"
                    global_registry().counter(
                        "resilience.deadline.aborts"
                    ).increment()
                    for position in misses:
                        results[position] = QueryResult(
                            None, epoch, "deadline_abort"
                        )
                    unknowns += len(misses)
                except (QueryError, ServiceError):
                    raise
                except Exception:
                    self._breaker.record_failure()
                    degraded_route = "degraded"
                    for position in misses:
                        s, t = keys[position]
                        answer = self._degraded_probe(snap, (s, t, None))
                        if answer is None:
                            unknowns += 1
                        results[position] = QueryResult(answer, epoch, "degraded")
                else:
                    self._breaker.record_success()
                    computed = len(unique)
                    if cache is not None:
                        for (s, t), answer in zip(unique, answers):
                            cache.put((s, t, None), epoch, answer)
                    if auditor is not None:
                        for (s, t), answer in zip(unique, answers):
                            auditor.offer(snap, s, t, answer, "plain_index")
                    for position, slot in zip(misses, back_refs):
                        results[position] = QueryResult(
                            answers[slot], epoch, "plain_index"
                        )
            if degraded_route is not None:
                self._metrics.counter(
                    f"service.queries.{degraded_route}"
                ).increment(len(misses))
            if unknowns:
                self._metrics.counter("service.unknowns").increment(unknowns)
            span.annotate(cache_hits=cache_hits, computed=computed)
            self._metrics.counter("service.queries.cache").increment(cache_hits)
            self._metrics.counter("service.queries.plain_index").increment(computed)
            self._metrics.counter("service.batch.requests").increment()
            self._metrics.counter("service.batch.pairs").increment(len(keys))
            self._metrics.counter("service.batch.cache_hits").increment(cache_hits)
            self._metrics.counter("service.batch.computed").increment(computed)
            self._metrics.histogram("service.batch.size").observe(float(len(keys)))
            self._metrics.histogram("service.batch.latency").observe(
                time.perf_counter() - start
            )
        return results  # type: ignore[return-value]

    def explain(self, source: int, target: int) -> Explanation:
        """The routed decision path a plain query takes at this epoch.

        Probes the result cache exactly as :meth:`reach_ex` would (route
        ``cache`` on a hit) and otherwise delegates to the snapshot
        index's own :meth:`~repro.core.base.ReachabilityIndex.explain`.
        Does not populate the cache or bump route counters.
        """
        snap = self._snapshot
        s, t = int(source), int(target)
        if self._cache is not None:
            hit = self._cache.get((s, t, None), snap.epoch)
            if hit is not MISS:
                return Explanation(
                    index=snap.plain.metadata.name,
                    source=s,
                    target=t,
                    answer=bool(hit),
                    route="cache",
                    probe=None,
                    details=(f"result cache hit at epoch {snap.epoch}",),
                )
        if not self._breaker.allow():
            answer = self._degraded_probe(snap, (s, t, None))
            return Explanation(
                index=snap.plain.metadata.name,
                source=s,
                target=t,
                answer=answer,
                route="degraded",
                probe=None,
                details=(
                    f"circuit breaker {self._breaker.state} — "
                    "bounded label probe only, no traversal",
                    f"served from snapshot epoch {snap.epoch}",
                ),
            )
        try:
            inner = snap.plain.explain(s, t)
        except DeadlineExceeded:
            return Explanation(
                index=snap.plain.metadata.name,
                source=s,
                target=t,
                answer=None,
                route="deadline_abort",
                probe=None,
                details=(
                    "deadline expired mid-evaluation — answer UNKNOWN",
                    f"served from snapshot epoch {snap.epoch}",
                ),
            )
        return Explanation(
            index=inner.index,
            source=inner.source,
            target=inner.target,
            answer=inner.answer,
            route=inner.route,
            probe=inner.probe,
            details=inner.details + (f"served from snapshot epoch {snap.epoch}",),
        )

    # -- query evaluation ------------------------------------------------
    def _serve(self, snap: Snapshot, key: tuple[int, int, str | None]) -> QueryResult:
        start = time.perf_counter()
        with TRACER.span(
            "service.query", epoch=snap.epoch, source=key[0], target=key[1]
        ) as span:
            if self._cache is not None:
                hit = self._cache.get(key, snap.epoch)
                if hit is not MISS:
                    self._record("cache", start)
                    span.annotate(route="cache", answer=bool(hit))
                    self._maybe_audit(snap, key, bool(hit), "cache")
                    return QueryResult(bool(hit), snap.epoch, "cache")
            if not self._breaker.allow():
                answer = self._degraded_probe(snap, key)
                self._record("degraded", start)
                span.annotate(route="degraded", answer=answer)
                if answer is None:
                    self._metrics.counter("service.unknowns").increment()
                else:
                    self._maybe_audit(snap, key, answer, "degraded")
                return QueryResult(answer, snap.epoch, "degraded")
            try:
                if self._coalescer is not None:
                    (answer, route), shared = self._coalescer.run(
                        (key, snap.epoch), lambda: self._evaluate(snap, key)
                    )
                else:
                    (answer, route), shared = self._evaluate(snap, key), False
            except DeadlineExceeded:
                # The request's own budget ran out; not an index-health
                # signal, so the breaker is untouched.
                global_registry().counter("resilience.deadline.aborts").increment()
                self._record("deadline_abort", start)
                self._metrics.counter("service.unknowns").increment()
                span.annotate(route="deadline_abort", answer=None)
                return QueryResult(None, snap.epoch, "deadline_abort")
            except (QueryError, ServiceError):
                raise  # caller mistakes stay errors (bad vertex, bad mode)
            except Exception:
                # The snapshot index misbehaved: count it against the
                # breaker and degrade to a bounded probe, not a traceback.
                self._breaker.record_failure()
                answer = self._degraded_probe(snap, key)
                self._record("degraded", start)
                span.annotate(route="degraded", answer=answer)
                if answer is None:
                    self._metrics.counter("service.unknowns").increment()
                return QueryResult(answer, snap.epoch, "degraded")
            self._breaker.record_success()
            if self._cache is not None:
                self._cache.put(key, snap.epoch, answer)
            self._record(route, start)
            span.annotate(route=route, answer=answer)
            self._maybe_audit(snap, key, answer, route)
            return QueryResult(answer, snap.epoch, route, shared)

    def _maybe_audit(
        self,
        snap: Snapshot,
        key: tuple[int, int, str | None],
        answer: bool | None,
        route: str,
    ) -> None:
        """Offer one exact plain answer to the attached shadow auditor."""
        auditor = self._auditor
        if auditor is not None and key[2] is None and answer is not None:
            auditor.offer(snap, key[0], key[1], answer, route)

    def _degraded_probe(self, snap: Snapshot, key: tuple[int, int, str | None]):
        """The three-valued lookup-only fallback: bool when a certificate
        exists, ``None`` (UNKNOWN) otherwise.

        Never escalates to traversal — the whole point of degrading is
        bounding work — so a partial index's MAYBE surfaces as UNKNOWN,
        and constrained queries (which have no cheap probe) are UNKNOWN
        outright.
        """
        source, target, constraint = key
        if source == target:
            return True
        if constraint is not None:
            return None
        try:
            probe = snap.plain.lookup(source, target)
        except Exception:
            return None
        if probe is TriState.YES:
            return True
        if probe is TriState.NO:
            return False
        return None

    def _evaluate(self, snap: Snapshot, key: tuple[int, int, str | None]) -> tuple[bool, str]:
        # Inside the timed region, so injected delays land in the
        # service.latency.* histograms the SLO tracker watches.
        chaos_point("service.query")
        source, target, constraint = key
        if constraint is None:
            return snap.plain.query(source, target), "plain_index"
        route, node = classify_constraint(constraint)
        if route == "alternation" and snap.labeled is not None:
            return snap.labeled.query(source, target, node), "labeled_index"
        # Concatenation (no RLC maintained here) and §5's uncovered
        # shapes both fall back to automaton-guided traversal.
        return rpq_reachable(snap.labeled_graph, source, target, node), "traversal"

    def _record(self, route: str, start: float) -> None:
        elapsed = time.perf_counter() - start
        self._metrics.counter(f"service.queries.{route}").increment()
        self._metrics.histogram(f"service.latency.{route}").observe(elapsed)

    # -- writer API ------------------------------------------------------
    def apply_updates(self, ops: Sequence[EdgeOp | LabeledEdgeOp]) -> int:
        """Apply one update batch and swap in the next epoch.

        Accepts :class:`EdgeOp` streams in plain mode and
        :class:`LabeledEdgeOp` streams in labeled mode (the
        :mod:`repro.workloads.updates` generators).  Serialised across
        callers by an internal writer lock; returns the new epoch.
        """
        ops = list(ops)
        wal = self._wal
        gate = wal.admitted() if wal is not None else nullcontext()
        with gate, self._writer_lock:
            snap = self._snapshot
            if self._labeled_mode:
                new_snap = self._next_labeled(snap, ops)
            else:
                new_snap = self._next_plain(snap, ops)
            if wal is not None:
                # Durability point: the record must be on the log before
                # the swap makes the epoch observable (and before the
                # caller can acknowledge it).  A failed append aborts the
                # whole batch — no swap, no ack, nothing to lose.
                self._wal_applied_lsn = wal.append(
                    "labeled_update" if self._labeled_mode else "update",
                    {"epoch": new_snap.epoch, "ops": _encode_ops(ops)},
                )
            self._snapshot = new_snap
            if self._cache is not None:
                self._cache.invalidate_all()
            self._metrics.counter("service.swaps").increment()
            self._metrics.counter("service.updates_applied").increment(len(ops))
            return new_snap.epoch

    def adopt_index(
        self,
        name: str,
        params: dict[str, object] | None = None,
        *,
        prebuilt: ReachabilityIndex | None = None,
        expected_epoch: int | None = None,
    ) -> int | None:
        """Swap the serving plain family live; returns the new epoch.

        The graph is untouched — only the index changes — so readers
        keep answering against the old snapshot until the atomic swap,
        and every in-flight query stays exact at its own epoch.

        ``prebuilt`` lets a caller (the advisor loop) build the new
        index *off* the writer lock over a snapshot's immutable graph
        and hand it in; ``expected_epoch`` then makes the swap
        conditional — if updates moved the epoch while the build ran,
        the stale index is rejected and ``None`` is returned so the
        caller can retry against the fresh snapshot.  With no
        ``prebuilt``, the index is built under the lock (small graphs,
        tests).
        """
        params = dict(params or {})
        plain_index_cls(name)  # validate the family name before locking
        with self._writer_lock:
            snap = self._snapshot
            if expected_epoch is not None and snap.epoch != expected_epoch:
                self._metrics.counter("service.advisor.stale_builds").increment()
                return None
            if prebuilt is not None and prebuilt.graph is not snap.graph:
                # Built over some other graph object: adopting it would
                # serve answers about a graph we are not serving.
                self._metrics.counter("service.advisor.stale_builds").increment()
                return None
            plain = (
                prebuilt
                if prebuilt is not None
                else self._build_plain(snap.graph, name=name, params=params)
            )
            if self._wal is not None:
                self._wal_applied_lsn = self._wal.append(
                    "adopt",
                    {"epoch": snap.epoch + 1, "index": name, "params": params},
                )
            self._plain_name = name
            self._index_params = params
            self._snapshot = Snapshot(
                epoch=snap.epoch + 1,
                graph=snap.graph,
                plain=plain,
                labeled_graph=snap.labeled_graph,
                labeled=snap.labeled,
            )
            if self._cache is not None:
                self._cache.invalidate_all()
            self._metrics.counter("service.swaps").increment()
            self._metrics.counter("service.advisor.adoptions").increment()
            return self._snapshot.epoch

    def _next_plain(self, snap: Snapshot, ops: list[EdgeOp]) -> Snapshot:
        for op in ops:
            if not isinstance(op, EdgeOp):
                raise ServiceError(
                    f"plain-mode service takes EdgeOp updates, got {type(op).__name__}"
                )
        patched = self._try_patch_plain(snap, ops)
        if patched is not None:
            self._metrics.counter("service.patches").increment()
            return Snapshot(epoch=snap.epoch + 1, graph=patched.graph, plain=patched)
        graph = snap.graph.copy()
        for op in ops:
            if op.kind == "insert":
                graph.add_edge(op.source, op.target)
            else:
                graph.remove_edge(op.source, op.target)
        self._metrics.counter("service.rebuilds").increment()
        return Snapshot(epoch=snap.epoch + 1, graph=graph, plain=self._build_plain(graph))

    def _try_patch_plain(
        self, snap: Snapshot, ops: list[EdgeOp]
    ) -> ReachabilityIndex | None:
        """Incrementally patch a deep copy of a dynamic index, or None.

        Every rejection that can be decided cheaply — rebuild policy,
        non-dynamic family, unsupported op kinds, and a per-op validity
        pre-pass on a graph copy — happens *before* the O(index)
        ``copy.deepcopy``, so a doomed batch skips straight to the
        rebuild path.  A successful patch is then differentially audited
        against the BFS oracle on sampled pairs; any mismatch discards
        the patch (counted, logged) and falls back to a full rebuild, so
        a buggy incremental maintenance path can never serve a wrong
        answer.
        """
        if self._rebuild_policy == "always" or isinstance(snap.plain, CondensedIndex):
            return None
        dynamic = snap.plain.metadata.dynamic
        if dynamic == "no":
            return None
        if dynamic == "insert-only" and any(op.kind != "insert" for op in ops):
            return None
        if not self._patch_viable_plain(snap, ops):
            return None
        index = copy.deepcopy(snap.plain)
        try:
            for op in ops:
                if op.kind == "insert":
                    index.insert_edge(op.source, op.target)
                else:
                    index.delete_edge(op.source, op.target)
        except (UnsupportedOperationError, GraphError):
            return None  # e.g. a cycle-creating insert on a DAG-only index
        if not self._audit_patched(index, snap.epoch + 1, labeled=False):
            return None
        return index

    def _patch_viable_plain(self, snap: Snapshot, ops: list[EdgeOp]) -> bool:
        """Cheap per-op validity pre-pass: would the patch certainly fail?

        Simulates the batch on a copy of the *graph* — O(|E| + ops·BFS)
        at worst, versus deep-copying the whole index — catching bad
        vertex ids, duplicate inserts, deletes of absent edges, and
        cycle-creating inserts against a DAG-only family.  ``False``
        routes to the rebuild path, which raises the same
        :class:`~repro.errors.GraphError` a caller would have seen.
        """
        probe = snap.graph.copy()
        needs_dag = snap.plain.metadata.input_kind == "DAG"
        try:
            for op in ops:
                if op.kind == "insert":
                    if needs_dag and bfs_reachable(probe, op.target, op.source):
                        return False  # would close a cycle under a DAG index
                    probe.add_edge(op.source, op.target)
                else:
                    probe.remove_edge(op.source, op.target)
        except GraphError:
            return False
        return True

    def _audit_patched(self, index, epoch: int, labeled: bool) -> bool:
        """Differentially probe a patched index against the BFS oracle.

        ``patch_audit_pairs`` seeded random pairs (0 disables); any
        disagreement fails the audit, which the patch paths convert into
        a counted, logged full rebuild — never a user-visible error.
        """
        pairs = self._patch_audit_pairs
        if not pairs:
            return True
        graph = index.graph
        n = graph.num_vertices
        if n == 0:
            return True
        rng = random.Random(f"patch-audit:{epoch}:{n}:{graph.num_edges}")
        labels = sorted(graph.labels()) if labeled else ()
        if labeled and not labels:
            return True
        ok = True
        for _ in range(pairs):
            source = rng.randrange(n)
            target = rng.randrange(n)
            if labeled:
                # Sample an alternation constraint (l1|l2|…)* — the shape
                # every §4.1 labeled index answers — over 1-2 graph labels.
                chosen = rng.sample(labels, k=min(len(labels), rng.randint(1, 2)))
                _route, node = classify_constraint(
                    "(" + "|".join(f'"{label}"' for label in chosen) + ")*"
                )
                ok = bool(index.query(source, target, node)) == rpq_reachable(
                    graph, source, target, node
                )
            else:
                ok = bool(index.query(source, target)) == bfs_reachable(
                    graph, source, target
                )
            if not ok:
                break
        if ok:
            self._metrics.counter("service.patch_audit.passed").increment()
            return True
        self._metrics.counter("service.patch_audit.failed").increment()
        _LOG.warning(
            "post-patch audit failed for %s at epoch %d (pair %d->%d); "
            "discarding the patch and rebuilding",
            type(index).__name__,
            epoch,
            source,
            target,
        )
        return False

    def _next_labeled(self, snap: Snapshot, ops: list[LabeledEdgeOp]) -> Snapshot:
        for op in ops:
            if not isinstance(op, LabeledEdgeOp):
                raise ServiceError(
                    "labeled-mode service takes LabeledEdgeOp updates, "
                    f"got {type(op).__name__}"
                )
        patched = self._try_patch_labeled(snap, ops)
        if patched is not None:
            labeled_graph = patched.graph
            plain_view = labeled_graph.to_plain()
            self._metrics.counter("service.patches").increment()
            return Snapshot(
                epoch=snap.epoch + 1,
                graph=plain_view,
                plain=self._build_plain(plain_view),
                labeled_graph=labeled_graph,
                labeled=patched,
            )
        labeled_graph = snap.labeled_graph.copy()
        for op in ops:
            if op.kind == "insert":
                labeled_graph.add_edge(op.source, op.target, op.label)
            else:
                labeled_graph.remove_edge(op.source, op.target, op.label)
        self._metrics.counter("service.rebuilds").increment()
        return self._labeled_snapshot(epoch=snap.epoch + 1, labeled=labeled_graph)

    def _try_patch_labeled(
        self, snap: Snapshot, ops: list[LabeledEdgeOp]
    ) -> LabelConstrainedIndex | None:
        if (
            self._rebuild_policy == "always"
            or snap.labeled is None
            or snap.labeled.metadata.dynamic != "yes"
        ):
            return None
        if not self._patch_viable_labeled(snap, ops):
            return None
        index = copy.deepcopy(snap.labeled)
        try:
            for op in ops:
                if op.kind == "insert":
                    index.insert_edge(op.source, op.target, op.label)
                else:
                    index.delete_edge(op.source, op.target, op.label)
        except (UnsupportedOperationError, GraphError):
            return None
        if not self._audit_patched(index, snap.epoch + 1, labeled=True):
            return None
        return index

    def _patch_viable_labeled(
        self, snap: Snapshot, ops: list[LabeledEdgeOp]
    ) -> bool:
        """Labeled analogue of :meth:`_patch_viable_plain` (no DAG check —
        labeled dynamic families accept cyclic graphs)."""
        probe = snap.labeled_graph.copy()
        try:
            for op in ops:
                if op.kind == "insert":
                    probe.add_edge(op.source, op.target, op.label)
                else:
                    probe.remove_edge(op.source, op.target, op.label)
        except GraphError:
            return False
        return True

    # -- observability ---------------------------------------------------
    def metrics_dict(self) -> dict[str, object]:
        """Counters, histograms, cache and coalescer state as one dict.

        Route-attribution counters from the index core (``index.route.*``)
        and planner tallies (``gdbms.*``) live in the process-wide
        registry; they are merged in under their own top-level keys so
        one scrape shows the whole decision path.
        """
        root = self._metrics.as_dict()
        for key, value in global_registry().as_dict().items():
            root.setdefault(key, value)
        service = root.setdefault("service", {})
        assert isinstance(service, dict)
        service["epoch"] = self.epoch
        service["mode"] = "labeled" if self._labeled_mode else "plain"
        service["index"] = self._plain_name
        service["backend"] = accel.backend_name()
        if self._cache is not None:
            stats = self._cache.statistics()
            root["cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "invalidated_entries": stats.invalidated_entries,
                "invalidation_cycles": stats.invalidation_cycles,
                "size": stats.size,
                "capacity": stats.capacity,
                "hit_rate": stats.hit_rate(),
            }
        if self._coalescer is not None:
            root["coalescer"] = {
                "led": self._coalescer.led,
                "coalesced": self._coalescer.coalesced,
            }
        root["breaker"] = self._breaker.snapshot()
        return root

    def metrics_text(self) -> str:
        """Flat ``name value`` exposition of :meth:`metrics_dict`."""
        lines: list[str] = []

        def walk(prefix: str, node: object) -> None:
            if isinstance(node, dict):
                for key, value in sorted(node.items()):
                    walk(f"{prefix}_{key}" if prefix else str(key), value)
            elif isinstance(node, bool):
                lines.append(f"{prefix} {int(node)}")
            elif isinstance(node, float):
                lines.append(f"{prefix} {node:.9f}")
            elif isinstance(node, int):
                lines.append(f"{prefix} {node}")
            else:
                lines.append(f'{prefix} "{node}"')

        walk("", self.metrics_dict())
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        snap = self._snapshot
        return (
            f"ReachabilityService(epoch={snap.epoch}, index={self._plain_name!r}, "
            f"|V|={snap.graph.num_vertices}, |E|={snap.graph.num_edges}, "
            f"mode={'labeled' if self._labeled_mode else 'plain'})"
        )


def _encode_ops(ops: Sequence[EdgeOp | LabeledEdgeOp]) -> list[list]:
    """WAL wire form for an update batch — JSON arrays, not objects, so a
    record stays compact and :mod:`repro.wal.recovery` can unpack
    positionally (``[kind, s, t]`` plain, ``[kind, s, t, label]`` labeled)."""
    encoded: list[list] = []
    for op in ops:
        row: list = [op.kind, op.source, op.target]
        if isinstance(op, LabeledEdgeOp):
            row.append(op.label)
        encoded.append(row)
    return encoded
