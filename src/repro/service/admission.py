"""Admission control and load shedding for the service front door.

``ThreadingHTTPServer`` happily spawns a thread per connection, so under
overload the process accumulates unbounded in-flight work and every
request gets slower together.  The :class:`AdmissionController` bounds
that: at most ``max_concurrent`` requests execute at once, at most
``queue_depth`` more wait (up to ``queue_timeout_s``), and everything
beyond that is **shed immediately** with
:class:`~repro.errors.ServiceOverloadedError` — the HTTP layer turns
that into ``503`` + ``Retry-After`` so well-behaved clients back off
instead of piling on.

Shedding early is the point: a shed request costs microseconds, a
queued-forever request costs a thread and the client's patience.  The
``service.shed.*`` counters and the in-flight gauge make the boundary
observable.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ServiceOverloadedError
from repro.obs.metrics import global_registry

__all__ = ["AdmissionController"]


class AdmissionController:
    """A bounded concurrency gate with a bounded, timed wait queue.

    Usage::

        with controller.admit():
            ...serve the request...

    ``admit`` raises :class:`ServiceOverloadedError` (carrying a
    ``retry_after_s`` hint) when the queue is full or the queue wait
    times out.  ``None`` bounds disable the corresponding limit.
    """

    def __init__(
        self,
        max_concurrent: int = 64,
        queue_depth: int = 128,
        queue_timeout_s: float = 0.25,
        retry_after_s: float = 1.0,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        if queue_timeout_s < 0:
            raise ValueError(f"queue_timeout_s must be >= 0, got {queue_timeout_s}")
        self.max_concurrent = max_concurrent
        self.queue_depth = queue_depth
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(max_concurrent)
        self._in_flight = 0
        self._waiting = 0
        self._drained = threading.Condition(self._lock)
        self._draining = False

    # -- admission -------------------------------------------------------
    def admit(self) -> "_Admission":
        """Claim a slot (possibly after a bounded wait) or shed.

        Returns a context manager that releases the slot on exit.
        """
        registry = global_registry()
        if self._draining:
            registry.counter("service.shed.draining").increment()
            raise ServiceOverloadedError(
                "service is draining for shutdown",
                retry_after_s=self.retry_after_s,
            )
        if self._slots.acquire(blocking=False):
            return self._admitted()
        # No free slot: join the bounded wait queue, or shed.
        with self._lock:
            if self._waiting >= self.queue_depth:
                registry.counter("service.shed.queue_full").increment()
                raise ServiceOverloadedError(
                    f"admission queue full ({self._waiting} waiting, "
                    f"{self.max_concurrent} in flight)",
                    retry_after_s=self.retry_after_s,
                )
            self._waiting += 1
        try:
            if not self._slots.acquire(timeout=self.queue_timeout_s):
                registry.counter("service.shed.queue_timeout").increment()
                raise ServiceOverloadedError(
                    f"no capacity within {self.queue_timeout_s * 1000:.0f}ms "
                    f"({self.max_concurrent} in flight)",
                    retry_after_s=self.retry_after_s,
                )
        finally:
            with self._lock:
                self._waiting -= 1
        return self._admitted()

    def _admitted(self) -> "_Admission":
        with self._lock:
            self._in_flight += 1
        global_registry().counter("service.admitted").increment()
        return _Admission(self)

    def _release(self) -> None:
        self._slots.release()
        with self._lock:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._drained.notify_all()

    # -- drain (graceful shutdown) ---------------------------------------
    def start_draining(self) -> None:
        """Refuse new admissions from now on (in-flight work continues)."""
        with self._lock:
            self._draining = True

    def wait_drained(self, timeout_s: float | None = None) -> bool:
        """Block until in-flight hits zero (or ``timeout_s``); True if empty."""
        expires = None if timeout_s is None else time.monotonic() + timeout_s
        with self._lock:
            while self._in_flight > 0:
                remaining = None if expires is None else expires - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._drained.wait(timeout=remaining)
            return True

    # -- observability ---------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Requests currently executing (not queued)."""
        with self._lock:
            return self._in_flight

    @property
    def waiting(self) -> int:
        """Requests currently blocked in the admission queue."""
        with self._lock:
            return self._waiting

    @property
    def draining(self) -> bool:
        """Has :meth:`start_draining` been called?"""
        return self._draining

    def snapshot(self) -> dict[str, object]:
        """Bounds plus live occupancy as plain data."""
        with self._lock:
            return {
                "max_concurrent": self.max_concurrent,
                "queue_depth": self.queue_depth,
                "queue_timeout_s": self.queue_timeout_s,
                "in_flight": self._in_flight,
                "waiting": self._waiting,
                "draining": self._draining,
            }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(max_concurrent={self.max_concurrent}, "
            f"queue_depth={self.queue_depth}, in_flight={self.in_flight})"
        )


class _Admission:
    """The held slot; a context manager that releases exactly once."""

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller
        self._released = False

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()
