"""A minimal property-graph store for the §5 integration scenario.

The survey closes with "our vision towards having full-fledged indexes in
modern GDBMSs".  :class:`GraphStore` is the storage half of that sketch:
named nodes with properties and labeled edges, with an update log the
planner (:mod:`repro.gdbms.planner`) consumes to keep reachability
indexes either maintained incrementally or invalidated for rebuild.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graphs.labeled import LabeledDiGraph

__all__ = ["GraphStore", "EdgeUpdate"]


@dataclass(frozen=True)
class EdgeUpdate:
    """One entry of the store's update log."""

    kind: str  # "insert" or "delete"
    source: int
    target: int
    label: str


@dataclass
class _Node:
    name: str
    properties: dict[str, object] = field(default_factory=dict)


class GraphStore:
    """Named nodes, properties, labeled edges, and an update log."""

    def __init__(self) -> None:
        self._graph = LabeledDiGraph(0)
        self._nodes: list[_Node] = []
        self._ids: dict[str, int] = {}
        self._log: list[EdgeUpdate] = []
        self._version = 0

    # -- nodes -----------------------------------------------------------
    def add_node(self, name: str, **properties: object) -> int:
        """Create a node; returns its id.  Names are unique."""
        if name in self._ids:
            raise GraphError(f"node {name!r} already exists")
        node_id = self._graph.add_vertex()
        self._nodes.append(_Node(name=name, properties=dict(properties)))
        self._ids[name] = node_id
        self._version += 1
        return node_id

    def node_id(self, name: str) -> int:
        """Id of a node by name; raises GraphError if unknown."""
        try:
            return self._ids[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def node_name(self, node_id: int) -> str:
        """Name of a node by id."""
        return self._nodes[node_id].name

    def properties(self, name: str) -> dict[str, object]:
        """The (mutable) property map of a node."""
        return self._nodes[self.node_id(name)].properties

    def has_node(self, name: str) -> bool:
        """Whether a node with this name exists."""
        return name in self._ids

    def nodes(self) -> Iterator[str]:
        """All node names."""
        return (node.name for node in self._nodes)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    # -- edges -----------------------------------------------------------
    def add_edge(self, source: str, label: str, target: str) -> None:
        """Insert ``source -[label]-> target``."""
        s = self.node_id(source)
        t = self.node_id(target)
        self._graph.add_edge(s, t, label)
        self._log.append(EdgeUpdate("insert", s, t, label))
        self._version += 1

    def remove_edge(self, source: str, label: str, target: str) -> None:
        """Delete ``source -[label]-> target``."""
        s = self.node_id(source)
        t = self.node_id(target)
        self._graph.remove_edge(s, t, label)
        self._log.append(EdgeUpdate("delete", s, t, label))
        self._version += 1

    def has_edge(self, source: str, label: str, target: str) -> bool:
        """Whether the labeled edge exists."""
        return self._graph.has_edge(self.node_id(source), self.node_id(target), label)

    @property
    def num_edges(self) -> int:
        """Number of labeled edges."""
        return self._graph.num_edges

    def edges(self) -> Iterator[tuple[str, str, str]]:
        """All edges as (source name, label, target name)."""
        for u, v, label in self._graph.edges():
            yield (self._nodes[u].name, str(label), self._nodes[v].name)

    # -- planner interface --------------------------------------------------
    @property
    def graph(self) -> LabeledDiGraph:
        """The underlying labeled graph (planner/internal use)."""
        return self._graph

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation."""
        return self._version

    def drain_log(self) -> list[EdgeUpdate]:
        """Return and clear the pending update log."""
        log, self._log = self._log, []
        return log

    def __repr__(self) -> str:
        return f"GraphStore(nodes={self.num_nodes}, edges={self.num_edges})"
