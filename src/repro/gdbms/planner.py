"""Index planning and maintenance for the GDBMS layer (§5).

The planner owns the reachability indexes behind a :class:`GraphStore`
and embodies the integration trade-offs §5 discusses:

* plain reachability is the alternation query over *all* labels, so one
  maintained **DLCR** index serves both query classes — the consolidation
  a GDBMS wants (one structure to keep fresh instead of two).  The
  store's update log is folded into DLCR incrementally before each
  query;
* the **concatenation** class has no dynamic index in the literature
  (Table 2), so the RLC index is invalidated by updates and rebuilt
  lazily on the next concatenation query — rebuild-on-demand;
* every other constraint shape falls back to automaton-guided traversal
  (§5's coverage gap).

Every answered query is tallied per serving strategy, so callers can see
exactly where indexes helped — the observability §5 asks GDBMSs for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.registry import labeled_index
from repro.gdbms.store import GraphStore
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.traversal.regex import (
    RegexNode,
    alternation_label_set,
    concatenation_sequence,
    parse_constraint,
)
from repro.traversal.rpq import rpq_reachable

__all__ = ["IndexPlanner", "PlannerStatistics", "classify_constraint"]


def classify_constraint(
    constraint: str | RegexNode, max_period: int | None = None
) -> tuple[str, RegexNode]:
    """Route a path constraint to the index family that can serve it.

    Returns ``(route, parsed)`` where ``route`` is ``"alternation"``
    (the §4.1 indexes apply), ``"concatenation"`` (the RLC index
    applies, subject to ``max_period`` when given), or ``"traversal"``
    (no Table 2 index covers the shape).  This is the §5 routing
    decision, shared between the in-process planner and the serving
    tier so both dispatch identically.
    """
    node = parse_constraint(constraint)
    if alternation_label_set(node) is not None:
        return "alternation", node
    sequence = concatenation_sequence(node)
    if sequence is not None and (max_period is None or len(sequence) <= max_period):
        return "concatenation", node
    return "traversal", node


@dataclass
class PlannerStatistics:
    """Counters of how queries were served."""

    plain_index: int = 0
    alternation_index: int = 0
    concatenation_index: int = 0
    traversal: int = 0
    rebuilds: dict[str, int] = field(default_factory=dict)

    def total(self) -> int:
        """Total queries answered."""
        return (
            self.plain_index
            + self.alternation_index
            + self.concatenation_index
            + self.traversal
        )


class IndexPlanner:
    """Keeps the store's reachability indexes fresh and routes queries."""

    def __init__(
        self,
        store: GraphStore,
        rlc_max_period: int = 2,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._store = store
        self._rlc_max_period = rlc_max_period
        self._alternation = None
        self._concatenation = None
        self._concatenation_dirty = True
        self._stats = PlannerStatistics()
        self._metrics = global_registry() if metrics is None else metrics

    @property
    def statistics(self) -> PlannerStatistics:
        """Query-routing counters."""
        return self._stats

    # -- maintenance ----------------------------------------------------------
    def _synchronise(self) -> None:
        """Fold pending store updates into the maintained indexes.

        The index owns a *copy* of the store graph (vertex ids shared) and
        replays the update log against it; node additions grow the index
        through :meth:`DLCRIndex.add_vertex`.
        """
        if self._alternation is None:
            self._store.drain_log()  # a fresh build absorbs pending updates
            self._alternation = labeled_index("DLCR").build(
                self._store.graph.copy()
            )
            self._bump_rebuild("DLCR")
            self._concatenation_dirty = True
            return
        while self._alternation.graph.num_vertices < self._store.graph.num_vertices:
            self._alternation.add_vertex()
        log = self._store.drain_log()
        if not log:
            return
        self._concatenation_dirty = True
        for update in log:
            if update.kind == "insert":
                self._alternation.insert_edge(
                    update.source, update.target, update.label
                )
            else:
                self._alternation.delete_edge(
                    update.source, update.target, update.label
                )

    def _ensure_concatenation(self):
        if self._concatenation is None or self._concatenation_dirty:
            self._concatenation = labeled_index("RLC").build(
                self._store.graph.copy(), max_period=self._rlc_max_period
            )
            self._concatenation_dirty = False
            self._bump_rebuild("RLC")
        return self._concatenation

    def _bump_rebuild(self, name: str) -> None:
        self._stats.rebuilds[name] = self._stats.rebuilds.get(name, 0) + 1
        self._metrics.counter(f"gdbms.rebuilds.{name}").increment()

    def _bump_route(self, route: str) -> None:
        self._metrics.counter(f"gdbms.route.{route}").increment()

    # -- query routing ----------------------------------------------------------
    def reaches(self, source: int, target: int) -> bool:
        """Plain reachability — the all-labels alternation query."""
        self._synchronise()
        self._stats.plain_index += 1
        self._bump_route("plain_index")
        labels = [str(label) for label in self._store.graph.labels()]
        if not labels:
            return source == target
        constraint = "(" + "|".join(labels) + ")*"
        return self._alternation.query(source, target, constraint)

    def constrained_reaches(
        self, source: int, target: int, constraint: str | RegexNode
    ) -> bool:
        """Path-constrained reachability, routed by constraint class."""
        route, node = classify_constraint(constraint, max_period=self._rlc_max_period)
        if route == "alternation":
            self._synchronise()
            self._stats.alternation_index += 1
            self._bump_route("alternation_index")
            return self._alternation.query(source, target, node)
        if route == "concatenation":
            self._synchronise()
            index = self._ensure_concatenation()
            self._stats.concatenation_index += 1
            self._bump_route("concatenation_index")
            return index.query(source, target, node)
        self._stats.traversal += 1
        self._bump_route("traversal")
        return rpq_reachable(self._store.graph, source, target, node)
