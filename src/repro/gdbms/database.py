"""The user-facing facade of the §5 GDBMS sketch.

:class:`ReachabilityDatabase` glues the property-graph store to the
index planner: names in, booleans out, indexes maintained behind the
scenes.  ``explain()`` exposes the routing statistics — which §4 family
served how many queries and how often the rebuild-on-demand RLC index
had to be reconstructed.
"""

from __future__ import annotations

from repro.gdbms.planner import IndexPlanner, PlannerStatistics
from repro.gdbms.store import GraphStore
from repro.traversal.regex import RegexNode

__all__ = ["ReachabilityDatabase"]


class ReachabilityDatabase:
    """A tiny graph database with reachability indexes built in."""

    def __init__(self, rlc_max_period: int = 2) -> None:
        self._store = GraphStore()
        self._planner = IndexPlanner(self._store, rlc_max_period=rlc_max_period)

    # -- data definition ---------------------------------------------------
    def add_node(self, name: str, **properties: object) -> None:
        """Create a node with optional properties."""
        self._store.add_node(name, **properties)

    def add_edge(self, source: str, label: str, target: str) -> None:
        """Insert a labeled relationship."""
        self._store.add_edge(source, label, target)

    def remove_edge(self, source: str, label: str, target: str) -> None:
        """Delete a labeled relationship."""
        self._store.remove_edge(source, label, target)

    def properties(self, name: str) -> dict[str, object]:
        """The property map of a node (mutable)."""
        return self._store.properties(name)

    @property
    def store(self) -> GraphStore:
        """The underlying store (inspection / bulk loading)."""
        return self._store

    # -- queries ---------------------------------------------------------
    def reaches(self, source: str, target: str) -> bool:
        """Plain reachability between two named nodes."""
        return self._planner.reaches(
            self._store.node_id(source), self._store.node_id(target)
        )

    def reaches_via(
        self, source: str, constraint: str | RegexNode, target: str
    ) -> bool:
        """Path-constrained reachability, e.g. ``('A', '(knows)*', 'B')``."""
        return self._planner.constrained_reaches(
            self._store.node_id(source), self._store.node_id(target), constraint
        )

    def reachable_from(self, source: str, constraint: str | None = None) -> set[str]:
        """All node names reachable from ``source`` (optionally constrained)."""
        result = set()
        for name in self._store.nodes():
            if name == source:
                continue
            if constraint is None:
                hit = self.reaches(source, name)
            else:
                hit = self.reaches_via(source, constraint, name)
            if hit:
                result.add(name)
        return result

    def witness(
        self, source: str, target: str, constraint: str | RegexNode | None = None
    ) -> list[tuple[str, str]] | None:
        """A concrete witness path, as ``[(name, label-to-next), …]``.

        With a constraint, the labels along the witness satisfy it; without
        one, any path counts.  Returns None when unreachable.  Witnesses
        come from traversal (indexes answer *whether*; the path itself is a
        different artifact — §2.1's distinction between reachability and
        path queries).
        """
        s = self._store.node_id(source)
        t = self._store.node_id(target)
        if constraint is None:
            from repro.traversal.witness import witness_path

            path = witness_path(self._store.graph.to_plain(), s, t)
            if path is None:
                return None
            return [(self._store.node_name(v), "") for v in path]
        from repro.traversal.witness import constrained_witness_path

        steps = constrained_witness_path(self._store.graph, s, t, constraint)
        if steps is None:
            return None
        return [(self._store.node_name(v), label) for v, label in steps]

    # -- observability ---------------------------------------------------------
    def explain(self) -> PlannerStatistics:
        """Query-routing and rebuild statistics."""
        return self._planner.statistics

    def __repr__(self) -> str:
        stats = self._planner.statistics
        return (
            f"ReachabilityDatabase(nodes={self._store.num_nodes}, "
            f"edges={self._store.num_edges}, queries={stats.total()})"
        )
