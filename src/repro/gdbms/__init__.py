"""The §5 integration sketch: reachability indexes inside a tiny GDBMS."""

from repro.gdbms.database import ReachabilityDatabase
from repro.gdbms.planner import IndexPlanner, PlannerStatistics
from repro.gdbms.store import EdgeUpdate, GraphStore

__all__ = [
    "ReachabilityDatabase",
    "IndexPlanner",
    "PlannerStatistics",
    "EdgeUpdate",
    "GraphStore",
]
