"""HL: hierarchical labeling — a simple, fast, scalable oracle (§3.4).

Jin & Wang's "Simple, Fast, and Scalable Reachability Oracle" builds its
labels along a *hierarchy* of the DAG: vertices are peeled in rounds —
each round removes the vertices that dominate the remaining graph (we use
the classic degree-product criterion) so that early-peeled vertices act as
separators for everything below them.  The hierarchy's peel order then
drives a pruned label assignment; queries use the plain 2-hop rule.

The survey files HL outside the three big frameworks (its framework column
is "—") because the hierarchy, not a spanning structure or a total-order
BFS, is the primary object; the label algebra it ends with is nonetheless
2-hop, which this implementation makes explicit.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase
from repro.plain.pruned import TwoHopLabels, build_pruned_labels

__all__ = ["HLIndex"]


def _hierarchy_order(graph: DiGraph) -> list[int]:
    """Peel vertices in rounds of decreasing dominance.

    Each round ranks the still-unpeeled vertices by the product of their
    remaining in/out degrees and peels the top fraction; the concatenated
    rounds form the hierarchy (level 0 = most dominant separators first).
    """
    n = graph.num_vertices
    in_deg = [graph.in_degree(v) for v in range(n)]
    out_deg = [graph.out_degree(v) for v in range(n)]
    peeled = bytearray(n)
    order: list[int] = []
    remaining = n
    while remaining:
        candidates = sorted(
            (v for v in range(n) if not peeled[v]),
            key=lambda v: (-(in_deg[v] + 1) * (out_deg[v] + 1), v),
        )
        take = max(1, len(candidates) // 4)
        for v in candidates[:take]:
            peeled[v] = 1
            order.append(v)
            remaining -= 1
            for w in graph.out_neighbors(v):
                if not peeled[w]:
                    in_deg[w] -= 1
            for u in graph.in_neighbors(v):
                if not peeled[u]:
                    out_deg[u] -= 1
    return order


@register_plain
class HLIndex(ReachabilityIndex):
    """HL: hierarchy-driven pruned labels with the 2-hop query rule."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="HL",
        framework="-",
        complete=True,
        input_kind="DAG",
        dynamic="no",
    )

    def __init__(self, graph: DiGraph, labels: TwoHopLabels) -> None:
        super().__init__(graph)
        self._labels = labels

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "HLIndex":
        topological_order(graph)  # enforce the DAG input contract
        with build_phase("hierarchy-peel"):
            order = _hierarchy_order(graph)
        with build_phase("pruned-labeling"):
            labels = build_pruned_labels(graph, order)
        return cls(graph, labels)

    @property
    def labels(self) -> TwoHopLabels:
        """The hierarchy-ordered label sets."""
        return self._labels

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if self._labels.covered(source, target):
            return TriState.YES
        return TriState.NO

    def size_in_entries(self) -> int:
        return self._labels.size_in_entries()
