"""IP: independent-permutation labeling — approximate TC (§3.3).

Wei et al. draw a random permutation ``r`` of the vertices and give every
vertex the **k smallest permutation values** among its descendant set
``Out(v)`` (and dually for ``In(v)``).  The k-min sketch preserves the
contrapositive the survey derives: if ``s`` reaches ``t`` then
``Out(t) ⊆ Out(s)``, so every element of ``t``'s sketch smaller than the
k-th smallest of ``s``'s sketch must also appear in ``s``'s sketch — a
violation certifies NO with *no false negatives*.  Matching sketches are
only MAYBE, resolved by index-guided traversal (the recursive pruning §3.3
describes).

Per Table 1 the IP index is dynamic; as §5 notes, its update path rides on
DAGGER-style relabeling.  Here insertion merges sketches monotonically up
the ancestor chain (sound: sketches stay supersets-in-sketch-form), and
deletion recomputes the sketches with the linear reverse-topological sweep.
"""

from __future__ import annotations

import random
from collections import deque
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.errors import NotADAGError
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase
from repro.traversal.online import bfs_reachable

__all__ = ["IPIndex"]


def _merge_kmin(a: tuple[int, ...], b: tuple[int, ...], k: int) -> tuple[int, ...]:
    """Union two sorted k-min sketches, keeping the k smallest values."""
    merged: list[int] = []
    i = j = 0
    while len(merged) < k and (i < len(a) or j < len(b)):
        if j >= len(b) or (i < len(a) and a[i] <= b[j]):
            value = a[i]
            i += 1
        else:
            value = b[j]
            j += 1
        if not merged or merged[-1] != value:
            merged.append(value)
    return tuple(merged)


def _sketch_violates(small: tuple[int, ...], big: tuple[int, ...], k: int) -> bool:
    """True when ``small`` cannot be the sketch of a subset of ``big``'s set.

    If ``T ⊆ S`` then every element of ``kmin(T)`` below ``max(kmin(S))``
    (when ``S``'s sketch is saturated) — or *every* element (when not) —
    must appear in ``kmin(S)``.
    """
    big_set = set(big)
    threshold = big[-1] if len(big) == k else None
    for value in small:
        if threshold is not None and value > threshold:
            break
        if value not in big_set:
            return True
    return False


@register_plain
class IPIndex(ReachabilityIndex):
    """IP: k-min-wise permutation sketches of Out/In sets."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="IP",
        framework="Approximate TC",
        complete=False,
        input_kind="DAG",
        dynamic="yes",
    )

    DEFAULT_K = 4

    def __init__(
        self,
        graph: DiGraph,
        k: int,
        permutation: list[int],
        out_sketch: list[tuple[int, ...]],
        in_sketch: list[tuple[int, ...]],
    ) -> None:
        super().__init__(graph)
        self._k = k
        self._permutation = permutation
        self._out = out_sketch
        self._in = in_sketch

    @classmethod
    def build(cls, graph: DiGraph, k: int = DEFAULT_K, seed: int = 0, **params: object) -> "IPIndex":
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        n = graph.num_vertices
        with build_phase("random-permutation", vertices=n):
            rng = random.Random(seed)
            permutation = list(range(1, n + 1))
            rng.shuffle(permutation)
        with build_phase("kmin-sketch-sweep", k=k):
            out_sketch, in_sketch = cls._sweep(graph, k, permutation)
        return cls(graph, k, permutation, out_sketch, in_sketch)

    @staticmethod
    def _sweep(
        graph: DiGraph, k: int, permutation: list[int]
    ) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
        order = topological_order(graph)
        out_sketch: list[tuple[int, ...]] = [()] * graph.num_vertices
        for v in reversed(order):
            sketch = (permutation[v],)
            for w in graph.out_neighbors(v):
                sketch = _merge_kmin(sketch, out_sketch[w], k)
            out_sketch[v] = sketch
        in_sketch: list[tuple[int, ...]] = [()] * graph.num_vertices
        for v in order:
            sketch = (permutation[v],)
            for u in graph.in_neighbors(v):
                sketch = _merge_kmin(sketch, in_sketch[u], k)
            in_sketch[v] = sketch
        return out_sketch, in_sketch

    @property
    def k(self) -> int:
        """Sketch size."""
        return self._k

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        if _sketch_violates(self._out[target], self._out[source], self._k):
            return TriState.NO
        if _sketch_violates(self._in[source], self._in[target], self._k):
            return TriState.NO
        return TriState.MAYBE

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched k-min sketch comparisons with the sketch arrays bound once."""
        self._check_pairs(pairs)
        out, inn, k = self._out, self._in, self._k
        yes, no, maybe = TriState.YES, TriState.NO, TriState.MAYBE
        results: list[TriState] = []
        append = results.append
        for s, t in pairs:
            if s == t:
                append(yes)
            elif _sketch_violates(out[t], out[s], k):
                append(no)
            elif _sketch_violates(inn[s], inn[t], k):
                append(no)
            else:
                append(maybe)
        return results

    def size_in_entries(self) -> int:
        """Stored sketch values across both directions."""
        return sum(len(s) for s in self._out) + sum(len(s) for s in self._in)

    # -- dynamic maintenance --------------------------------------------------
    def insert_edge(self, source: int, target: int) -> None:
        """DAG-preserving insert; sketches merge monotonically upward."""
        if bfs_reachable(self._graph, target, source):
            raise NotADAGError(f"inserting ({source}, {target}) would create a cycle")
        self._graph.add_edge(source, target)
        queue: deque[int] = deque((source,))
        while queue:
            v = queue.popleft()
            merged = self._out[v]
            for w in self._graph.out_neighbors(v):
                merged = _merge_kmin(merged, self._out[w], self._k)
            if merged == self._out[v] and v != source:
                continue
            if merged != self._out[v]:
                self._out[v] = merged
                for u in self._graph.in_neighbors(v):
                    queue.append(u)
        queue = deque((target,))
        while queue:
            v = queue.popleft()
            merged = self._in[v]
            for u in self._graph.in_neighbors(v):
                merged = _merge_kmin(merged, self._in[u], self._k)
            if merged != self._in[v]:
                self._in[v] = merged
                for w in self._graph.out_neighbors(v):
                    queue.append(w)

    def delete_edge(self, source: int, target: int) -> None:
        """Delete and recompute the sketches (linear sweep)."""
        self._graph.remove_edge(source, target)
        self._out, self._in = self._sweep(self._graph, self._k, self._permutation)
