"""SCARAB-style reachability backbone (§3.4).

Jin et al.'s SCARAB scales reachability computation by extracting a
*backbone*: a vertex subset that every long path must cross, so an index
only needs to cover backbone-to-backbone reachability and queries route
through the endpoints' local neighbourhoods.  Like the §3.4 reductions it
is orthogonal to the indexing technique — any Table 1 index can sit on
the backbone.

This implementation uses the 1-hop backbone: ``S`` is the set of vertices
with both in- and out-edges.  Every internal vertex of every path lies in
``S`` by definition, so

* reachability *between* backbone vertices is closed inside the induced
  subgraph ``G[S]`` (no path between them needs an outside vertex), and
* ``Qr(s, t)`` holds iff ``s = t``, the edge ``(s, t)`` exists, or some
  out-neighbour ``b1 ∈ S`` of ``s`` reaches some in-neighbour
  ``b2 ∈ S`` of ``t`` within the backbone.

On source/sink-heavy graphs (citation networks, scale-free DAGs) the
backbone is much smaller than the graph, which is exactly the saving the
paper reports.  The original generalises to k-hop backbones; the 1-hop
instance keeps the routing exact with zero slack.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.graphs.digraph import DiGraph
from repro.obs.build import build_phase

__all__ = ["ScarabBackboneIndex"]


class ScarabBackboneIndex(ReachabilityIndex):
    """Any plain index, built on the reachability backbone only.

    Not a Table 1 row of its own (SCARAB is preprocessing, §3.4), so this
    class is not registered in the taxonomy registry.
    """

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="SCARAB",
        framework="-",
        complete=True,
        input_kind="General",
        dynamic="no",
    )

    def __init__(
        self,
        graph: DiGraph,
        backbone_of: list[int],
        members: list[int],
        inner_index: ReachabilityIndex,
    ) -> None:
        super().__init__(graph)
        self._backbone_of = backbone_of  # vertex -> backbone id or -1
        self._members = members  # backbone id -> vertex
        self._inner = inner_index

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        inner: type[ReachabilityIndex] | None = None,
        **params: object,
    ) -> "ScarabBackboneIndex":
        """Extract the backbone and build ``inner`` over ``G[S]``."""
        if inner is None:
            raise TypeError("ScarabBackboneIndex.build requires inner=<index class>")
        with build_phase("backbone-extraction") as phase:
            members = [
                v
                for v in graph.vertices()
                if graph.in_degree(v) > 0 and graph.out_degree(v) > 0
            ]
            backbone_of = [-1] * graph.num_vertices
            for backbone_id, v in enumerate(members):
                backbone_of[v] = backbone_id
            induced = DiGraph(len(members))
            for u in members:
                bu = backbone_of[u]
                for w in graph.out_neighbors(u):
                    if backbone_of[w] != -1:
                        induced.add_edge_if_absent(bu, backbone_of[w])
            phase.annotate(backbone=len(members), vertices=graph.num_vertices)
        if inner.metadata.input_kind == "DAG":
            from repro.core.condensed import CondensedIndex
            from repro.graphs.topo import is_dag

            if is_dag(induced):
                inner_index: ReachabilityIndex = inner.build(induced, **params)
            else:
                inner_index = CondensedIndex.build(induced, inner=inner, **params)
        else:
            inner_index = inner.build(induced, **params)
        return cls(graph, backbone_of, members, inner_index)

    @property
    def backbone_size(self) -> int:
        """Number of backbone vertices."""
        return len(self._members)

    @property
    def inner(self) -> ReachabilityIndex:
        """The index built over the backbone subgraph."""
        return self._inner

    def _backbone_query(self, b1: int, b2: int) -> bool:
        return self._inner.query(b1, b2)

    def lookup(self, source: int, target: int) -> TriState:
        """Exact routing through the backbone (complete: YES or NO)."""
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        graph = self._graph
        if graph.has_edge(source, target):
            return TriState.YES
        # candidate entry points: backbone out-neighbours of the source
        entries = [
            self._backbone_of[w]
            for w in graph.out_neighbors(source)
            if self._backbone_of[w] != -1
        ]
        if not entries:
            return TriState.NO
        exits = [
            self._backbone_of[u]
            for u in graph.in_neighbors(target)
            if self._backbone_of[u] != -1
        ]
        if not exits:
            return TriState.NO
        exit_set = set(exits)
        for b1 in entries:
            if b1 in exit_set:  # two-hop path s -> x -> t
                return TriState.YES
            for b2 in exit_set:
                if self._backbone_query(b1, b2):
                    return TriState.YES
        return TriState.NO

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched backbone routing with inner probes memoised per batch.

        Pairs in one batch often funnel through the same few hub pairs;
        memoising ``inner.query`` answers for the batch's lifetime makes
        the candidate double loop pay for each hub pair once.
        """
        self._check_pairs(pairs)
        graph = self._graph
        backbone_of = self._backbone_of
        has_edge = graph.has_edge
        out_lists = graph._out
        in_lists = graph._in
        inner_query = self._inner.query
        memo: dict[tuple[int, int], bool] = {}
        yes, no = TriState.YES, TriState.NO
        results: list[TriState] = []
        append = results.append
        for s, t in pairs:
            if s == t or has_edge(s, t):
                append(yes)
                continue
            entries = [backbone_of[w] for w in out_lists[s] if backbone_of[w] != -1]
            if not entries:
                append(no)
                continue
            exit_set = {backbone_of[u] for u in in_lists[t] if backbone_of[u] != -1}
            if not exit_set:
                append(no)
                continue
            answer = no
            for b1 in entries:
                if b1 in exit_set:
                    answer = yes
                    break
                for b2 in exit_set:
                    hit = memo.get((b1, b2))
                    if hit is None:
                        hit = memo[(b1, b2)] = inner_query(b1, b2)
                    if hit:
                        answer = yes
                        break
                if answer is yes:
                    break
            append(answer)
        return results

    def size_in_entries(self) -> int:
        """Inner entries plus the backbone membership map."""
        return self._inner.size_in_entries() + self._graph.num_vertices
