"""O'Reach: supporting vertices plus extended topological orders (§3.2).

Hanauer et al.'s O'Reach is a partial index that answers a large share of
queries in O(1) from two ingredients:

* **k supporting vertices**: for each supporting vertex ``x`` every vertex
  stores two bits — "reaches ``x``" and "reached by ``x``".  They yield
  both YES certificates (``s → x`` and ``x → t``) and NO certificates
  (``x → s`` but not ``x → t`` implies ``s`` cannot reach ``t``, since
  reachability would be transitive through ``s``; symmetrically for the
  reached-by side).
* **extended topological orders**: several topological ranks with
  different tie-breaking plus the min/max rank over each vertex's
  descendants.  ``s → t`` forces ``rank(s) < rank(t)`` in every
  topological order, so an inverted rank certifies NO.

Unresolved queries answer MAYBE and fall back to index-guided traversal —
O'Reach is explicitly a *both-sided* partial index, the design §5 singles
out as the template for future partial indexes.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_levels, topological_order
from repro.obs.build import build_phase
from repro.traversal.online import ancestors, descendants

__all__ = ["OReachIndex"]


@register_plain
class OReachIndex(ReachabilityIndex):
    """O'Reach: k supporting vertices + extended topological observations."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="O'Reach",
        framework="2-Hop",
        complete=False,
        input_kind="DAG",
        dynamic="no",
    )

    DEFAULT_K = 16

    def __init__(
        self,
        graph: DiGraph,
        supports: list[int],
        reaches_support: list[int],
        reached_by_support: list[int],
        rank_fwd: list[int],
        rank_alt: list[int],
        level: list[int],
    ) -> None:
        super().__init__(graph)
        self._supports = supports
        self._reaches = reaches_support  # mask: supports v reaches
        self._reached_by = reached_by_support  # mask: supports reaching v
        self._rank_fwd = rank_fwd
        self._rank_alt = rank_alt
        self._level = level

    @classmethod
    def build(cls, graph: DiGraph, k: int = DEFAULT_K, **params: object) -> "OReachIndex":
        n = graph.num_vertices
        # supporting vertices: high-degree spread, the paper's main heuristic
        with build_phase("support-selection", supports=min(k, n)):
            by_degree = sorted(
                graph.vertices(),
                key=lambda v: (-(graph.in_degree(v) + graph.out_degree(v)), v),
            )
            supports = by_degree[: min(k, n)]
        with build_phase("support-traversals"):
            reaches = [0] * n
            reached_by = [0] * n
            for i, x in enumerate(supports):
                bit = 1 << i
                for w in ancestors(graph, x):
                    reaches[w] |= bit
                for w in descendants(graph, x):
                    reached_by[w] |= bit
        with build_phase("extended-topological-orders"):
            order = topological_order(graph)
            rank_fwd = [0] * n
            for position, v in enumerate(order):
                rank_fwd[v] = position
            # an alternative topological order: reverse-id tie-breaking via
            # relabeling; different orders disagree exactly where MAYBEs lurk.
            relabel = [n - 1 - v for v in range(n)]
            mirrored = DiGraph(n)
            for u, v in graph.edges():
                mirrored.add_edge(relabel[u], relabel[v])
            rank_alt = [0] * n
            for position, mv in enumerate(topological_order(mirrored)):
                rank_alt[relabel[mv]] = position
            level = topological_levels(graph)
        return cls(graph, supports, reaches, reached_by, rank_fwd, rank_alt, level)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        # topological observations: any inverted order certifies NO
        if self._rank_fwd[source] >= self._rank_fwd[target]:
            return TriState.NO
        if self._rank_alt[source] >= self._rank_alt[target]:
            return TriState.NO
        if self._level[source] >= self._level[target]:
            return TriState.NO
        # supporting vertices: YES through a common support
        if self._reaches[source] & self._reached_by[target]:
            return TriState.YES
        # NO by transitivity through a support on either side
        if self._reached_by[source] & ~self._reached_by[target]:
            # some support reaches s but not t; s -> t would contradict it
            return TriState.NO
        if self._reaches[target] & ~self._reaches[source]:
            return TriState.NO
        return TriState.MAYBE

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched O'Reach observations with ranks and masks bound once."""
        self._check_pairs(pairs)
        rank_fwd, rank_alt, level = self._rank_fwd, self._rank_alt, self._level
        reaches, reached_by = self._reaches, self._reached_by
        yes, no, maybe = TriState.YES, TriState.NO, TriState.MAYBE
        results: list[TriState] = []
        append = results.append
        for s, t in pairs:
            if s == t:
                append(yes)
            elif rank_fwd[s] >= rank_fwd[t]:
                append(no)
            elif rank_alt[s] >= rank_alt[t]:
                append(no)
            elif level[s] >= level[t]:
                append(no)
            elif reaches[s] & reached_by[t]:
                append(yes)
            elif reached_by[s] & ~reached_by[t]:
                append(no)
            elif reaches[t] & ~reaches[s]:
                append(no)
            else:
                append(maybe)
        return results

    def size_in_entries(self) -> int:
        """Two support masks plus three ranks per vertex."""
        return 5 * self._graph.num_vertices

    @property
    def supports(self) -> list[int]:
        """The chosen supporting vertices."""
        return list(self._supports)
