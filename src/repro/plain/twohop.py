"""The original 2-hop index of Cohen et al. (§3.2).

Computing the *minimum* 2-hop cover is NP-hard; the original work settles
for the greedy set-cover approximation: repeatedly pick the hop vertex
``w`` whose "center graph" ``In(w) × Out(w)`` covers the most uncovered
reachable pairs per label entry spent, add ``w`` to ``L_out`` of its
ancestors and ``L_in`` of its descendants, and stop when the transitive
closure is covered.

The approximation has ~O(n⁴) behaviour — the very reason the survey calls
it "infeasible for large graphs" and why TFL/DL/PLL/TOL exist.  This
implementation is meant for the small-graph regime (hundreds of vertices)
where the build-time benchmarks demonstrate exactly that infeasibility
against the pruned-labeling family.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import condense
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase
from repro.plain.pruned import TwoHopLabels, enumerate_covered

__all__ = ["TwoHopIndex"]


def _vertex_closures(graph: DiGraph) -> tuple[list[int], list[int]]:
    """Per-vertex descendant and ancestor bitsets (via the condensation)."""
    condensation = condense(graph)
    dag = condensation.dag
    comp_out = [0] * dag.num_vertices
    for c in reversed(topological_order(dag)):
        reach = 1 << c
        for d in dag.out_neighbors(c):
            reach |= comp_out[d]
        comp_out[c] = reach
    # expand component closures to vertex-level bitsets
    comp_members_mask = [0] * dag.num_vertices
    for v in graph.vertices():
        comp_members_mask[condensation.scc_of[v]] |= 1 << v
    out_sets = [0] * graph.num_vertices
    comp_vertex_out = [0] * dag.num_vertices
    for c in range(dag.num_vertices):
        mask = 0
        bits = comp_out[c]
        while bits:
            d = (bits & -bits).bit_length() - 1
            bits &= bits - 1
            mask |= comp_members_mask[d]
        comp_vertex_out[c] = mask
    for v in graph.vertices():
        out_sets[v] = comp_vertex_out[condensation.scc_of[v]]
    in_sets = [0] * graph.num_vertices
    for v in graph.vertices():
        bits = out_sets[v]
        while bits:
            w = (bits & -bits).bit_length() - 1
            bits &= bits - 1
            in_sets[w] |= 1 << v
    return out_sets, in_sets


@register_plain
class TwoHopIndex(ReachabilityIndex):
    """Cohen et al.'s greedy 2-hop cover (small-graph regime)."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="2-Hop",
        framework="2-Hop",
        complete=True,
        input_kind="General",
        dynamic="no",
    )

    def __init__(self, graph: DiGraph, labels: TwoHopLabels) -> None:
        super().__init__(graph)
        self._labels = labels

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "TwoHopIndex":
        n = graph.num_vertices
        with build_phase("vertex-closures"):
            out_sets, in_sets = _vertex_closures(graph)
        # uncovered[s] = bitset of targets t != s with s -> t not yet covered
        uncovered = [out_sets[s] & ~(1 << s) for s in range(n)]
        remaining = sum(bits.bit_count() for bits in uncovered)
        labels = TwoHopLabels(n)
        with build_phase("greedy-set-cover", pairs=remaining) as phase:
            rounds = 0
            while remaining:
                rounds += 1
                best_hop = -1
                best_ratio = -1.0
                best_gain = 0
                for w in range(n):
                    gain = 0
                    sources = in_sets[w]
                    targets = out_sets[w]
                    bits = sources
                    while bits:
                        s = (bits & -bits).bit_length() - 1
                        bits &= bits - 1
                        gain += (uncovered[s] & targets).bit_count()
                    if gain == 0:
                        continue
                    cost = sources.bit_count() + targets.bit_count()
                    ratio = gain / cost
                    if ratio > best_ratio:
                        best_ratio = ratio
                        best_hop = w
                        best_gain = gain
                if best_hop == -1:  # defensive: should not happen
                    break
                w = best_hop
                targets = out_sets[w]
                bits = in_sets[w]
                while bits:
                    s = (bits & -bits).bit_length() - 1
                    bits &= bits - 1
                    if s != w:
                        labels.l_out[s].add(w)
                    uncovered[s] &= ~targets
                bits = targets
                while bits:
                    t = (bits & -bits).bit_length() - 1
                    bits &= bits - 1
                    if t != w:
                        labels.l_in[t].add(w)
                remaining = sum(bits.bit_count() for bits in uncovered)
            phase.annotate(rounds=rounds)
        return cls(graph, labels)

    @property
    def labels(self) -> TwoHopLabels:
        """The greedy 2-hop label sets."""
        return self._labels

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if self._labels.covered(source, target):
            return TriState.YES
        return TriState.NO

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched 2-hop merges via :meth:`TwoHopLabels.covered_many`."""
        self._check_pairs(pairs)
        yes, no = TriState.YES, TriState.NO
        return [yes if c else no for c in self._labels.covered_many(pairs)]

    def _enumerate_fast(self, vertex: int, forward: bool):
        """Label-join enumeration through the inverted hub index."""
        return enumerate_covered(self._labels, vertex, forward)

    def size_in_entries(self) -> int:
        return self._labels.size_in_entries()
