"""Tree+SSPI: spanning-tree intervals plus a surrogate predecessor index (§3.1).

Chen et al.'s stack-based pattern-matching scheme keeps a spanning-tree
interval labeling and, for the reachability lost to non-tree edges, a
*surrogate & surplus predecessor index* (SSPI): each vertex records the
non-tree predecessors through which it can additionally be reached.  The
index is partial without false positives: a subtree hit answers YES
immediately; otherwise the SSPI lists are chased — here through
index-guided traversal over the predecessor structure.

Lookup additionally consults the SSPI one level deep (``t`` reachable via
a non-tree in-edge whose tail is in ``s``'s subtree), which resolves the
common single-hop cases without traversal.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase
from repro.plain.interval import forest_postorder_intervals, spanning_forest

__all__ = ["TreeSSPIIndex"]


@register_plain
class TreeSSPIIndex(ReachabilityIndex):
    """Tree+SSPI: interval labeling with surplus-predecessor lists."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Tree+SSPI",
        framework="Tree cover",
        complete=False,
        input_kind="DAG",
        dynamic="no",
    )

    def __init__(
        self,
        graph: DiGraph,
        intervals: list[tuple[int, int]],
        surplus_predecessors: list[list[int]],
    ) -> None:
        super().__init__(graph)
        self._intervals = intervals
        self._surplus = surplus_predecessors

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "TreeSSPIIndex":
        with build_phase("spanning-tree-intervals"):
            order = topological_order(graph)
            parent = spanning_forest(graph, order)
            intervals = forest_postorder_intervals(graph, parent)
        with build_phase("surplus-predecessors") as phase:
            surplus: list[list[int]] = [[] for _ in graph.vertices()]
            for u, v in graph.edges():
                if parent[v] != u:
                    surplus[v].append(u)
            phase.annotate(links=sum(len(lst) for lst in surplus))
        return cls(graph, intervals, surplus)

    def _in_subtree(self, source: int, target: int) -> bool:
        a, b = self._intervals[source]
        return a <= self._intervals[target][1] <= b

    def lookup(self, source: int, target: int) -> TriState:
        """YES via subtree or a one-hop SSPI link; MAYBE otherwise."""
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        if self._in_subtree(source, target):
            return TriState.YES
        for u in self._surplus[target]:
            if u == source or self._in_subtree(source, u):
                return TriState.YES
        return TriState.MAYBE

    def size_in_entries(self) -> int:
        """One interval per vertex plus the surplus predecessor lists."""
        return self._graph.num_vertices + sum(len(lst) for lst in self._surplus)

    @property
    def surplus_predecessors(self) -> list[list[int]]:
        """The SSPI: per-vertex non-tree predecessors (read-only view)."""
        return self._surplus
