"""GRIPP: GRaph Indexing based on Pre- and Postorder numbering (§3.1).

GRIPP materialises the pre/post-order *instance table* of a DFS traversal
in which a vertex may appear several times (once per incoming non-tree
edge).  We implement the algorithmic core: the tree-instance intervals of a
DFS spanning forest over a *general* graph, giving a partial index without
false positives — if ``t``'s tree instance falls inside ``s``'s interval
the answer is certainly YES, otherwise the answer is MAYBE and query
processing hops through non-tree instances, which is exactly the
index-guided traversal of :func:`repro.core.base.guided_query`.

As the survey notes, a MAYBE ("the partial index returns false") forces
traversal, which is why GRIPP is "not competitive compared to the design of
GRAIL and Ferrari that do not have false negatives".  The benchmarks make
that asymmetry visible on negative-heavy workloads.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.obs.build import build_phase

__all__ = ["GrippIndex"]


def _dfs_tree_intervals(graph: DiGraph) -> tuple[list[int], list[int]]:
    """Pre/post numbers of a DFS spanning forest over a general graph.

    Returns (pre, post); ``t`` is in ``s``'s DFS subtree iff
    ``pre[s] <= pre[t]`` and ``post[t] <= post[s]``.
    """
    n = graph.num_vertices
    pre = [0] * n
    post = [0] * n
    visited = bytearray(n)
    clock = 0
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = 1
        clock += 1
        pre[start] = clock
        stack: list[tuple[int, int]] = [(start, 0)]
        while stack:
            v, cursor = stack[-1]
            neighbors = graph.out_neighbors(v)
            advanced = False
            while cursor < len(neighbors):
                w = neighbors[cursor]
                cursor += 1
                if not visited[w]:
                    visited[w] = 1
                    clock += 1
                    pre[w] = clock
                    stack[-1] = (v, cursor)
                    stack.append((w, 0))
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            clock += 1
            post[v] = clock
    return pre, post


@register_plain
class GrippIndex(ReachabilityIndex):
    """GRIPP's tree-instance core: DFS intervals on a general graph."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="GRIPP",
        framework="Tree cover",
        complete=False,
        input_kind="General",
        dynamic="no",
    )

    def __init__(self, graph: DiGraph, pre: list[int], post: list[int]) -> None:
        super().__init__(graph)
        self._pre = pre
        self._post = post

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "GrippIndex":
        with build_phase("dfs-instance-table", vertices=graph.num_vertices):
            pre, post = _dfs_tree_intervals(graph)
        return cls(graph, pre, post)

    def lookup(self, source: int, target: int) -> TriState:
        """YES when ``t`` is in ``s``'s DFS subtree; MAYBE otherwise.

        No NO answers: GRIPP is a partial index *without false positives*,
        so a negative lookup cannot terminate query processing early.
        """
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        if (
            self._pre[source] <= self._pre[target]
            and self._post[target] <= self._post[source]
        ):
            return TriState.YES
        return TriState.MAYBE

    def size_in_entries(self) -> int:
        """One (pre, post) instance per vertex."""
        return self._graph.num_vertices
