"""PLL and DL: pruned 2-hop labeling in degree order (§3.2).

Yano et al.'s *pruned landmark labeling* (PLL) and Jin & Wang's *distribution
labeling* (DL) both instantiate the TOL engine with a vertex-degree total
order — high-degree "landmark" vertices are labeled first, so their BFS
passes cover the bulk of reachable pairs and later passes prune almost
immediately.  The survey notes the two have been proven equivalent; we
register them as separate taxonomy rows (as Table 1 does) sharing the same
engine, differing only in the tie-breaking flavour of the order.

Both run directly on general graphs: the pruned BFS handles cycles.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.obs.build import build_phase
from repro.plain.pruned import (
    TwoHopLabels,
    build_pruned_labels,
    degree_order,
    enumerate_covered,
)

__all__ = ["PLLIndex", "DLIndex"]


class _DegreeOrderedTwoHop(ReachabilityIndex):
    """Shared body of the degree-ordered complete 2-hop indexes."""

    def __init__(self, graph: DiGraph, labels: TwoHopLabels) -> None:
        super().__init__(graph)
        self._labels = labels

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "_DegreeOrderedTwoHop":
        with build_phase("landmark-order"):
            order = cls._order(graph)
        with build_phase("pruned-bfs-labeling") as phase:
            labels = build_pruned_labels(graph, order)
            phase.annotate(entries=labels.size_in_entries())
        return cls(graph, labels)

    @staticmethod
    def _order(graph: DiGraph) -> list[int]:
        return degree_order(graph)

    @property
    def labels(self) -> TwoHopLabels:
        """The underlying 2-hop label sets."""
        return self._labels

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if self._labels.covered(source, target):
            return TriState.YES
        return TriState.NO

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched 2-hop merges via :meth:`TwoHopLabels.covered_many`."""
        self._check_pairs(pairs)
        yes, no = TriState.YES, TriState.NO
        return [yes if c else no for c in self._labels.covered_many(pairs)]

    def _enumerate_fast(self, vertex: int, forward: bool):
        """Label-join enumeration through the inverted hub index."""
        return enumerate_covered(self._labels, vertex, forward)

    def size_in_entries(self) -> int:
        return self._labels.size_in_entries()


@register_plain
class PLLIndex(_DegreeOrderedTwoHop):
    """Pruned landmark labeling: TOL engine + decreasing-degree order."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="PLL",
        framework="2-Hop",
        complete=True,
        input_kind="General",
        dynamic="no",
    )


@register_plain
class DLIndex(_DegreeOrderedTwoHop):
    """Distribution labeling — equivalent to PLL (§3.2), distinct Table 1 row.

    The tie-break prefers high *product* of in- and out-degree, the flavour
    of landmark quality DL's heuristics aim at; on most graphs the resulting
    labels match PLL's closely, which is the equivalence the survey cites.
    """

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="DL",
        framework="2-Hop",
        complete=True,
        input_kind="General",
        dynamic="no",
    )

    @staticmethod
    def _order(graph: DiGraph) -> list[int]:
        return sorted(
            graph.vertices(),
            key=lambda v: (
                -((graph.in_degree(v) + 1) * (graph.out_degree(v) + 1)),
                v,
            ),
        )
