"""DBL: dynamic reachability via dual labels, insertion-only (§3.2).

Lyu et al.'s DBL combines two complementary constant-size labels:

* **DL — landmark label**: a small set of high-degree *hub* vertices; every
  vertex stores bitmasks of the hubs it reaches and is reached by.  A
  common hub certifies YES.
* **BL — bit label**: every vertex gets a random hash code; ``BL_out(v)``
  ORs the codes of everything ``v`` reaches.  If ``s`` reaches ``t`` then
  ``Out(t) ⊆ Out(s)``, so ``BL_out(t)`` must be a sub-mask of
  ``BL_out(s)`` — a violated sub-mask (either direction) certifies NO.

Neither side resolves every query, so the residue is MAYBE, handled by
index-guided traversal.  Both labels are monotone under edge insertion —
new reachability only ORs more bits in — which is exactly why DBL supports
*insert-only* dynamic graphs: insertion propagates the unions backward
from the new edge's tail and forward from its head, and no recomputation
is ever needed.
"""

from __future__ import annotations

import random
from collections import deque
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.obs.build import build_phase
from repro.traversal.online import ancestors, descendants

__all__ = ["DBLIndex"]


@register_plain
class DBLIndex(ReachabilityIndex):
    """DBL: hub landmark masks + hash bit labels, insert-only dynamic."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="DBL",
        framework="2-Hop",
        complete=False,
        input_kind="General",
        dynamic="insert-only",
    )

    DEFAULT_NUM_HUBS = 16
    DEFAULT_BITS = 64

    def __init__(
        self,
        graph: DiGraph,
        hubs: list[int],
        hub_out: list[int],
        hub_in: list[int],
        bit_out: list[int],
        bit_in: list[int],
        hash_code: list[int],
    ) -> None:
        super().__init__(graph)
        self._hubs = hubs
        self._hub_out = hub_out  # mask of hubs v reaches
        self._hub_in = hub_in  # mask of hubs that reach v
        self._bit_out = bit_out
        self._bit_in = bit_in
        self._hash_code = hash_code

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        num_hubs: int = DEFAULT_NUM_HUBS,
        bits: int = DEFAULT_BITS,
        seed: int = 0,
        **params: object,
    ) -> "DBLIndex":
        n = graph.num_vertices
        rng = random.Random(seed)
        hash_code = [1 << rng.randrange(bits) for _ in range(n)]
        with build_phase("hub-selection", hubs=min(num_hubs, n)):
            by_degree = sorted(
                graph.vertices(),
                key=lambda v: (-(graph.in_degree(v) + graph.out_degree(v)), v),
            )
            hubs = by_degree[: min(num_hubs, n)]
        with build_phase("hub-traversals"):
            hub_out = [0] * n
            hub_in = [0] * n
            for i, hub in enumerate(hubs):
                bit = 1 << i
                for w in descendants(graph, hub):
                    hub_in[w] |= bit
                for w in ancestors(graph, hub):
                    hub_out[w] |= bit
        # bit labels: union of hash codes over descendants/ancestors.
        # Computed by n sweeps to a fixpoint is wasteful; instead propagate
        # in reverse finishing order per SCC via simple iteration: for
        # general graphs we run a couple of passes until stable (each pass
        # is O(E); reachability unions converge in <= diameter passes, and
        # cycles stabilise because members share bits quickly).
        with build_phase("bit-label-fixpoint", bits=bits) as phase:
            bit_out = list(hash_code)
            bit_in = list(hash_code)
            passes = 0
            changed = True
            while changed:
                passes += 1
                changed = False
                for u, v in graph.edges():
                    merged = bit_out[u] | bit_out[v]
                    if merged != bit_out[u]:
                        bit_out[u] = merged
                        changed = True
                    merged = bit_in[v] | bit_in[u]
                    if merged != bit_in[v]:
                        bit_in[v] = merged
                        changed = True
            phase.annotate(passes=passes)
        return cls(graph, hubs, hub_out, hub_in, bit_out, bit_in, hash_code)

    @property
    def hubs(self) -> list[int]:
        """The landmark (hub) vertices of the DL side."""
        return list(self._hubs)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        # DL: shared hub, or endpoint is itself a hub seen by the other side
        if self._hub_out[source] & self._hub_in[target]:
            return TriState.YES
        # BL: violated sub-mask certifies non-reachability
        if self._bit_out[target] & ~self._bit_out[source]:
            return TriState.NO
        if self._bit_in[source] & ~self._bit_in[target]:
            return TriState.NO
        return TriState.MAYBE

    def size_in_entries(self) -> int:
        """Four fixed-size words per vertex (two hub masks, two bit labels)."""
        return 4 * self._graph.num_vertices

    # -- insert-only maintenance ---------------------------------------------
    def insert_edge(self, source: int, target: int) -> None:
        """Insert an edge; propagate the (monotone) label unions."""
        self._graph.add_edge(source, target)
        # backward: everything reaching `source` gains target's out-labels
        add_hub = self._hub_out[target]
        add_bit = self._bit_out[target]
        queue: deque[int] = deque((source,))
        while queue:
            v = queue.popleft()
            new_hub = self._hub_out[v] | add_hub
            new_bit = self._bit_out[v] | add_bit
            if new_hub == self._hub_out[v] and new_bit == self._bit_out[v]:
                continue
            self._hub_out[v] = new_hub
            self._bit_out[v] = new_bit
            for u in self._graph.in_neighbors(v):
                queue.append(u)
        # forward: everything reachable from `target` gains source's in-labels
        add_hub = self._hub_in[source]
        add_bit = self._bit_in[source]
        queue = deque((target,))
        while queue:
            v = queue.popleft()
            new_hub = self._hub_in[v] | add_hub
            new_bit = self._bit_in[v] | add_bit
            if new_hub == self._hub_in[v] and new_bit == self._bit_in[v]:
                continue
            self._hub_in[v] = new_hub
            self._bit_in[v] = new_bit
            for w in self._graph.out_neighbors(v):
                queue.append(w)
