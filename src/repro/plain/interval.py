"""Tree cover: interval labeling with interval inheritance (Agrawal et al., §3.1).

The foundational tree-cover index.  A spanning forest of the DAG is
labeled with post-order intervals ``[a_v, b_v]`` (``b_v`` the post-order
number, ``a_v`` the lowest post-order number in ``v``'s subtree); then,
walking vertices in reverse topological order, every vertex inherits the
interval lists of its out-neighbours so that paths through non-tree edges
are captured.  Adjacent or overlapping intervals are merged for compact
storage, exactly as the paper describes.

``Qr(s, t)`` is true iff ``b_t`` falls inside one of ``s``'s intervals.
The index is complete; its drawback — the potentially large number of
inherited intervals — is what the size benchmarks quantify.

This module also exports the spanning-forest/interval helpers reused by
Ferrari, GRIPP, Tree+SSPI and dual labeling.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase

__all__ = [
    "TreeCoverIndex",
    "spanning_forest",
    "forest_postorder_intervals",
    "merge_intervals",
    "interval_list_contains",
]


def spanning_forest(graph: DiGraph, order: list[int]) -> list[int]:
    """A spanning forest of a DAG: ``parent[v]`` or ``-1`` for roots.

    Each vertex picks as tree parent the in-neighbour with the highest
    out-degree — a cheap stand-in for the paper's (NP-hard to optimise)
    optimal tree cover that empirically keeps inherited interval counts low.
    ``order`` must be a topological order, so parents precede children.
    """
    parent = [-1] * graph.num_vertices
    for v in order:
        best = -1
        best_deg = -1
        for u in graph.in_neighbors(v):
            deg = graph.out_degree(u)
            if deg > best_deg:
                best_deg = deg
                best = u
        parent[v] = best
    return parent


def forest_postorder_intervals(
    graph: DiGraph, parent: list[int]
) -> list[tuple[int, int]]:
    """Post-order intervals ``[a_v, b_v]`` over a spanning forest.

    ``b_v`` is ``v``'s post-order number (1-based) in a traversal of the
    forest; ``a_v`` is the smallest post-order number in ``v``'s subtree.
    ``b_t ∈ [a_s, b_s]`` iff ``t`` is in the subtree rooted at ``s``.
    """
    n = graph.num_vertices
    children: list[list[int]] = [[] for _ in range(n)]
    roots: list[int] = []
    for v, p in enumerate(parent):
        if p == -1:
            roots.append(v)
        else:
            children[p].append(v)
    intervals: list[tuple[int, int]] = [(0, 0)] * n
    counter = 0
    for root in roots:
        # iterative post-order: (vertex, child-cursor)
        stack: list[tuple[int, int]] = [(root, 0)]
        low: dict[int, int] = {}
        while stack:
            v, cursor = stack[-1]
            if cursor < len(children[v]):
                stack[-1] = (v, cursor + 1)
                stack.append((children[v][cursor], 0))
                continue
            stack.pop()
            counter += 1
            a = min((low[c] for c in children[v]), default=counter)
            intervals[v] = (a, counter)
            low[v] = a
    return intervals


def merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort and merge overlapping or adjacent intervals.

    Adjacent means ``[1, 6]`` and ``[7, 8]`` merge into ``[1, 8]``, per the
    paper's storage optimisation.
    """
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for a, b in intervals[1:]:
        last_a, last_b = merged[-1]
        if a <= last_b + 1:
            if b > last_b:
                merged[-1] = (last_a, b)
        else:
            merged.append((a, b))
    return merged


def interval_list_contains(intervals: list[tuple[int, int]], point: int) -> bool:
    """Whether ``point`` lies inside one of the sorted, disjoint intervals."""
    pos = bisect_right(intervals, (point, float("inf"))) - 1
    if pos < 0:
        return False
    a, b = intervals[pos]
    return a <= point <= b


@register_plain
class TreeCoverIndex(ReachabilityIndex):
    """The original tree-cover index: intervals plus inheritance."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Tree cover",
        framework="Tree cover",
        complete=True,
        input_kind="DAG",
        dynamic="no",
    )

    def __init__(
        self,
        graph: DiGraph,
        postorder: list[tuple[int, int]],
        interval_lists: list[list[tuple[int, int]]],
    ) -> None:
        super().__init__(graph)
        self._postorder = postorder  # tree interval (a_v, b_v) per vertex
        self._intervals = interval_lists  # merged inherited lists per vertex

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "TreeCoverIndex":
        """Label a spanning forest, then inherit along reverse topo order."""
        with build_phase("spanning-forest-intervals"):
            order = topological_order(graph)
            parent = spanning_forest(graph, order)
            tree_intervals = forest_postorder_intervals(graph, parent)
        with build_phase("interval-inheritance") as phase:
            interval_lists: list[list[tuple[int, int]]] = [[] for _ in graph.vertices()]
            for v in reversed(order):
                collected = [tree_intervals[v]]
                for w in graph.out_neighbors(v):
                    collected.extend(interval_lists[w])
                interval_lists[v] = merge_intervals(collected)
            phase.annotate(intervals=sum(len(lst) for lst in interval_lists))
        return cls(graph, tree_intervals, interval_lists)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        b_target = self._postorder[target][1]
        if interval_list_contains(self._intervals[source], b_target):
            return TriState.YES
        return TriState.NO

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched interval containment with the hot arrays bound once."""
        self._check_pairs(pairs)
        postorder = self._postorder
        intervals = self._intervals
        contains = interval_list_contains
        yes, no = TriState.YES, TriState.NO
        return [
            yes if contains(intervals[s], postorder[t][1]) else no for s, t in pairs
        ]

    def _vertex_at_postorder(self) -> list[int]:
        """``slot[b_v] = v`` — the inverse postorder map, built lazily."""
        slots = self.__dict__.get("_b_to_vertex")
        if slots is None:
            slots = [-1] * (self._graph.num_vertices + 1)
            for v, (_a, b) in enumerate(self._postorder):
                slots[b] = v
            self._b_to_vertex = slots
        return slots

    def _enumerate_fast(
        self, vertex: int, forward: bool
    ) -> tuple[frozenset[int], str, tuple[str, ...]]:
        """Subtree-interval scan — the enumeration form of the §3.1 test.

        Forward, the merged interval list of ``vertex`` *is* the
        descendant set as postorder ranges: expand each ``[a, b]``
        through the inverse postorder map.  Backward, one containment
        probe per vertex collects everyone whose list covers ``b_t``.
        """
        if forward:
            slots = self._vertex_at_postorder()
            members: list[int] = []
            spans = self._intervals[vertex]
            for a, b in spans:
                members.extend(slots[a : b + 1])
            return (
                frozenset(members),
                "enum_interval",
                (
                    f"interval scan: {len(spans)} merged intervals expanded "
                    f"to {len(members)} postorder slots",
                ),
            )
        b_target = self._postorder[vertex][1]
        intervals = self._intervals
        contains = interval_list_contains
        members = [
            s for s in range(self._graph.num_vertices)
            if contains(intervals[s], b_target)
        ]
        return (
            frozenset(members),
            "enum_interval",
            (
                f"interval scan: containment of postorder {b_target} probed "
                f"across all vertices, {len(members)} ancestors",
            ),
        )

    def size_in_entries(self) -> int:
        """Total number of intervals — the paper's definition of index size."""
        return sum(len(lst) for lst in self._intervals)

    def __getstate__(self) -> dict[str, object]:
        """Persistable state: drop the lazy inverse postorder map."""
        state = super().__getstate__()
        state.pop("_b_to_vertex", None)
        return state
