"""FERRARI: flexible reachability ranges with an interval budget (§3.1).

Where GRAIL records *exactly* ``k`` intervals per vertex, Ferrari records
*at most* ``k``: the exact inherited interval list of the tree-cover index
is computed first, then — whenever a vertex exceeds the budget — the pair
of intervals with the smallest gap is merged even though they are not
adjacent.  Merged intervals are flagged *approximate*; exact intervals are
kept flagged *exact*.

Lookup semantics (both-sided partial):

* ``b_t`` inside an **exact** interval of ``s`` → YES (true containment);
* ``b_t`` inside no interval at all → NO (approximation only over-covers,
  so a miss certifies non-reachability — no false negatives);
* ``b_t`` inside only approximate intervals → MAYBE, resolved by guided
  traversal.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase
from repro.plain.interval import (
    forest_postorder_intervals,
    spanning_forest,
)

__all__ = ["FerrariIndex"]

# an interval is (a, b, exact_flag)
_Interval = tuple[int, int, bool]


def _merge_flagged(intervals: list[_Interval]) -> list[_Interval]:
    """Merge overlapping/adjacent flagged intervals.

    Merging an exact interval with anything it overlaps keeps exactness only
    if both are exact and they truly touch (the union is still the exact
    covered set).
    """
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for a, b, exact in intervals[1:]:
        last_a, last_b, last_exact = merged[-1]
        if a <= last_b + 1:
            merged[-1] = (last_a, max(b, last_b), exact and last_exact)
        else:
            merged.append((a, b, exact))
    return merged


def _enforce_budget(intervals: list[_Interval], k: int) -> list[_Interval]:
    """Merge smallest-gap neighbours until at most ``k`` intervals remain."""
    intervals = list(intervals)
    while len(intervals) > k:
        best_pos = 0
        best_gap = None
        for i in range(len(intervals) - 1):
            gap = intervals[i + 1][0] - intervals[i][1]
            if best_gap is None or gap < best_gap:
                best_gap = gap
                best_pos = i
        a1, _b1, _e1 = intervals[best_pos]
        _a2, b2, _e2 = intervals[best_pos + 1]
        # spanning a gap makes the result approximate by construction
        intervals[best_pos : best_pos + 2] = [(a1, b2, False)]
    return intervals


@register_plain
class FerrariIndex(ReachabilityIndex):
    """Ferrari: at most ``k`` (exact or approximate) intervals per vertex."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Ferrari",
        framework="Tree cover",
        complete=False,
        input_kind="DAG",
        dynamic="no",
    )

    DEFAULT_K = 4

    def __init__(
        self,
        graph: DiGraph,
        postorder: list[tuple[int, int]],
        interval_lists: list[list[_Interval]],
    ) -> None:
        super().__init__(graph)
        self._postorder = postorder
        self._intervals = interval_lists

    @classmethod
    def build(cls, graph: DiGraph, k: int = DEFAULT_K, **params: object) -> "FerrariIndex":
        """Exact tree-cover inheritance with the per-vertex budget applied."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        with build_phase("tree-cover"):
            order = topological_order(graph)
            parent = spanning_forest(graph, order)
            tree_intervals = forest_postorder_intervals(graph, parent)
        with build_phase("interval-inheritance", budget=k) as phase:
            lists: list[list[_Interval]] = [[] for _ in graph.vertices()]
            for v in reversed(order):
                a, b = tree_intervals[v]
                collected: list[_Interval] = [(a, b, True)]
                for w in graph.out_neighbors(v):
                    collected.extend(lists[w])
                lists[v] = _enforce_budget(_merge_flagged(collected), k)
            phase.annotate(intervals=sum(len(lst) for lst in lists))
        return cls(graph, tree_intervals, lists)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        b_target = self._postorder[target][1]
        hit_approximate = False
        for a, b, exact in self._intervals[source]:
            if a <= b_target <= b:
                if exact:
                    return TriState.YES
                hit_approximate = True
        if hit_approximate:
            return TriState.MAYBE
        return TriState.NO

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched interval probes with the interval lists bound once."""
        self._check_pairs(pairs)
        postorder = self._postorder
        intervals = self._intervals
        yes, no, maybe = TriState.YES, TriState.NO, TriState.MAYBE
        results: list[TriState] = []
        append = results.append
        for s, t in pairs:
            if s == t:
                append(yes)
                continue
            b_target = postorder[t][1]
            hit_approximate = False
            for a, b, exact in intervals[s]:
                if a <= b_target <= b:
                    if exact:
                        append(yes)
                        break
                    hit_approximate = True
            else:
                append(maybe if hit_approximate else no)
        return results

    def size_in_entries(self) -> int:
        """Total intervals stored (≤ k per vertex by construction)."""
        return sum(len(lst) for lst in self._intervals)
