"""PReaCH: pruning-based reachability with contraction-hierarchy ideas (§3.4).

Merz & Sanders port the pruning toolkit of contraction hierarchies to
reachability.  The index per vertex is a handful of numbers computed in
two DFS passes and one topological sweep:

* a forward DFS post-order interval ``[min_post, post]`` — if ``s``
  reaches ``t`` then ``t``'s interval nests inside ``s``'s (GRAIL-style NO
  test), and ``t`` inside ``s``'s *tree* interval is a YES certificate;
* the dual backward interval over the reversed graph;
* topological levels for both directions (NO when ``level(s) ≥ level(t)``).

Anything unresolved is MAYBE, answered by the pruned bidirectional search
the paper is named after — realised here as index-guided traversal.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_levels
from repro.obs.build import build_phase

__all__ = ["PReaCHIndex"]


def _dfs_numbers(graph: DiGraph) -> tuple[list[int], list[int], list[int]]:
    """(post, min_post_reachable, min_post_subtree) for a full DFS.

    ``min_post_reachable`` propagates through *all* out-edges (GRAIL-style
    containment); ``min_post_subtree`` only through tree edges, so
    ``[min_post_subtree, post]`` certifies YES.
    """
    n = graph.num_vertices
    post = [0] * n
    min_reach = [0] * n
    min_tree = [0] * n
    state = bytearray(n)  # 0 unvisited, 1 active, 2 done
    clock = 0
    for start in range(n):
        if state[start]:
            continue
        state[start] = 1
        stack: list[tuple[int, int, list[int]]] = [(start, 0, [])]
        while stack:
            v, cursor, tree_children = stack[-1]
            neighbors = graph.out_neighbors(v)
            advanced = False
            while cursor < len(neighbors):
                w = neighbors[cursor]
                cursor += 1
                if state[w] == 0:
                    state[w] = 1
                    tree_children.append(w)
                    stack[-1] = (v, cursor, tree_children)
                    stack.append((w, 0, []))
                    advanced = True
                    break
            if advanced:
                continue
            stack.pop()
            state[v] = 2
            clock += 1
            post[v] = clock
            reach_low = clock
            for w in graph.out_neighbors(v):
                if min_reach[w] < reach_low:
                    reach_low = min_reach[w]
            min_reach[v] = reach_low
            tree_low = clock
            for w in tree_children:
                if min_tree[w] < tree_low:
                    tree_low = min_tree[w]
            min_tree[v] = tree_low
    return post, min_reach, min_tree


@register_plain
class PReaCHIndex(ReachabilityIndex):
    """PReaCH: DFS number ranges + topological levels, both directions."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Preach",
        framework="-",
        complete=False,
        input_kind="DAG",
        dynamic="no",
    )

    def __init__(
        self,
        graph: DiGraph,
        fwd: tuple[list[int], list[int], list[int]],
        bwd: tuple[list[int], list[int], list[int]],
        level_fwd: list[int],
        level_bwd: list[int],
    ) -> None:
        super().__init__(graph)
        self._fwd_post, self._fwd_reach, self._fwd_tree = fwd
        self._bwd_post, self._bwd_reach, self._bwd_tree = bwd
        self._level_fwd = level_fwd
        self._level_bwd = level_bwd

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "PReaCHIndex":
        reverse = graph.reversed()
        with build_phase("forward-dfs-numbers"):
            fwd = _dfs_numbers(graph)
        with build_phase("backward-dfs-numbers"):
            bwd = _dfs_numbers(reverse)
        with build_phase("topological-levels"):
            level_fwd = topological_levels(graph)
            level_bwd = topological_levels(reverse)
        return cls(graph, fwd, bwd, level_fwd, level_bwd)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        # YES: target inside source's forward DFS *tree* interval,
        # or source inside target's backward tree interval.
        if self._fwd_tree[source] <= self._fwd_post[target] <= self._fwd_post[source]:
            return TriState.YES
        if self._bwd_tree[target] <= self._bwd_post[source] <= self._bwd_post[target]:
            return TriState.YES
        # NO: violated reachable-range containment in either direction
        # (if s reaches t, t's forward range nests in s's, and s's backward
        # range nests in t's).
        if not (
            self._fwd_reach[source] <= self._fwd_reach[target]
            and self._fwd_post[target] <= self._fwd_post[source]
        ):
            return TriState.NO
        if not (
            self._bwd_reach[target] <= self._bwd_reach[source]
            and self._bwd_post[source] <= self._bwd_post[target]
        ):
            return TriState.NO
        # NO: topological levels must strictly increase along paths.
        if self._level_fwd[source] >= self._level_fwd[target]:
            return TriState.NO
        if self._level_bwd[target] >= self._level_bwd[source]:
            return TriState.NO
        return TriState.MAYBE

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched PReaCH observations with all eight arrays bound once."""
        self._check_pairs(pairs)
        fwd_post, fwd_reach, fwd_tree = self._fwd_post, self._fwd_reach, self._fwd_tree
        bwd_post, bwd_reach, bwd_tree = self._bwd_post, self._bwd_reach, self._bwd_tree
        level_fwd, level_bwd = self._level_fwd, self._level_bwd
        yes, no, maybe = TriState.YES, TriState.NO, TriState.MAYBE
        results: list[TriState] = []
        append = results.append
        for s, t in pairs:
            if s == t:
                append(yes)
            elif fwd_tree[s] <= fwd_post[t] <= fwd_post[s]:
                append(yes)
            elif bwd_tree[t] <= bwd_post[s] <= bwd_post[t]:
                append(yes)
            elif not (fwd_reach[s] <= fwd_reach[t] and fwd_post[t] <= fwd_post[s]):
                append(no)
            elif not (bwd_reach[t] <= bwd_reach[s] and bwd_post[s] <= bwd_post[t]):
                append(no)
            elif level_fwd[s] >= level_fwd[t]:
                append(no)
            elif level_bwd[t] >= level_bwd[s]:
                append(no)
            else:
                append(maybe)
        return results

    def size_in_entries(self) -> int:
        """Eight numbers per vertex."""
        return 8 * self._graph.num_vertices
