"""Plain reachability indexes (§3, Table 1 of the survey).

Importing this package registers every index with
:mod:`repro.core.registry`, from which the Table 1 taxonomy is
regenerated.
"""

from repro.plain.bfl import BFLIndex
from repro.plain.dagger import DaggerIndex
from repro.plain.dbl import DBLIndex
from repro.plain.dual_labeling import DualLabelingIndex
from repro.plain.feline import FelineIndex
from repro.plain.ferrari import FerrariIndex
from repro.plain.grail import GrailIndex
from repro.plain.gripp import GrippIndex
from repro.plain.hl import HLIndex
from repro.plain.interval import TreeCoverIndex
from repro.plain.ip import IPIndex
from repro.plain.oreach import OReachIndex
from repro.plain.parallel import BatchedPLLIndex
from repro.plain.scarab import ScarabBackboneIndex
from repro.plain.path_hop import PathHopIndex
from repro.plain.path_tree import PathTreeIndex
from repro.plain.pll import DLIndex, PLLIndex
from repro.plain.preach import PReaCHIndex
from repro.plain.sspi import TreeSSPIIndex
from repro.plain.threehop import ThreeHopIndex
from repro.plain.tol import HOPIIndex, TFLIndex, TOLIndex, U2HopIndex
from repro.plain.transitive_closure import TransitiveClosureIndex
from repro.plain.twohop import TwoHopIndex

__all__ = [
    "BFLIndex",
    "DaggerIndex",
    "DBLIndex",
    "DualLabelingIndex",
    "FelineIndex",
    "FerrariIndex",
    "GrailIndex",
    "GrippIndex",
    "HLIndex",
    "HOPIIndex",
    "IPIndex",
    "OReachIndex",
    "PathHopIndex",
    "PathTreeIndex",
    "DLIndex",
    "PLLIndex",
    "PReaCHIndex",
    "TreeSSPIIndex",
    "ThreeHopIndex",
    "TFLIndex",
    "TOLIndex",
    "U2HopIndex",
    "TransitiveClosureIndex",
    "TreeCoverIndex",
    "TwoHopIndex",
    # §3.4 / §5 extensions (not Table 1 rows; see DESIGN.md)
    "BatchedPLLIndex",
    "ScarabBackboneIndex",
]
