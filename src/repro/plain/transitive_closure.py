"""Full transitive closure — the naive complete index (§2.3).

Stores, for every vertex, the bitset of all vertices it reaches.  Query
time is O(1); the index size is the number of reachable pairs, which is
why the survey calls TC materialisation "infeasible in practice" — the
size benchmarks demonstrate the quadratic blow-up against every other
index.

Works on general graphs: the closure is computed over the SCC condensation
in reverse topological order and then expanded through the SCC map lazily
at query time.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import condense
from repro.kernels import csr_of, descendant_bitsets
from repro import accel
from repro.obs.build import build_phase

__all__ = ["TransitiveClosureIndex"]


@register_plain
class TransitiveClosureIndex(ReachabilityIndex):
    """Materialised transitive closure over the SCC condensation."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="TC",
        framework="TC",
        complete=True,
        input_kind="General",
        dynamic="no",
    )

    def __init__(self, graph: DiGraph, scc_of: list[int], closure: list[int]) -> None:
        super().__init__(graph)
        self._scc_of = scc_of
        self._closure = closure  # closure[c] = bitset of condensed vertices c reaches

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "TransitiveClosureIndex":
        """Compute per-SCC descendant bitsets in reverse topological order.

        The sweep is the shared :func:`repro.kernels.descendant_bitsets`
        kernel over the condensation's CSR snapshot — one flat pass over
        the DAG's edges instead of per-vertex adjacency accessor calls.
        """
        with build_phase("scc-condense") as phase:
            condensation = condense(graph)
            phase.annotate(sccs=condensation.dag.num_vertices)
        with build_phase("closure-kernel") as phase:
            closure = descendant_bitsets(csr_of(condensation.dag))
            phase.annotate(backend=accel.backend_name())
        return cls(graph, condensation.scc_of, closure)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        cs = self._scc_of[source]
        ct = self._scc_of[target]
        if (self._closure[cs] >> ct) & 1:
            return TriState.YES
        return TriState.NO

    def lookup_batch(self, pairs: Sequence[tuple[int, int]]) -> list[TriState]:
        """Direct closure probes with the hot arrays bound once."""
        self._check_pairs(pairs)
        scc_of = self._scc_of
        closure = self._closure
        yes, no = TriState.YES, TriState.NO
        return [
            yes if (closure[scc_of[s]] >> scc_of[t]) & 1 else no for s, t in pairs
        ]

    def size_in_entries(self) -> int:
        """Number of stored reachable pairs (the TC's defining cost)."""
        return sum(bits.bit_count() for bits in self._closure)
