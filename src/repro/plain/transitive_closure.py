"""Full transitive closure — the naive complete index (§2.3).

Stores, for every vertex, the bitset of all vertices it reaches.  Query
time is O(1); the index size is the number of reachable pairs, which is
why the survey calls TC materialisation "infeasible in practice" — the
size benchmarks demonstrate the quadratic blow-up against every other
index.

Works on general graphs: the closure is computed over the SCC condensation
in reverse topological order and then expanded through the SCC map lazily
at query time.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import chain
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import condense
from repro.kernels import csr_of, descendant_bitsets
from repro import accel
from repro.obs.build import build_phase

__all__ = ["TransitiveClosureIndex"]

# set-bit positions per byte value, for decoding closure bitsets without
# repeated big-int arithmetic (isolating the lowest bit of an n-bit mask
# copies all n bits every iteration; walking bytes copies them once)
_BYTE_BITS = [tuple(b for b in range(8) if (byte >> b) & 1) for byte in range(256)]


def _bits_of(mask: int) -> list[int]:
    """Indices of the set bits in ``mask``, decoded one byte at a time."""
    if accel.use_for_graph(mask.bit_length()):
        from repro.accel.bitset import unpacked_indices

        return unpacked_indices(mask)
    positions: list[int] = []
    data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    extend = positions.extend
    for base in range(0, len(data) * 8, 8):
        byte = data[base >> 3]
        if byte:
            extend(base + b for b in _BYTE_BITS[byte])
    return positions


@register_plain
class TransitiveClosureIndex(ReachabilityIndex):
    """Materialised transitive closure over the SCC condensation."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="TC",
        framework="TC",
        complete=True,
        input_kind="General",
        dynamic="no",
    )

    def __init__(self, graph: DiGraph, scc_of: list[int], closure: list[int]) -> None:
        super().__init__(graph)
        self._scc_of = scc_of
        self._closure = closure  # closure[c] = bitset of condensed vertices c reaches

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "TransitiveClosureIndex":
        """Compute per-SCC descendant bitsets in reverse topological order.

        The sweep is the shared :func:`repro.kernels.descendant_bitsets`
        kernel over the condensation's CSR snapshot — one flat pass over
        the DAG's edges instead of per-vertex adjacency accessor calls.
        """
        with build_phase("scc-condense") as phase:
            condensation = condense(graph)
            phase.annotate(sccs=condensation.dag.num_vertices)
        with build_phase("closure-kernel") as phase:
            closure = descendant_bitsets(csr_of(condensation.dag))
            phase.annotate(backend=accel.backend_name())
        return cls(graph, condensation.scc_of, closure)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        cs = self._scc_of[source]
        ct = self._scc_of[target]
        if (self._closure[cs] >> ct) & 1:
            return TriState.YES
        return TriState.NO

    def lookup_batch(self, pairs: Sequence[tuple[int, int]]) -> list[TriState]:
        """Direct closure probes with the hot arrays bound once."""
        self._check_pairs(pairs)
        scc_of = self._scc_of
        closure = self._closure
        yes, no = TriState.YES, TriState.NO
        return [
            yes if (closure[scc_of[s]] >> scc_of[t]) & 1 else no for s, t in pairs
        ]

    def _scc_members(self) -> list[list[int]]:
        """Original vertices per condensed vertex, built lazily and cached."""
        members = self.__dict__.get("_members")
        if members is None:
            members = [[] for _ in range(len(self._closure))]
            for v, c in enumerate(self._scc_of):
                members[c].append(v)
            self._members = members
        return members

    def _enumerate_fast(
        self, vertex: int, forward: bool
    ) -> tuple[frozenset[int], str, tuple[str, ...]]:
        """Direct successor-set read: expand one closure bitset.

        Forward, the stored bitset of ``scc(vertex)`` *is* the answer
        over condensed vertices; backward, one linear pass collects the
        SCCs whose bitset has our bit.  Either way the SCC membership
        lists expand condensed ids to original vertices — no graph
        traversal at all.
        """
        closure = self._closure
        members = self._scc_members()
        cv = self._scc_of[vertex]
        if forward:
            sccs = _bits_of(closure[cv])
        else:
            bit = 1 << cv
            sccs = [c for c in range(len(closure)) if closure[c] & bit]
        result = frozenset(chain.from_iterable(map(members.__getitem__, sccs)))
        direction = "descendant" if forward else "ancestor"
        return (
            result,
            "enum_closure",
            (
                f"closure read: {len(sccs)} {direction} SCCs expanded to "
                f"{len(result)} vertices",
            ),
        )

    def size_in_entries(self) -> int:
        """Number of stored reachable pairs (the TC's defining cost)."""
        return sum(bits.bit_count() for bits in self._closure)

    def __getstate__(self) -> dict[str, object]:
        """Persistable state: drop the lazy SCC-membership expansion."""
        state = super().__getstate__()
        state.pop("_members", None)
        return state
