"""The pruned 2-hop labeling engine shared by the TOL family (§3.2).

The survey observes that TFL, DL and PLL are all *instantiations of TOL*:
one engine that takes a strict total order ``o`` on vertices and, for each
vertex ``v`` in order, runs a forward and a backward BFS.  A visited vertex
``u`` receives ``v`` in ``L_in(u)`` (forward) or ``L_out(u)`` (backward)
unless the pair ``(v, u)`` is already covered by previously assigned labels
— in which case the search is pruned at ``u``.  Pruning at any vertex
ranked before ``v`` is a special case of coverage, which is how the paper
phrases the termination rule.

The engine works on general graphs (cycles are handled by the BFS visited
sets), so PLL/DL can run directly on cyclic input while TOL/TFL keep their
DAG-input classification.

2-hop query rule (§3.2): ``Qr(s, t)`` iff ``s = t``, ``s ∈ L_in(t)``,
``t ∈ L_out(s)``, or ``L_out(s) ∩ L_in(t) ≠ ∅``.
"""

from __future__ import annotations

from collections import deque

from repro import accel as _accel
from repro.graphs.digraph import DiGraph

__all__ = ["TwoHopLabels", "build_pruned_labels", "degree_order", "labels_cover"]


class TwoHopLabels:
    """Per-vertex ``L_in`` / ``L_out`` hop sets with the 2-hop query rule.

    Large batched probes may route through a flattened
    :class:`repro.accel.labels.LabelArrays` twin when the acceleration
    layer is enabled; the twin is cached per label *version*, so any
    code that mutates ``l_in``/``l_out`` in place must call
    :meth:`bump_version` (the engine's mutators here and in
    :mod:`repro.plain.parallel` already do).
    """

    __slots__ = ("l_in", "l_out", "_version", "_arrays", "_inverted")

    def __init__(self, num_vertices: int) -> None:
        self.l_in: list[set[int]] = [set() for _ in range(num_vertices)]
        self.l_out: list[set[int]] = [set() for _ in range(num_vertices)]
        self._version = 0
        self._arrays: tuple[int, object] | None = None
        self._inverted: tuple[int, tuple[dict, dict]] | None = None

    def bump_version(self) -> None:
        """Invalidate the flattened-array cache after an in-place mutation."""
        self._version += 1

    def _label_arrays(self):
        """The flattened twin of the current labels, built lazily."""
        cached = self._arrays
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from repro.accel.labels import LabelArrays

        arrays = LabelArrays(self.l_in, self.l_out)
        self._arrays = (self._version, arrays)
        return arrays

    def __getstate__(self) -> dict[str, object]:
        """Persistable state: the sets only, never the numpy twin."""
        return {"l_in": self.l_in, "l_out": self.l_out}

    def __setstate__(self, state: object) -> None:
        # Labels pickled before the cache slots existed arrive as the
        # default ``(None, slots)`` tuple; both forms must keep loading.
        if isinstance(state, tuple):
            state = state[1] or {}
        assert isinstance(state, dict)
        self.l_in = state["l_in"]
        self.l_out = state["l_out"]
        self._version = 0
        self._arrays = None
        self._inverted = None

    def covered(self, source: int, target: int) -> bool:
        """The §3.2 query rule over the current labels."""
        if source == target:
            return True
        l_out = self.l_out[source]
        l_in = self.l_in[target]
        if source in l_in or target in l_out:
            return True
        return not l_out.isdisjoint(l_in)

    def covered_many(self, pairs) -> list[bool]:
        """The query rule over a batch of pairs, label arrays bound once.

        Batches past the acceleration threshold vectorize through the
        flattened twin (one membership scatter + gather/reduceat per
        distinct source); smaller batches — and every batch when the
        layer is off — keep the authoritative set probes.
        """
        if _accel.use_for_batch(len(pairs)):
            return self._label_arrays().covered_many(pairs)
        l_in_all = self.l_in
        l_out_all = self.l_out
        answers: list[bool] = []
        append = answers.append
        for source, target in pairs:
            if source == target:
                append(True)
                continue
            l_out = l_out_all[source]
            l_in = l_in_all[target]
            append(
                source in l_in or target in l_out or not l_out.isdisjoint(l_in)
            )
        return answers

    def _hub_inverted(self) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
        """Inverted hub maps, built lazily and cached per label version.

        ``in_of[h]`` lists the vertices carrying ``h`` in their ``L_in``
        (the vertices ``h`` reaches); ``out_of[h]`` the vertices carrying
        ``h`` in ``L_out`` (the vertices reaching ``h``).  These are what
        turn the pairwise §3.2 query rule into set *enumeration*.
        """
        cached = self._inverted
        if cached is not None and cached[0] == self._version:
            return cached[1]
        in_of: dict[int, list[int]] = {}
        out_of: dict[int, list[int]] = {}
        for v, hops in enumerate(self.l_in):
            for h in hops:
                in_of.setdefault(h, []).append(v)
        for v, hops in enumerate(self.l_out):
            for h in hops:
                out_of.setdefault(h, []).append(v)
        self._inverted = (self._version, (in_of, out_of))
        return in_of, out_of

    def enumerate_from(self, source: int) -> set[int]:
        """All targets the §3.2 rule covers from ``source``.

        The rule ``Qr(s, t)`` iff ``s = t``, ``s ∈ L_in(t)``,
        ``t ∈ L_out(s)``, or ``L_out(s) ∩ L_in(t) ≠ ∅`` inverts to
        ``{s} ∪ L_out(s) ∪ ⋃_{h ∈ L_out(s) ∪ {s}} in_of[h]`` — a pure
        label join, exact whenever the labels are complete.
        """
        in_of, _out_of = self._hub_inverted()
        hops = self.l_out[source]
        result = set(hops)
        result.add(source)
        result.update(in_of.get(source, ()))
        for h in hops:
            members = in_of.get(h)
            if members is not None:
                result.update(members)
        return result

    def enumerate_to(self, target: int) -> set[int]:
        """All sources the §3.2 rule covers into ``target`` (the mirror)."""
        _in_of, out_of = self._hub_inverted()
        hops = self.l_in[target]
        result = set(hops)
        result.add(target)
        result.update(out_of.get(target, ()))
        for h in hops:
            members = out_of.get(h)
            if members is not None:
                result.update(members)
        return result

    def size_in_entries(self) -> int:
        """Σ |L_out(v)| + |L_in(v)| — the paper's 2-hop size metric."""
        return sum(len(s) for s in self.l_in) + sum(len(s) for s in self.l_out)

    def remove_hop(self, hop: int) -> None:
        """Strip every label entry referring to ``hop`` (used by maintenance)."""
        self.bump_version()
        for entries in self.l_in:
            entries.discard(hop)
        for entries in self.l_out:
            entries.discard(hop)


def labels_cover(labels: TwoHopLabels, source: int, target: int) -> bool:
    """Convenience wrapper over :meth:`TwoHopLabels.covered`."""
    return labels.covered(source, target)


def enumerate_covered(
    labels: TwoHopLabels, vertex: int, forward: bool
) -> tuple[frozenset[int], str, tuple[str, ...]]:
    """The shared ``_enumerate_fast`` body of every complete 2-hop family.

    Exact only when ``labels`` are complete (the query rule alone decides
    every pair), which holds for PLL/DL/TOL/TFL/2-Hop and friends.
    """
    if forward:
        members = labels.enumerate_from(vertex)
        hubs = len(labels.l_out[vertex]) + 1
    else:
        members = labels.enumerate_to(vertex)
        hubs = len(labels.l_in[vertex]) + 1
    return (
        frozenset(members),
        "enum_label_join",
        (
            f"label-join enumeration: {hubs} hubs joined through the "
            f"inverted hub index to {len(members)} vertices",
        ),
    )


def covered_below(
    labels: TwoHopLabels,
    rank: dict[int, int],
    source: int,
    target: int,
    limit: int,
) -> bool:
    """The query rule restricted to hops ranked before ``limit``.

    Pruning a labeling pass is only safe against *lower-ranked* coverage:
    that is what makes the labels canonical (hop ``h`` labels exactly the
    pairs whose min-rank path vertex is ``h``), and canonical labels are
    what keeps the §3.2 maintenance correct across interleaved updates —
    higher-ranked coverage can vanish in a later deletion without the
    pruned hop ever being scheduled for repair.
    """
    if source == target:
        return True
    l_out = labels.l_out[source]
    l_in = labels.l_in[target]
    if source in l_in and rank[source] < limit:
        return True
    if target in l_out and rank[target] < limit:
        return True
    if len(l_out) > len(l_in):
        smaller, larger = l_in, l_out
    else:
        smaller, larger = l_out, l_in
    for hop in smaller:
        if hop in larger and rank[hop] < limit:
            return True
    return False


def degree_order(graph: DiGraph) -> list[int]:
    """Vertices by decreasing total degree (ties by id) — the DL/PLL order."""
    return sorted(
        graph.vertices(), key=lambda v: (-(graph.in_degree(v) + graph.out_degree(v)), v)
    )


def resume_forward(
    graph: DiGraph,
    labels: TwoHopLabels,
    rank: dict[int, int],
    hop: int,
    start: int,
) -> None:
    """(Re)run the pruned forward BFS of ``hop`` from ``start``.

    Adds ``hop`` to ``L_in`` of every reached vertex whose pair is not
    covered by a *lower-ranked* hop (see :func:`covered_below`).
    ``start == hop`` performs the full labeling pass; other starts resume
    the search across a newly inserted edge (dynamic maintenance).
    """
    labels.bump_version()
    limit = rank[hop]
    queue: deque[int] = deque()
    visited = {start}
    if start == hop:
        queue.append(start)
    else:
        if covered_below(labels, rank, hop, start, limit):
            return
        labels.l_in[start].add(hop)
        queue.append(start)
    while queue:
        v = queue.popleft()
        for w in graph.out_neighbors(v):
            if w in visited or w == hop:
                continue
            visited.add(w)
            if covered_below(labels, rank, hop, w, limit):
                continue  # prune: pair covered by an earlier-ranked hop
            labels.l_in[w].add(hop)
            queue.append(w)


def resume_backward(
    graph: DiGraph,
    labels: TwoHopLabels,
    rank: dict[int, int],
    hop: int,
    start: int,
) -> None:
    """(Re)run the pruned backward BFS of ``hop`` from ``start``."""
    labels.bump_version()
    limit = rank[hop]
    queue: deque[int] = deque()
    visited = {start}
    if start == hop:
        queue.append(start)
    else:
        if covered_below(labels, rank, start, hop, limit):
            return
        labels.l_out[start].add(hop)
        queue.append(start)
    while queue:
        v = queue.popleft()
        for w in graph.in_neighbors(v):
            if w in visited or w == hop:
                continue
            visited.add(w)
            if covered_below(labels, rank, w, hop, limit):
                continue
            labels.l_out[w].add(hop)
            queue.append(w)


def build_pruned_labels(graph: DiGraph, order: list[int]) -> TwoHopLabels:
    """Run the TOL engine over ``order`` and return complete 2-hop labels.

    During a fresh build only lower-ranked hops have labels, so the
    rank-restricted pruning coincides with the plain coverage rule.
    """
    labels = TwoHopLabels(graph.num_vertices)
    rank = {v: i for i, v in enumerate(order)}
    for hop in order:
        resume_forward(graph, labels, rank, hop, hop)
        resume_backward(graph, labels, rank, hop, hop)
    return labels
