"""GRAIL: scalable reachability via k random interval labelings (§3.1).

GRAIL records *exactly k* intervals per vertex, one per random depth-first
traversal of the DAG.  In traversal ``i``, vertex ``v`` gets
``L_i(v) = [a_i(v), b_i(v)]`` where ``b_i(v)`` is its post-order rank and
``a_i(v)`` the minimum rank over everything reachable from ``v``.  If ``s``
reaches ``t`` then ``L_i(t) ⊆ L_i(s)`` for every ``i`` — so a violated
containment certifies non-reachability (no false negatives) while full
containment only says MAYBE, resolved by index-guided traversal.

Build time and size are O(k·(|V|+|E|)): linear in the graph, the property
that (per the survey) first made reachability indexing feasible on graphs
with millions of vertices.
"""

from __future__ import annotations

import random
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.errors import NotADAGError
from repro.graphs.digraph import DiGraph
from repro.kernels import batch_reachable, csr_of
from repro.obs.build import build_phase

__all__ = ["GrailIndex", "random_postorder_labeling"]


def random_postorder_labeling(
    graph: DiGraph, rng: random.Random
) -> tuple[list[int], list[int]]:
    """One randomized DFS labeling: (min-rank ``a``, post-order rank ``b``).

    The DFS visits roots and children in random order.  ``a(v)`` is the
    minimum post-order rank over all vertices reachable from ``v`` (it
    propagates through *every* out-edge, not just tree edges), which is what
    gives the containment property on DAGs.
    """
    n = graph.num_vertices
    b = [0] * n
    a = [0] * n
    state = bytearray(n)  # 0 = unvisited, 1 = on stack, 2 = done
    counter = 0
    roots = [v for v in range(n) if graph.in_degree(v) == 0]
    if not roots:  # fully cyclic input would have no roots
        roots = list(range(n))
    rng.shuffle(roots)
    starts = roots + list(range(n))
    for start in starts:
        if state[start]:
            continue
        # frames hold (vertex, shuffled out-neighbours, cursor)
        first_children = list(graph.out_neighbors(start))
        rng.shuffle(first_children)
        stack: list[tuple[int, list[int], int]] = [(start, first_children, 0)]
        state[start] = 1
        while stack:
            v, children, cursor = stack[-1]
            if cursor < len(children):
                stack[-1] = (v, children, cursor + 1)
                w = children[cursor]
                if state[w] == 0:
                    state[w] = 1
                    grandchildren = list(graph.out_neighbors(w))
                    rng.shuffle(grandchildren)
                    stack.append((w, grandchildren, 0))
                elif state[w] == 1:
                    raise NotADAGError("GRAIL requires a DAG")
                continue
            stack.pop()
            state[v] = 2
            counter += 1
            b[v] = counter
            low = counter
            for w in graph.out_neighbors(v):
                if a[w] < low:
                    low = a[w]
            a[v] = low
    return a, b


@register_plain
class GrailIndex(ReachabilityIndex):
    """GRAIL: exactly ``k`` random-traversal intervals per vertex.

    ``build(..., exceptions=True)`` additionally materialises the original
    paper's *exception lists*: for each vertex, the false positives its
    intervals admit.  With exceptions the lookup is exact (YES/NO, no
    guided traversal needed) at the cost of a TC-flavoured construction
    pass — the trade-off the GRAIL paper reserves for smaller graphs.
    """

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="GRAIL",
        framework="Tree cover",
        complete=False,
        input_kind="DAG",
        dynamic="no",
    )

    DEFAULT_K = 3

    def __init__(
        self,
        graph: DiGraph,
        labelings: list[tuple[list[int], list[int]]],
        exceptions: list[set[int]] | None = None,
    ) -> None:
        super().__init__(graph)
        self._labelings = labelings
        self._exceptions = exceptions

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        k: int = DEFAULT_K,
        seed: int = 0,
        exceptions: bool = False,
        **params: object,
    ) -> "GrailIndex":
        """Run ``k`` random DFS labelings (deterministic given ``seed``)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rng = random.Random(seed)
        with build_phase("random-labelings", k=k):
            labelings = [random_postorder_labeling(graph, rng) for _ in range(k)]
        index = cls(graph, labelings)
        if exceptions:
            with build_phase("exception-lists") as phase:
                index._exceptions = index._compute_exceptions()
                phase.annotate(exceptions=sum(len(s) for s in index._exceptions))
        return index

    def _compute_exceptions(self) -> list[set[int]]:
        """Per-vertex interval false positives, from the closure kernel."""
        from repro.kernels import csr_of, descendant_bitsets

        n = self._graph.num_vertices
        reachable = descendant_bitsets(csr_of(self._graph))
        exceptions: list[set[int]] = [set() for _ in range(n)]
        for v in range(n):
            reach = reachable[v]
            for t in range(n):
                if t == v or (reach >> t) & 1:
                    continue
                if all(
                    a[v] <= a[t] and b[t] <= b[v] for a, b in self._labelings
                ):
                    exceptions[v].add(t)
        return exceptions

    @property
    def k(self) -> int:
        """Number of interval labelings."""
        return len(self._labelings)

    @property
    def has_exceptions(self) -> bool:
        """Whether exception lists were materialised (exact lookups)."""
        return self._exceptions is not None

    def lookup(self, source: int, target: int) -> TriState:
        """NO on any violated containment; MAYBE otherwise (no false negatives).

        With exception lists, MAYBE is refined to an exact YES/NO.
        """
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        for a, b in self._labelings:
            if not (a[source] <= a[target] and b[target] <= b[source]):
                return TriState.NO
        if self._exceptions is not None:
            if target in self._exceptions[source]:
                return TriState.NO
            return TriState.YES
        return TriState.MAYBE

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched containment checks with the labelings bound once."""
        self._check_pairs(pairs)
        labelings = self._labelings
        exceptions = self._exceptions
        yes, no, maybe = TriState.YES, TriState.NO, TriState.MAYBE
        results: list[TriState] = []
        append = results.append
        for s, t in pairs:
            if s == t:
                append(yes)
                continue
            for a, b in labelings:
                if not (a[s] <= a[t] and b[t] <= b[s]):
                    append(no)
                    break
            else:
                if exceptions is None:
                    append(maybe)
                else:
                    append(no if t in exceptions[s] else yes)
        return results

    def _enumerate_fast(
        self, vertex: int, forward: bool
    ) -> tuple[frozenset[int], str, tuple[str, ...]]:
        """Subtree-interval scan: containment bounds the candidate set.

        No false negatives means the true answer is a subset of the
        vertices whose k containments all hold.  With exception lists
        the scan is already exact; without them the surviving candidates
        are confirmed by one shared bit-parallel kernel sweep.
        """
        labelings = self._labelings
        exceptions = self._exceptions
        n = self._graph.num_vertices
        if forward:
            candidates = [
                t for t in range(n)
                if t != vertex and all(
                    a[vertex] <= a[t] and b[t] <= b[vertex] for a, b in labelings
                )
            ]
        else:
            candidates = [
                s for s in range(n)
                if s != vertex and all(
                    a[s] <= a[vertex] and b[vertex] <= b[s] for a, b in labelings
                )
            ]
        if exceptions is not None:
            if forward:
                excluded = exceptions[vertex]
                members = [t for t in candidates if t not in excluded]
            else:
                members = [s for s in candidates if vertex not in exceptions[s]]
            return (
                frozenset(members) | {vertex},
                "enum_interval",
                (
                    f"interval scan over {self.k} labelings kept "
                    f"{len(candidates)} candidates; exception lists made "
                    f"the scan exact ({len(members) + 1} vertices)",
                ),
            )
        pairs = (
            [(vertex, t) for t in candidates]
            if forward
            else [(s, vertex) for s in candidates]
        )
        hits = batch_reachable(csr_of(self._graph), pairs)
        members = [c for c, hit in zip(candidates, hits) if hit]
        return (
            frozenset(members) | {vertex},
            "enum_interval",
            (
                f"interval scan over {self.k} labelings kept "
                f"{len(candidates)} candidates; kernel sweep confirmed "
                f"{len(members)}",
            ),
        )

    def size_in_entries(self) -> int:
        """k intervals per vertex, plus any exception entries."""
        total = self.k * self._graph.num_vertices
        if self._exceptions is not None:
            total += sum(len(s) for s in self._exceptions)
        return total
