"""BFL: Bloom-filter labeling — approximate TC (§3.3).

Su et al. replace IP's k-min sketch with a Bloom filter: every vertex is
hashed to a few bits, ``L_out(v)`` ORs the hashes of everything ``v``
reaches, ``L_in(v)`` the dual.  If ``s`` reaches ``t`` then
``Out(t) ⊆ Out(s)``, so ``L_out(t)`` must be a sub-mask of ``L_out(s)`` —
a violated sub-mask certifies NO with no false negatives.  The survey
calls BFL "one of the state-of-the-art techniques": the filters build in
one linear sweep and occupy a constant number of machine words per vertex,
which the build-scaling benchmark demonstrates.

MAYBE answers fall back to index-guided traversal with the recursive
pruning rule of §3.3 (a frontier vertex whose filter rules ``t`` out is
skipped together with its whole out-neighbourhood).
"""

from __future__ import annotations

import random
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase

__all__ = ["BFLIndex"]


@register_plain
class BFLIndex(ReachabilityIndex):
    """BFL: Bloom filters over descendant / ancestor sets."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="BFL",
        framework="Approximate TC",
        complete=False,
        input_kind="DAG",
        dynamic="no",
    )

    DEFAULT_BITS = 160
    DEFAULT_HASHES = 2

    def __init__(
        self, graph: DiGraph, bits: int, out_filter: list[int], in_filter: list[int]
    ) -> None:
        super().__init__(graph)
        self._bits = bits
        self._out = out_filter
        self._in = in_filter

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        bits: int = DEFAULT_BITS,
        num_hashes: int = DEFAULT_HASHES,
        seed: int = 0,
        **params: object,
    ) -> "BFLIndex":
        if bits < 1 or num_hashes < 1:
            raise ValueError("bits and num_hashes must be >= 1")
        n = graph.num_vertices
        with build_phase("hash-signatures", bits=bits, hashes=num_hashes):
            rng = random.Random(seed)
            signature = [0] * n
            for v in range(n):
                mask = 0
                for _ in range(num_hashes):
                    mask |= 1 << rng.randrange(bits)
                signature[v] = mask
        with build_phase("filter-merge"):
            order = topological_order(graph)
            out_filter = [0] * n
            for v in reversed(order):
                mask = signature[v]
                for w in graph.out_neighbors(v):
                    mask |= out_filter[w]
                out_filter[v] = mask
            in_filter = [0] * n
            for v in order:
                mask = signature[v]
                for u in graph.in_neighbors(v):
                    mask |= in_filter[u]
                in_filter[v] = mask
        return cls(graph, bits, out_filter, in_filter)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        if self._out[target] & ~self._out[source]:
            return TriState.NO
        if self._in[source] & ~self._in[target]:
            return TriState.NO
        return TriState.MAYBE

    def size_in_entries(self) -> int:
        """Two filter words per vertex."""
        return 2 * self._graph.num_vertices

    @property
    def bits(self) -> int:
        """Filter width in bits."""
        return self._bits
