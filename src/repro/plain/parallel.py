"""Batch-synchronous (parallelisable) 2-hop labeling — the §5 challenge.

The survey closes §5 with "the parallel computation of indexes (e.g.,
parallel 2-hop indexing) is also worth exploring", citing Jin et al.'s
*Parallelizing Pruned Landmark Labeling*, whose core difficulty is the
sequential dependency of pruning on all earlier hops.  This module
implements that paper's resolution — batch-synchronous label
construction with commit-time validation:

1. the total order is cut into batches;
2. within a batch every hop runs its pruned BFS against a *snapshot* of
   the labels committed by earlier batches.  These searches share no
   state, so they can run concurrently — the snapshot just makes their
   pruning weaker, so each produces a **superset** of the entries the
   sequential algorithm would;
3. a sequential commit phase walks the batch in rank order and re-checks
   every candidate entry against the current labels, discarding the ones
   made redundant by same-batch predecessors.

The result is a sound and complete labeling whose size approaches the
sequential one as the batch size shrinks (batch size 1 *is* sequential
PLL).  ``workers="thread"`` demonstrates the concurrency structure
(CPython's GIL caps the speedup; the algorithm itself is
embarrassingly parallel within a batch), ``workers="serial"`` runs the
same two-phase algorithm without an executor.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import ClassVar, Literal

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.graphs.digraph import DiGraph
from repro.obs.build import build_phase
from repro.plain.pruned import TwoHopLabels, degree_order, enumerate_covered

__all__ = ["batched_pruned_labels", "BatchedPLLIndex"]

_Candidates = tuple[list[tuple[int, int]], list[tuple[int, int]]]
# (forward candidates as (vertex, hop), backward candidates as (vertex, hop))


def _collect_candidates(
    graph: DiGraph, labels: TwoHopLabels, hop: int
) -> _Candidates:
    """Phase 1: one hop's pruned BFS against the committed snapshot."""
    forward: list[tuple[int, int]] = []
    queue: deque[int] = deque((hop,))
    visited = {hop}
    while queue:
        v = queue.popleft()
        for w in graph.out_neighbors(v):
            if w in visited or w == hop:
                continue
            visited.add(w)
            if labels.covered(hop, w):
                continue
            forward.append((w, hop))
            queue.append(w)
    backward: list[tuple[int, int]] = []
    queue = deque((hop,))
    visited = {hop}
    while queue:
        v = queue.popleft()
        for w in graph.in_neighbors(v):
            if w in visited or w == hop:
                continue
            visited.add(w)
            if labels.covered(w, hop):
                continue
            backward.append((w, hop))
            queue.append(w)
    return forward, backward


def batched_pruned_labels(
    graph: DiGraph,
    order: list[int],
    batch_size: int = 16,
    workers: Literal["serial", "thread"] = "serial",
    max_workers: int | None = None,
) -> TwoHopLabels:
    """Build complete 2-hop labels with the batch-synchronous algorithm."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    labels = TwoHopLabels(graph.num_vertices)
    executor = (
        ThreadPoolExecutor(max_workers=max_workers) if workers == "thread" else None
    )
    try:
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            if executor is None:
                results = [
                    _collect_candidates(graph, labels, hop) for hop in batch
                ]
            else:
                results = list(
                    executor.map(
                        lambda hop: _collect_candidates(graph, labels, hop), batch
                    )
                )
            # phase 2: sequential commit in rank order with re-validation
            labels.bump_version()
            for (forward, backward) in results:
                for vertex, hop in forward:
                    if not labels.covered(hop, vertex):
                        labels.l_in[vertex].add(hop)
                for vertex, hop in backward:
                    if not labels.covered(vertex, hop):
                        labels.l_out[vertex].add(hop)
    finally:
        if executor is not None:
            executor.shutdown()
    return labels


class BatchedPLLIndex(ReachabilityIndex):
    """PLL built with the batch-synchronous construction (§5 extension).

    Answers are identical to :class:`~repro.plain.pll.PLLIndex`; the
    labels may carry a small amount of batch-induced redundancy.  Not
    registered in the Table 1 registry — the paper's table predates the
    parallel construction.
    """

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Batched-PLL",
        framework="2-Hop",
        complete=True,
        input_kind="General",
        dynamic="no",
    )

    def __init__(self, graph: DiGraph, labels: TwoHopLabels, batch_size: int) -> None:
        super().__init__(graph)
        self._labels = labels
        self._batch_size = batch_size

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        batch_size: int = 16,
        workers: Literal["serial", "thread"] = "serial",
        **params: object,
    ) -> "BatchedPLLIndex":
        with build_phase("batched-pruned-labeling", batch_size=batch_size, workers=workers):
            labels = batched_pruned_labels(
                graph, degree_order(graph), batch_size=batch_size, workers=workers
            )
        return cls(graph, labels, batch_size)

    @property
    def labels(self) -> TwoHopLabels:
        """The underlying 2-hop label sets."""
        return self._labels

    @property
    def batch_size(self) -> int:
        """Hops labeled per synchronisation round."""
        return self._batch_size

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if self._labels.covered(source, target):
            return TriState.YES
        return TriState.NO

    def _enumerate_fast(self, vertex: int, forward: bool):
        """Label-join enumeration through the inverted hub index."""
        return enumerate_covered(self._labels, vertex, forward)

    def size_in_entries(self) -> int:
        return self._labels.size_in_entries()
