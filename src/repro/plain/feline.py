"""Feline: reachability via a dominance drawing (§3.4).

Veloso et al. embed the DAG in a two-dimensional grid using two
topological orders with *different* tie-breaking: if ``s`` reaches ``t``
then ``s`` strictly dominates ``t`` in both coordinates.  A violated
dominance check is therefore a NO certificate; a satisfied one is MAYBE
and triggers the refined online search (our index-guided traversal).  A
third coordinate — the topological level — sharpens the filter the same
way Feline's heuristic extras do.

The second order is built greedily to *disagree* with the first as much
as possible (processing ready vertices in reverse first-coordinate
order), which is what makes the rectangle ``dom(s) ⊇ dom(t)`` a tight
approximation of real reachability.
"""

from __future__ import annotations

import heapq
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_levels, topological_order
from repro.obs.build import build_phase

__all__ = ["FelineIndex"]


@register_plain
class FelineIndex(ReachabilityIndex):
    """Feline: two-coordinate dominance drawing plus level filter."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Feline",
        framework="-",
        complete=False,
        input_kind="DAG",
        dynamic="no",
    )

    def __init__(
        self, graph: DiGraph, x: list[int], y: list[int], level: list[int]
    ) -> None:
        super().__init__(graph)
        self._x = x
        self._y = y
        self._level = level

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "FelineIndex":
        n = graph.num_vertices
        with build_phase("x-order", vertices=n):
            x = [0] * n
            for position, v in enumerate(topological_order(graph)):
                x[v] = position
        # second topological order, ties broken by *descending* x — the
        # greedy counter-order of the Feline paper.
        with build_phase("y-counter-order"):
            remaining = [graph.in_degree(v) for v in range(n)]
            heap = [(-x[v], v) for v in range(n) if remaining[v] == 0]
            heapq.heapify(heap)
            y = [0] * n
            position = 0
            while heap:
                _, v = heapq.heappop(heap)
                y[v] = position
                position += 1
                for w in graph.out_neighbors(v):
                    remaining[w] -= 1
                    if remaining[w] == 0:
                        heapq.heappush(heap, (-x[w], w))
        with build_phase("topological-levels"):
            level = topological_levels(graph)
        return cls(graph, x, y, level)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        if self._x[source] >= self._x[target]:
            return TriState.NO
        if self._y[source] >= self._y[target]:
            return TriState.NO
        if self._level[source] >= self._level[target]:
            return TriState.NO
        return TriState.MAYBE

    def size_in_entries(self) -> int:
        """Three coordinates per vertex."""
        return 3 * self._graph.num_vertices

    @property
    def coordinates(self) -> list[tuple[int, int]]:
        """The (x, y) dominance-drawing coordinates per vertex."""
        return list(zip(self._x, self._y))
