"""Path-tree: reachability via a path (chain) cover of the DAG (§3.1).

Jin et al.'s path-tree family generalises the tree cover by covering the
DAG with *paths* instead of a tree.  We implement the chain-cover core the
scheme rests on: decompose the DAG into vertex-disjoint paths and give
every vertex a vector ``reach[v][c]`` — the earliest position in chain
``c`` that ``v`` reaches (∞ if none).  Since a chain vertex reaches its
whole chain suffix, ``Qr(s, t)`` reduces to one comparison:
``reach[s][chain(t)] <= position(t)``.

The vectors are computed by one reverse-topological sweep taking
component-wise minima over out-neighbours, so build time is
O(|E| · #chains).  The index also supports the Table 1 "Dynamic = Yes"
entry: edge insertion propagates the (monotone-decreasing) minima to the
affected ancestors; deletion rebuilds the sweep (documented trade-off —
the original paper's deletion support is similarly the expensive case).
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.errors import NotADAGError
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase
from repro.plain.chains import ChainDecomposition, greedy_chain_decomposition

__all__ = ["PathTreeIndex"]

_INF = float("inf")


@register_plain
class PathTreeIndex(ReachabilityIndex):
    """Chain-cover index: one min-position entry per (vertex, chain)."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Path-tree",
        framework="Tree cover",
        complete=True,
        input_kind="DAG",
        dynamic="yes",
    )

    def __init__(
        self,
        graph: DiGraph,
        decomposition: ChainDecomposition,
        reach: list[list[float]],
    ) -> None:
        super().__init__(graph)
        self._decomposition = decomposition
        self._reach = reach

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "PathTreeIndex":
        with build_phase("chain-decomposition") as phase:
            decomposition = greedy_chain_decomposition(graph)
            phase.annotate(chains=decomposition.num_chains)
        with build_phase("min-position-sweep"):
            reach = cls._sweep(graph, decomposition)
        return cls(graph, decomposition, reach)

    @staticmethod
    def _sweep(graph: DiGraph, decomposition: ChainDecomposition) -> list[list[float]]:
        num_chains = decomposition.num_chains
        reach: list[list[float]] = [[_INF] * num_chains for _ in graph.vertices()]
        for v in reversed(topological_order(graph)):
            row = reach[v]
            row[decomposition.chain_of[v]] = decomposition.position_of[v]
            for w in graph.out_neighbors(v):
                other = reach[w]
                for c in range(num_chains):
                    if other[c] < row[c]:
                        row[c] = other[c]
        return reach

    @property
    def decomposition(self) -> ChainDecomposition:
        """The chain cover this index is built over."""
        return self._decomposition

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        chain = self._decomposition.chain_of[target]
        if self._reach[source][chain] <= self._decomposition.position_of[target]:
            return TriState.YES
        return TriState.NO

    def size_in_entries(self) -> int:
        """Finite entries in the reach vectors (∞ cells cost nothing stored sparsely)."""
        return sum(
            sum(1 for value in row if value != _INF) for row in self._reach
        )

    # -- dynamic maintenance ------------------------------------------------
    def insert_edge(self, source: int, target: int) -> None:
        """Insert a DAG-preserving edge and propagate minima to ancestors."""
        if self.query(target, source):
            raise NotADAGError(
                f"inserting ({source}, {target}) would create a cycle"
            )
        self._graph.add_edge(source, target)
        num_chains = self._decomposition.num_chains
        # monotone min-propagation: start at `source`, walk in-edges upward
        queue: deque[int] = deque((source,))
        pending = {source}
        while queue:
            v = queue.popleft()
            pending.discard(v)
            row = self._reach[v]
            changed = False
            for w in self._graph.out_neighbors(v):
                other = self._reach[w]
                for c in range(num_chains):
                    if other[c] < row[c]:
                        row[c] = other[c]
                        changed = True
            if changed:
                for u in self._graph.in_neighbors(v):
                    if u not in pending:
                        pending.add(u)
                        queue.append(u)

    def delete_edge(self, source: int, target: int) -> None:
        """Delete an edge; the chain cover and sweep are recomputed.

        Deleting a *chain* edge breaks the invariant that every chain is a
        graph path, so the decomposition itself must be rebuilt — deletion
        is the expensive case for path-structured covers.
        """
        self._graph.remove_edge(source, target)
        self._decomposition = greedy_chain_decomposition(self._graph)
        self._reach = self._sweep(self._graph, self._decomposition)
