"""DAGGER: a dynamic interval index for evolving DAGs (§3.1).

Yildirim et al. extend GRAIL to graphs under edge insertions and
deletions.  The label is a *value interval*: every vertex draws a random
static value ``r(v)``; its interval is ``[min, max]`` of ``r`` over its
descendant set.  Reachability implies interval containment, so a violated
containment certifies NO (no false negatives) — the same partial-index
contract as GRAIL, but with labels that are cheap to maintain:

* **insertion** of ``(u, v)`` only *widens* intervals; the union
  propagates monotonically up the ancestors of ``u``, touching exactly the
  affected region;
* **deletion** leaves intervals over-wide, which is still *sound* for NO
  answers (stale width only converts NOs into MAYBEs, never the reverse).
  A counter triggers a linear re-sweep after configurable many deletions
  to restore precision — DAGGER's lazy-relabel trade-off.

Queries unresolved by the interval test fall back to index-guided
traversal, as for GRAIL.
"""

from __future__ import annotations

import random
from collections import deque
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.errors import NotADAGError
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.kernels import batch_reachable, csr_of
from repro.obs.build import build_phase
from repro.traversal.online import bfs_reachable

__all__ = ["DaggerIndex"]


@register_plain
class DaggerIndex(ReachabilityIndex):
    """DAGGER: maintainable min/max value intervals over descendants."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="DAGGER",
        framework="Tree cover",
        complete=False,
        input_kind="DAG",
        dynamic="yes",
    )

    DEFAULT_RESWEEP_AFTER = 32

    def __init__(
        self,
        graph: DiGraph,
        value: list[int],
        low: list[int],
        high: list[int],
        resweep_after: int,
    ) -> None:
        super().__init__(graph)
        self._value = value
        self._low = low
        self._high = high
        self._resweep_after = resweep_after
        self._deletions_since_sweep = 0

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        seed: int = 0,
        resweep_after: int = DEFAULT_RESWEEP_AFTER,
        **params: object,
    ) -> "DaggerIndex":
        n = graph.num_vertices
        with build_phase("random-values", vertices=n):
            rng = random.Random(seed)
            value = list(range(n))
            rng.shuffle(value)
            index = cls(graph, value, [0] * n, [0] * n, resweep_after)
        with build_phase("interval-sweep"):
            index._sweep()
        return index

    def _sweep(self) -> None:
        """Recompute exact [min, max] descendant values (linear)."""
        for v in reversed(topological_order(self._graph)):
            low = high = self._value[v]
            for w in self._graph.out_neighbors(v):
                if self._low[w] < low:
                    low = self._low[w]
                if self._high[w] > high:
                    high = self._high[w]
            self._low[v] = low
            self._high[v] = high
        self._deletions_since_sweep = 0

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        if self._low[source] <= self._low[target] and self._high[target] <= self._high[source]:
            return TriState.MAYBE
        return TriState.NO

    def _enumerate_fast(
        self, vertex: int, forward: bool
    ) -> tuple[frozenset[int], str, tuple[str, ...]]:
        """Value-interval scan: containment bounds the candidate set.

        Stale-wide intervals only admit false positives, so the survivors
        of the containment scan are a superset of the truth and one shared
        bit-parallel kernel sweep makes the answer exact.
        """
        low, high = self._low, self._high
        n = self._graph.num_vertices
        if forward:
            candidates = [
                t for t in range(n)
                if t != vertex and low[vertex] <= low[t] and high[t] <= high[vertex]
            ]
            pairs = [(vertex, t) for t in candidates]
        else:
            candidates = [
                s for s in range(n)
                if s != vertex and low[s] <= low[vertex] and high[vertex] <= high[s]
            ]
            pairs = [(s, vertex) for s in candidates]
        hits = batch_reachable(csr_of(self._graph), pairs)
        members = [c for c, hit in zip(candidates, hits) if hit]
        return (
            frozenset(members) | {vertex},
            "enum_interval",
            (
                f"value-interval scan kept {len(candidates)} candidates; "
                f"kernel sweep confirmed {len(members)}",
            ),
        )

    def size_in_entries(self) -> int:
        """One interval (plus the static value) per vertex."""
        return 3 * self._graph.num_vertices

    # -- dynamic maintenance --------------------------------------------------
    def insert_edge(self, source: int, target: int) -> None:
        """DAG-preserving insert; widen intervals up the ancestor chain."""
        if bfs_reachable(self._graph, target, source):
            raise NotADAGError(f"inserting ({source}, {target}) would create a cycle")
        self._graph.add_edge(source, target)
        queue: deque[int] = deque((source,))
        while queue:
            v = queue.popleft()
            low = min(self._low[v], self._low[target])
            high = max(self._high[v], self._high[target])
            if low == self._low[v] and high == self._high[v]:
                continue
            self._low[v] = low
            self._high[v] = high
            for u in self._graph.in_neighbors(v):
                queue.append(u)

    def delete_edge(self, source: int, target: int) -> None:
        """Delete lazily: stale-wide intervals stay sound; re-sweep periodically."""
        self._graph.remove_edge(source, target)
        self._deletions_since_sweep += 1
        if self._deletions_since_sweep >= self._resweep_after:
            self._sweep()
