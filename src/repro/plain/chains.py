"""Greedy path/chain decomposition of a DAG.

Shared machinery for the chain-structured indexes: the path-tree index
(Jin et al.) and the 3-hop index build on a partition of the vertices into
vertex-disjoint *graph paths* — along a chain, every vertex reaches all
later chain vertices, so "s reaches chain c no later than position p"
summarises reachability into the whole chain suffix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order

__all__ = ["ChainDecomposition", "greedy_chain_decomposition"]


@dataclass(frozen=True)
class ChainDecomposition:
    """A partition of a DAG's vertices into vertex-disjoint paths.

    Attributes
    ----------
    chains:
        ``chains[c]`` lists the vertices of chain ``c``, in path order.
    chain_of:
        ``chain_of[v]`` is the chain containing ``v``.
    position_of:
        ``position_of[v]`` is ``v``'s position within its chain.
    """

    chains: list[list[int]]
    chain_of: list[int]
    position_of: list[int]

    @property
    def num_chains(self) -> int:
        """Number of chains in the decomposition."""
        return len(self.chains)


def greedy_chain_decomposition(graph: DiGraph) -> ChainDecomposition:
    """Decompose a DAG into vertex-disjoint paths, greedily.

    Walking the topological order, each unassigned vertex starts a chain
    that is extended along unassigned out-neighbours (preferring the
    neighbour with the fewest unassigned in-neighbours, which tends to
    produce fewer, longer chains).
    """
    order = topological_order(graph)
    n = graph.num_vertices
    assigned = bytearray(n)
    chains: list[list[int]] = []
    chain_of = [0] * n
    position_of = [0] * n
    for start in order:
        if assigned[start]:
            continue
        chain: list[int] = []
        v = start
        while True:
            assigned[v] = 1
            chain_of[v] = len(chains)
            position_of[v] = len(chain)
            chain.append(v)
            candidates = [w for w in graph.out_neighbors(v) if not assigned[w]]
            if not candidates:
                break
            v = min(
                candidates,
                key=lambda w: sum(
                    1 for u in graph.in_neighbors(w) if not assigned[u]
                ),
            )
        chains.append(chain)
    return ChainDecomposition(chains=chains, chain_of=chain_of, position_of=position_of)
