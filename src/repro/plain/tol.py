"""TOL — total-order labeling with dynamic maintenance (§3.2).

Zhu et al.'s TOL is the general engine: a strict total order on vertices
drives pruned forward/backward BFS passes (see :mod:`repro.plain.pruned`),
and the same order powers maintenance under edge insertions and deletions.
TFL is the topological-order instantiation; U2-hop and HOPI (Ralf et al.)
are the earlier updatable 2-hop schemes the survey reports "cannot scale to
large graphs" — all four share this module's machinery.

Maintenance algorithms
----------------------
*Insertion* of ``(u, v)``: every hop that reaches ``u`` (``L_in(u) ∪ {u}``)
resumes its forward BFS from ``v``, and every hop reached from ``v``
(``L_out(v) ∪ {v}``) resumes its backward BFS from ``u``.  Labels only
grow, so soundness is immediate; coverage of the new pairs follows from
the resumed searches.

*Deletion* of ``(u, v)``: with ``A`` = ancestors of ``u`` and ``D`` =
descendants of ``v`` (computed before the deletion), every label entry
whose witness path could use the edge has its hop in
``H = A ∪ D ∪ {hops in L_in(w), w ∈ D} ∪ {hops in L_out(w), w ∈ A}``.
All entries of hops in ``H`` are removed and their labeling passes re-run
in rank order.

Both procedures prune exclusively against *lower-ranked* coverage
(:func:`repro.plain.pruned.covered_below`), which keeps the labels
canonical — hop ``h`` covers exactly the pairs whose minimum-rank path
vertex is ``h``.  Canonicity is what makes the two procedures compose
under arbitrary interleavings: a pass pruned by higher-ranked coverage
would leave entries missing that no later repair re-schedules.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.errors import NotADAGError, UnsupportedOperationError
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order, topological_rank
from repro.obs.build import build_phase
from repro.plain.pruned import (
    TwoHopLabels,
    build_pruned_labels,
    degree_order,
    enumerate_covered,
    resume_backward,
    resume_forward,
)
from repro.traversal.online import ancestors as reach_ancestors
from repro.traversal.online import bfs_reachable
from repro.traversal.online import descendants as reach_descendants

__all__ = ["TOLIndex", "TFLIndex", "U2HopIndex", "HOPIIndex"]


class _DynamicTwoHop(ReachabilityIndex):
    """Complete 2-hop labels over a total order, with update support."""

    _requires_dag: ClassVar[bool] = True

    def __init__(self, graph: DiGraph, labels: TwoHopLabels, order: list[int]) -> None:
        super().__init__(graph)
        self._labels = labels
        self._order = order
        self._rank = {v: i for i, v in enumerate(order)}

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "_DynamicTwoHop":
        with build_phase("total-order"):
            order = cls._make_order(graph)
        with build_phase("pruned-bfs-labeling") as phase:
            labels = build_pruned_labels(graph, order)
            phase.annotate(entries=labels.size_in_entries())
        return cls(graph, labels, order)

    @staticmethod
    def _make_order(graph: DiGraph) -> list[int]:
        return degree_order(graph)

    @property
    def labels(self) -> TwoHopLabels:
        """The underlying 2-hop label sets."""
        return self._labels

    @property
    def order(self) -> list[int]:
        """The total order the labeling was built with."""
        return list(self._order)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if self._labels.covered(source, target):
            return TriState.YES
        return TriState.NO

    def lookup_batch(self, pairs) -> list[TriState]:
        """Batched 2-hop merges via :meth:`TwoHopLabels.covered_many`."""
        self._check_pairs(pairs)
        yes, no = TriState.YES, TriState.NO
        return [yes if c else no for c in self._labels.covered_many(pairs)]

    def _enumerate_fast(self, vertex: int, forward: bool):
        """Label-join enumeration through the inverted hub index."""
        return enumerate_covered(self._labels, vertex, forward)

    def size_in_entries(self) -> int:
        return self._labels.size_in_entries()

    # -- dynamic maintenance ------------------------------------------------
    def insert_edge(self, source: int, target: int) -> None:
        if self._requires_dag and bfs_reachable(self._graph, target, source):
            raise NotADAGError(
                f"inserting ({source}, {target}) would create a cycle"
            )
        self._graph.add_edge(source, target)
        # hops that reach `source` can now push their forward BFS through
        # the new edge; hops reached from `target` extend backward.
        forward_hops = sorted(
            self._labels.l_in[source] | {source}, key=self._rank.__getitem__
        )
        for hop in forward_hops:
            resume_forward(self._graph, self._labels, self._rank, hop, target)
        backward_hops = sorted(
            self._labels.l_out[target] | {target}, key=self._rank.__getitem__
        )
        for hop in backward_hops:
            resume_backward(self._graph, self._labels, self._rank, hop, source)

    def delete_edge(self, source: int, target: int) -> None:
        affected_up = reach_ancestors(self._graph, source)
        affected_down = reach_descendants(self._graph, target)
        self._graph.remove_edge(source, target)
        stale_hops: set[int] = set(affected_up) | set(affected_down)
        for w in affected_down:
            stale_hops |= self._labels.l_in[w]
        for w in affected_up:
            stale_hops |= self._labels.l_out[w]
        for hop in stale_hops:
            self._labels.remove_hop(hop)
        for hop in sorted(stale_hops, key=self._rank.__getitem__):
            resume_forward(self._graph, self._labels, self._rank, hop, hop)
            resume_backward(self._graph, self._labels, self._rank, hop, hop)


@register_plain
class TOLIndex(_DynamicTwoHop):
    """TOL: the total-order framework itself (default: degree order)."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="TOL",
        framework="2-Hop",
        complete=True,
        input_kind="DAG",
        dynamic="yes",
    )

    @classmethod
    def build(cls, graph: DiGraph, order: list[int] | None = None, **params: object) -> "TOLIndex":
        """Build with an explicit total order, or the degree default.

        ``order`` lets benchmarks compare instantiations (topological =
        TFL, degree = DL/PLL, random) on the same engine, the comparison
        §3.2 describes.
        """
        topological_order(graph)  # raises NotADAGError on cyclic input
        with build_phase("total-order"):
            if order is None:
                order = cls._make_order(graph)
        with build_phase("pruned-bfs-labeling") as phase:
            labels = build_pruned_labels(graph, order)
            phase.annotate(entries=labels.size_in_entries())
        return cls(graph, labels, order)


@register_plain
class TFLIndex(_DynamicTwoHop):
    """TFL: the TOL engine instantiated with the DAG's topological order."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="TFL",
        framework="2-Hop",
        complete=True,
        input_kind="DAG",
        dynamic="no",
    )

    @staticmethod
    def _make_order(graph: DiGraph) -> list[int]:
        # topological-folding flavour: topological position, high degree first
        # within a level, which folds hub vertices to the front of their rank.
        rank = topological_rank(graph)
        return sorted(
            graph.vertices(),
            key=lambda v: (rank[v], -(graph.in_degree(v) + graph.out_degree(v))),
        )

    # TFL is the static instantiation in Table 1.
    def insert_edge(self, source: int, target: int) -> None:
        raise UnsupportedOperationError("TFL does not support edge insertion")

    def delete_edge(self, source: int, target: int) -> None:
        raise UnsupportedOperationError("TFL does not support edge deletion")


@register_plain
class U2HopIndex(_DynamicTwoHop):
    """U2-hop: incremental maintenance of 2-hop labels on DAGs (§3.2).

    Bramandia et al.'s scheme maintains a (non-minimal) 2-hop cover under
    updates; we realise the maintenance-capable core on the shared engine
    with an id order — deliberately weaker than TOL's degree order, which
    is the scalability gap the survey reports ("they cannot scale to large
    graphs").
    """

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="U2-hop",
        framework="2-Hop",
        complete=True,
        input_kind="DAG",
        dynamic="yes",
    )

    @staticmethod
    def _make_order(graph: DiGraph) -> list[int]:
        return list(graph.vertices())


@register_plain
class HOPIIndex(_DynamicTwoHop):
    """HOPI (Ralf Schenkel et al.): 2-hop with incremental maintenance (§3.2).

    Built for XML collections but defined on general graphs; the shared
    engine runs the pruned labeling directly on cyclic input and the same
    maintenance as TOL, without the DAG guard.
    """

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Ralf et al.",
        framework="2-Hop",
        complete=True,
        input_kind="General",
        dynamic="yes",
    )

    _requires_dag: ClassVar[bool] = False
