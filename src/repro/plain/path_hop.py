"""Path-hop: trees as the intermediate reachability structure (§3.2).

Cai & Poon's path-hop replaces the middle vertex of a 2-hop path with a
path in a spanning *tree*: ``Qr(s, t)`` holds iff there are hops
``a ∈ L_out(s)`` and ``b ∈ L_in(t)`` such that ``a`` is an ancestor of
``b`` in the spanning tree (checked in O(1) with post-order intervals).
The richer middle structure lets the labeling prune more aggressively than
plain 2-hop — pairs already covered by a tree path between existing hops
need no new entries — at the price of a slower build, which is the
trade-off §3.2 reports for these early extensions.

Implementation: the shared pruned-labeling pass with the coverage test
generalised from ``a == b`` to "``a`` tree-reaches ``b``".
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase
from repro.plain.interval import forest_postorder_intervals, spanning_forest
from repro.plain.pruned import degree_order

__all__ = ["PathHopIndex"]


@register_plain
class PathHopIndex(ReachabilityIndex):
    """2-hop labels whose middle hop is a spanning-tree path."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Path-hop",
        framework="2-Hop",
        complete=True,
        input_kind="DAG",
        dynamic="no",
    )

    def __init__(
        self,
        graph: DiGraph,
        intervals: list[tuple[int, int]],
        l_in: list[set[int]],
        l_out: list[set[int]],
    ) -> None:
        super().__init__(graph)
        self._intervals = intervals
        self._l_in = l_in
        self._l_out = l_out

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "PathHopIndex":
        with build_phase("spanning-tree-intervals"):
            order_topo = topological_order(graph)
            parent = spanning_forest(graph, order_topo)
            intervals = forest_postorder_intervals(graph, parent)
        n = graph.num_vertices
        l_in: list[set[int]] = [set() for _ in range(n)]
        l_out: list[set[int]] = [set() for _ in range(n)]

        def tree_reaches(a: int, b: int) -> bool:
            lo, hi = intervals[a]
            return lo <= intervals[b][1] <= hi

        def covered(s: int, t: int) -> bool:
            if s == t:
                return True
            outs = l_out[s] | {s}
            ins = l_in[t] | {t}
            for a in outs:
                for b in ins:
                    if tree_reaches(a, b):
                        return True
            return False

        # Label-pruned full BFS: the tree-reach coverage test decides whether
        # an entry is recorded, but the search itself is not cut short —
        # cutting it would break completeness because tree-covered pairs do
        # not put a lower-ranked hop on the path (unlike plain 2-hop
        # pruning).  The resulting build is slower but the labels smaller,
        # matching §3.2's account of these early extensions.
        with build_phase("tree-pruned-labeling") as phase:
            for hop in degree_order(graph):
                queue: deque[int] = deque((hop,))
                visited = {hop}
                while queue:
                    v = queue.popleft()
                    for w in graph.out_neighbors(v):
                        if w in visited or w == hop:
                            continue
                        visited.add(w)
                        if not covered(hop, w):
                            l_in[w].add(hop)
                        queue.append(w)
                queue = deque((hop,))
                visited = {hop}
                while queue:
                    v = queue.popleft()
                    for w in graph.in_neighbors(v):
                        if w in visited or w == hop:
                            continue
                        visited.add(w)
                        if not covered(w, hop):
                            l_out[w].add(hop)
                        queue.append(w)
            phase.annotate(
                entries=sum(len(s) for s in l_in) + sum(len(s) for s in l_out)
            )
        return cls(graph, intervals, l_in, l_out)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        if source == target:
            return TriState.YES
        lo_s, hi_s = 0, 0
        outs = self._l_out[source] | {source}
        ins = self._l_in[target] | {target}
        for a in outs:
            lo_s, hi_s = self._intervals[a]
            for b in ins:
                if lo_s <= self._intervals[b][1] <= hi_s:
                    return TriState.YES
        return TriState.NO

    def size_in_entries(self) -> int:
        """Hop entries plus one tree interval per vertex."""
        labels = sum(len(s) for s in self._l_in) + sum(len(s) for s in self._l_out)
        return labels + self._graph.num_vertices
