"""Dual labeling: constant-time reachability for sparse non-tree edges (§3.1).

Wang et al.'s design targets graphs that are "almost trees" (e.g. XML with
a few id/idref links): a spanning forest is labeled with post-order
intervals, and the ``t`` non-tree edges get a materialised *transitive link
closure* of size O(t²).  Queries combine one interval test with one link
table probe, i.e. constant time once the endpoints' link lists are bounded.

Query rule: ``s`` reaches ``t`` iff

* ``t`` is in ``s``'s subtree (interval test), or
* there are non-tree edges ``(u_i, v_i)`` and ``(u_j, v_j)`` such that ``s``
  tree-reaches ``u_i``, link ``i`` reaches link ``j`` in the link closure,
  and ``v_j`` tree-reaches ``t``.

Every path decomposes into tree segments joined by non-tree edges, so the
rule is exact.  The O(t²) closure is why the survey notes the approach
"works well only if the number of non-tree edges is very low" — the size
benchmark sweeps ``t`` to show exactly that.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase
from repro.plain.interval import forest_postorder_intervals, spanning_forest

__all__ = ["DualLabelingIndex"]


@register_plain
class DualLabelingIndex(ReachabilityIndex):
    """Spanning-forest intervals plus a transitive closure over non-tree links."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Dual labeling",
        framework="Tree cover",
        complete=True,
        input_kind="DAG",
        dynamic="no",
    )

    def __init__(
        self,
        graph: DiGraph,
        intervals: list[tuple[int, int]],
        links: list[tuple[int, int]],
        link_closure: list[int],
        out_links: list[list[int]],
        in_links: list[list[int]],
    ) -> None:
        super().__init__(graph)
        self._intervals = intervals
        self._links = links  # the non-tree edges (u_i, v_i)
        self._closure = link_closure  # closure[i] = bitset of links reachable from i
        self._out_links = out_links  # per vertex: links whose tail it tree-reaches
        self._in_links = in_links  # per vertex: links whose head tree-reaches it

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "DualLabelingIndex":
        with build_phase("spanning-forest-intervals"):
            order = topological_order(graph)
            parent = spanning_forest(graph, order)
            intervals = forest_postorder_intervals(graph, parent)

        def tree_reaches(s: int, t: int) -> bool:
            a, b = intervals[s]
            return a <= intervals[t][1] <= b

        links = [
            (u, v) for u, v in graph.edges() if parent[v] != u
        ]
        t = len(links)
        # direct link-to-link step: after taking link i we sit at v_i; we can
        # take link j next iff v_i tree-reaches u_j.
        with build_phase("link-closure", links=t):
            closure = [0] * t
            for i, (_u_i, v_i) in enumerate(links):
                row = 1 << i
                for j, (u_j, _v_j) in enumerate(links):
                    if tree_reaches(v_i, u_j):
                        row |= 1 << j
                closure[i] = row
            # Floyd-Warshall-style closure over the (small) link graph
            changed = True
            while changed:
                changed = False
                for i in range(t):
                    row = closure[i]
                    expanded = row
                    bits = row
                    while bits:
                        j = (bits & -bits).bit_length() - 1
                        bits &= bits - 1
                        expanded |= closure[j]
                    if expanded != row:
                        closure[i] = expanded
                        changed = True
        # per-vertex link incidence under tree reachability
        with build_phase("link-incidence"):
            out_links: list[list[int]] = [[] for _ in graph.vertices()]
            in_links: list[list[int]] = [[] for _ in graph.vertices()]
            for i, (u_i, v_i) in enumerate(links):
                for w in graph.vertices():
                    if tree_reaches(w, u_i):
                        out_links[w].append(i)
                    if tree_reaches(v_i, w):
                        in_links[w].append(i)
        return cls(graph, intervals, links, closure, out_links, in_links)

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        a, b = self._intervals[source]
        if a <= self._intervals[target][1] <= b:
            return TriState.YES
        if self._links:
            target_mask = 0
            for j in self._in_links[target]:
                target_mask |= 1 << j
            if target_mask:
                for i in self._out_links[source]:
                    if self._closure[i] & target_mask:
                        return TriState.YES
        return TriState.NO

    def size_in_entries(self) -> int:
        """Intervals + link-closure bits + link incidence lists."""
        t = len(self._links)
        incidence = sum(len(lst) for lst in self._out_links)
        incidence += sum(len(lst) for lst in self._in_links)
        return self._graph.num_vertices + t * t + incidence
