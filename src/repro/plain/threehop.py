"""3-hop: chains as the intermediate reachability structure (§3.2).

Jin et al.'s 3-hop replaces the single middle *vertex* of a 2-hop path
``s → w → t`` with a middle *chain segment*: the DAG is decomposed into
chains, each vertex keeps a small **contour** — the subset-minimal set of
(chain, position) entry points it can reach — and a per-chain-pair map
records how chains reach into each other.  ``Qr(s, t)`` succeeds iff some
contour entry of ``s`` reaches ``t``'s chain no later than ``t``'s
position, either directly (same chain) or through the chain-to-chain map.

The chain map is stored as monotone *breakpoint* lists — for chains
``c → c'`` only the positions where the earliest reachable position in
``c'`` changes — which is the compression over the full chain-cover matrix
that gives 3-hop its "high-compression" name.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import ClassVar

from repro.core.base import IndexMetadata, ReachabilityIndex, TriState
from repro.core.registry import register_plain
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order
from repro.obs.build import build_phase
from repro.plain.chains import ChainDecomposition, greedy_chain_decomposition

__all__ = ["ThreeHopIndex"]

_INF = float("inf")

# breakpoints[c][c'] = list of (position_in_c, earliest_position_in_c')
# sorted by position_in_c; the value applies to that position and earlier
# ones do not (positions later in c reach *no earlier* than recorded ones
# since reachability only shrinks along a chain suffix).
_Breakpoints = list[list[list[tuple[int, float]]]]


@register_plain
class ThreeHopIndex(ReachabilityIndex):
    """3-hop: per-vertex contours plus a chain-to-chain breakpoint map."""

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="3-Hop",
        framework="2-Hop",
        complete=True,
        input_kind="DAG",
        dynamic="no",
    )

    def __init__(
        self,
        graph: DiGraph,
        decomposition: ChainDecomposition,
        contours: list[list[tuple[int, int]]],
        breakpoints: _Breakpoints,
    ) -> None:
        super().__init__(graph)
        self._decomposition = decomposition
        self._contours = contours
        self._breakpoints = breakpoints

    @classmethod
    def build(cls, graph: DiGraph, **params: object) -> "ThreeHopIndex":
        with build_phase("chain-decomposition") as phase:
            decomposition = greedy_chain_decomposition(graph)
            num_chains = decomposition.num_chains
            phase.annotate(chains=num_chains)
        # full chain-cover sweep (transient; only contours + breakpoints kept)
        with build_phase("chain-cover-sweep"):
            reach: list[list[float]] = [[_INF] * num_chains for _ in graph.vertices()]
            for v in reversed(topological_order(graph)):
                row = reach[v]
                row[decomposition.chain_of[v]] = decomposition.position_of[v]
                for w in graph.out_neighbors(v):
                    other = reach[w]
                    for c in range(num_chains):
                        if other[c] < row[c]:
                            row[c] = other[c]

        # chain-to-chain map: for each position p of chain c, the earliest
        # reachable position in c'; compressed to breakpoints where it changes.
        with build_phase("breakpoint-compression"):
            breakpoints: _Breakpoints = [
                [[] for _ in range(num_chains)] for _ in range(num_chains)
            ]
            for c, chain in enumerate(decomposition.chains):
                for c2 in range(num_chains):
                    previous: float | None = None
                    rows = breakpoints[c][c2]
                    for p, vertex in enumerate(chain):
                        value = reach[vertex][c2]
                        if value != previous:
                            rows.append((p, value))
                            previous = value

        # per-vertex contour: subset-minimal (chain, position) entry points.
        with build_phase("contour-minimisation"):
            contours: list[list[tuple[int, int]]] = []
            for v in graph.vertices():
                row = reach[v]
                entries = [
                    (c, int(p)) for c, p in enumerate(row) if p != _INF
                ]

                def implied(entry: tuple[int, int], others: list[tuple[int, int]]) -> bool:
                    c, p = entry
                    for c2, p2 in others:
                        if (c2, p2) == entry:
                            continue
                        head = decomposition.chains[c2][p2]
                        if reach[head][c] <= p:
                            return True
                    return False

                minimal = [e for e in entries if not implied(e, entries)]
                contours.append(minimal)
        return cls(graph, decomposition, contours, breakpoints)

    def _chain_reach(self, c: int, p: int, c2: int) -> float:
        """Earliest position in chain ``c2`` reachable from ``(c, p)``."""
        rows = self._breakpoints[c][c2]
        if not rows:
            return _INF
        # find the breakpoint at or after p: values for later positions in c
        # apply; the recorded value at the first breakpoint >= p is exact for
        # p because values are piecewise-constant between breakpoints.
        pos = bisect_left(rows, (p, -1.0))
        if pos < len(rows) and rows[pos][0] == p:
            return rows[pos][1]
        if pos == 0:
            return rows[0][1]
        return rows[pos - 1][1]

    def lookup(self, source: int, target: int) -> TriState:
        self._check_query(source, target)
        target_chain = self._decomposition.chain_of[target]
        target_pos = self._decomposition.position_of[target]
        for c, p in self._contours[source]:
            if c == target_chain and p <= target_pos:
                return TriState.YES
            if self._chain_reach(c, p, target_chain) <= target_pos:
                return TriState.YES
        return TriState.NO

    def size_in_entries(self) -> int:
        """Contour entries plus chain-map breakpoints."""
        contour_entries = sum(len(entries) for entries in self._contours)
        map_entries = sum(
            len(rows) for per_chain in self._breakpoints for rows in per_chain
        )
        return contour_entries + map_entries

    @property
    def decomposition(self) -> ChainDecomposition:
        """The chain decomposition this index is built over."""
        return self._decomposition
