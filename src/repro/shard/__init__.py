"""repro.shard — partitioned reachability (the §6 scaling axis).

One monolithic index per graph stops being tenable as graphs grow: §6 of
the survey frames construction cost and index size as the scalability
wall, and size-restricted designs (FERRARI) show that bounding each
structure is the lever.  This package imposes that bound by
partitioning:

* :mod:`repro.shard.partition` — topological banding plus greedy
  min-cut refinement cuts a DAG into ``k`` edge-disjoint shards.
* :mod:`repro.shard.engine` — :class:`ShardedIndex` builds any
  registered plain family per shard (in parallel), indexes the boundary
  summary graph, and answers queries by intra-shard probe or
  out-border → boundary-index → in-border composition.

``ShardedIndex`` registers as the plain family ``"Sharded"``, so the
service, CLI, persistence, and benchmarks all serve it unchanged.
"""

from repro.shard.engine import ShardBuildReport, ShardedIndex
from repro.shard.partition import Partition, partition_dag

__all__ = ["Partition", "ShardBuildReport", "ShardedIndex", "partition_dag"]
