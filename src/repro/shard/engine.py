"""The two-level sharded reachability index.

``ShardedIndex`` bounds per-structure index size (the FERRARI lever the
survey's §6 scalability discussion points at) by splitting a DAG into
``k`` shards with :func:`repro.shard.partition.partition_dag`, building
any registered plain family *independently per shard*, and lifting the
endpoints of cut edges into a **boundary summary graph** whose
transitive structure gets its own index:

* the boundary graph's vertices are the cut-edge endpoints;
* its edges are the cut edges themselves plus, per shard, a closure edge
  ``b → b'`` for every pair of that shard's boundary vertices with
  ``b ⇝ b'`` inside the shard (computed by one bit-parallel
  :func:`~repro.kernels.reach_masks` sweep per shard).

A query then resolves in two levels.  ``s ⇝ t`` holds iff it holds
intra-shard (same shard, shard-local index answers YES) **or** some
out-border ``b`` of ``s`` reaches some in-border ``b'`` of ``t`` in the
boundary graph — because any path crossing shards enters the boundary at
its first cut edge and leaves it at its last, and every intra-shard hop
between boundary vertices is a closure edge.  Same-shard pairs whose
local index answers NO still fall through to the boundary composition: a
path may exit the shard and re-enter it.

Shard builds run in parallel via :mod:`concurrent.futures` (threads by
default; an optional process pool for true CPU parallelism; ``serial``
for debugging), and every shard's :class:`~repro.obs.build.BuildReport`
is aggregated into one :class:`ShardBuildReport`.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from collections.abc import Sequence
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import ClassVar

from repro import accel as _accel
from repro.core.base import (
    Explanation,
    IndexMetadata,
    ReachabilityIndex,
    TriState,
)
from repro.core.registry import plain_index, register_plain
from repro.errors import IndexBuildError
from repro.graphs.digraph import DiGraph
from repro.kernels import csr_of, reach_masks
from repro.obs.build import BuildReport, build_phase
from repro.obs.metrics import global_registry
from repro.obs.tracer import TRACER
from repro.resilience.chaos import chaos_point
from repro.resilience.deadline import current_deadline
from repro.resilience.retry import retry_call
from repro.shard.partition import Partition, partition_dag

__all__ = ["ShardBuildReport", "ShardedIndex"]

#: Boundary sources advanced per closure sweep (one big-int wave).
_CLOSURE_WAVE = 512


@dataclass(frozen=True)
class ShardBuildReport:
    """The aggregated construction breakdown of one sharded build.

    Per-shard :class:`~repro.obs.build.BuildReport` objects (produced by
    the standard build instrumentation inside each worker) are collected
    next to the partition/boundary stage timings, so one object answers
    both "where did the wall-clock go" and "what did each shard cost".
    """

    family: str
    num_shards: int
    executor: str
    workers: int
    partition_seconds: float
    shard_build_seconds: float
    boundary_seconds: float
    total_seconds: float
    shard_sizes: tuple[int, ...]
    cut_edges: int
    boundary_vertices: int
    boundary_edges: int
    shard_reports: tuple[BuildReport | None, ...]
    boundary_report: BuildReport | None
    #: Build attempts each shard needed (1 = first try; >1 = retried).
    shard_attempts: tuple[int, ...] = field(default=())
    #: How shard graphs reached the workers: ``inline`` (same process /
    #: threads), ``shm`` (shared-memory snapshot handles), or ``pickle``
    #: (whole subgraphs serialised per worker).
    transport: str = "inline"
    #: Serialised payload each process worker received, bytes per shard
    #: (empty for inline transports — nothing crosses a process boundary).
    bytes_shipped_per_worker: tuple[int, ...] = field(default=())
    #: The kernel backend active during the build ("python" or "numpy").
    backend: str = "python"

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable plain data (the BENCH_shard.json shape)."""
        return {
            "family": self.family,
            "num_shards": self.num_shards,
            "executor": self.executor,
            "workers": self.workers,
            "partition_seconds": self.partition_seconds,
            "shard_build_seconds": self.shard_build_seconds,
            "boundary_seconds": self.boundary_seconds,
            "total_seconds": self.total_seconds,
            "shard_sizes": list(self.shard_sizes),
            "cut_edges": self.cut_edges,
            "boundary_vertices": self.boundary_vertices,
            "boundary_edges": self.boundary_edges,
            "shard_reports": [
                report.as_dict() if report is not None else None
                for report in self.shard_reports
            ],
            "boundary_report": (
                self.boundary_report.as_dict()
                if self.boundary_report is not None
                else None
            ),
            "shard_attempts": list(self.shard_attempts),
            "transport": self.transport,
            "bytes_shipped_per_worker": list(self.bytes_shipped_per_worker),
            "backend": self.backend,
        }

    def render_text(self) -> str:
        """An indented per-stage / per-shard breakdown for the CLI."""
        lines = [
            f"Sharded[{self.family} x{self.num_shards}] built in "
            f"{self.total_seconds * 1e3:.2f}ms ({self.executor}, "
            f"{self.workers} workers, {self.transport} transport, "
            f"{self.backend} backend)",
            f"  partition: {self.partition_seconds * 1e3:.2f}ms  "
            f"[cut_edges={self.cut_edges} boundary={self.boundary_vertices}]",
            f"  shard builds: {self.shard_build_seconds * 1e3:.2f}ms",
        ]
        for number, report in enumerate(self.shard_reports):
            if report is None:
                continue
            size = self.shard_sizes[number] if number < len(self.shard_sizes) else "?"
            attempts = (
                self.shard_attempts[number]
                if number < len(self.shard_attempts)
                else 1
            )
            lines.append(
                f"    shard {number} (|V|={size}): "
                f"{report.total_seconds * 1e3:.2f}ms"
                + (
                    f", {report.entries:,} entries"
                    if report.entries is not None
                    else ""
                )
                + (f", {attempts} attempts" if attempts > 1 else "")
            )
        if self.bytes_shipped_per_worker:
            total_shipped = sum(self.bytes_shipped_per_worker)
            lines.append(
                f"  shipped to workers: {total_shipped:,} bytes "
                f"({self.transport})"
            )
        lines.append(
            f"  boundary: {self.boundary_seconds * 1e3:.2f}ms  "
            f"[edges={self.boundary_edges}]"
        )
        return "\n".join(lines)


#: Default per-shard build attempts (first try + retries with backoff).
_BUILD_ATTEMPTS = 3
#: Backoff bounds for shard-build retries (kept tiny: builds dominate).
_RETRY_BASE_DELAY_S = 0.005
_RETRY_MAX_DELAY_S = 0.1


def _build_one_shard(family: str, graph: DiGraph) -> ReachabilityIndex:
    """Build one shard's inner index (module-level: process-pool picklable).

    ``shard.build_worker`` is a chaos injection point: an installed
    policy can delay or kill this worker to exercise the retry path.
    """
    chaos_point("shard.build_worker")
    return plain_index(family).build(graph)


def _build_one_shard_from_handle(family: str, handle) -> ReachabilityIndex:
    """Worker entry for the shared-memory transport.

    Attaches to the parent's CSR snapshot, rebuilds the shard's
    :class:`DiGraph` locally (one bulk copy, no per-edge inserts), and
    releases the mapping before the build proper — after reconstruction
    the worker holds no shared state.
    """
    from repro.accel.arrays import CSRArrays, digraph_from_arrays

    arrays, shm = CSRArrays.from_shared(handle)
    try:
        graph = digraph_from_arrays(arrays)
    finally:
        del arrays
        shm.close()
    return _build_one_shard(family, graph)


def _build_with_retry(
    family: str,
    graph: DiGraph,
    attempts: int,
    rng: random.Random,
) -> tuple[ReachabilityIndex, int]:
    """One shard build with seeded exponential-backoff retries.

    Returns ``(index, attempts_used)``.  The final failure propagates
    unchanged (a persistent fault must surface as a typed error, not a
    silent gap in the shard list).
    """
    return retry_call(
        lambda: _build_one_shard(family, graph),
        attempts=attempts,
        base_delay_s=_RETRY_BASE_DELAY_S,
        max_delay_s=_RETRY_MAX_DELAY_S,
        rng=rng,
        on_retry=lambda _attempt, _exc: global_registry()
        .counter("shard.build.retries")
        .increment(),
    )


def _run_shm_builds(
    family: str, graphs: Sequence[DiGraph], workers: int
) -> tuple[list[ReachabilityIndex], list[int], str, tuple[int, ...]] | None:
    """The shared-memory process-pool wave, or None if it cannot run.

    Each shard graph is snapshotted once into a shared-memory block and
    workers receive only a :class:`SharedCSRHandle` — a few dozen
    pickled bytes per shard instead of the whole subgraph.  The parent
    owns every block and unlinks them all once the wave settles; any
    failure (no /dev/shm, dead worker) falls back to the pickle wave.
    """
    from repro.accel.arrays import CSRArrays

    shms: list = []
    try:
        try:
            handles = []
            for graph in graphs:
                shm, handle = CSRArrays.from_digraph(graph).to_shared()
                shms.append(shm)
                handles.append(handle)
        except (OSError, ValueError):
            global_registry().counter("shard.build.shm_fallbacks").increment()
            return None
        bytes_shipped = tuple(
            len(pickle.dumps((family, handle))) for handle in handles
        )
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                indexes = list(
                    pool.map(
                        _build_one_shard_from_handle,
                        [family] * len(handles),
                        handles,
                    )
                )
        except (OSError, ValueError, BrokenExecutor):
            global_registry().counter("shard.build.shm_fallbacks").increment()
            return None
        return indexes, [1] * len(graphs), "shm", bytes_shipped
    finally:
        for shm in shms:
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass


def _run_builds(
    family: str,
    graphs: Sequence[DiGraph],
    executor: str,
    workers: int,
    attempts: int = _BUILD_ATTEMPTS,
    retry_seed: int = 0,
) -> tuple[list[ReachabilityIndex], list[int], str, tuple[int, ...]]:
    """Build every shard's index, in parallel where asked.

    Returns ``(indexes, attempt_counts, transport, bytes_shipped)``.
    Process pools prefer the shared-memory transport when the
    acceleration layer is enabled, degrading to pickled subgraphs and
    then to threads: a dead worker (``BrokenExecutor``) retries the
    whole wave on threads — threads cannot die out from under the
    interpreter — so a one-off crash degrades parallelism, never
    correctness.
    """
    rngs = [
        random.Random(f"shard-retry:{retry_seed}:{shard}")
        for shard in range(len(graphs))
    ]
    if executor == "serial" or len(graphs) <= 1 or workers <= 1:
        built = [
            _build_with_retry(family, graph, attempts, rng)
            for graph, rng in zip(graphs, rngs)
        ]
        return (
            [index for index, _ in built],
            [used for _, used in built],
            "inline",
            (),
        )
    if executor == "process":
        if _accel.enabled():
            shm_wave = _run_shm_builds(family, graphs, workers)
            if shm_wave is not None:
                return shm_wave
        try:
            bytes_shipped = tuple(
                len(pickle.dumps((family, graph))) for graph in graphs
            )
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return (
                    list(
                        pool.map(_build_one_shard, [family] * len(graphs), graphs)
                    ),
                    [1] * len(graphs),
                    "pickle",
                    bytes_shipped,
                )
        except (OSError, ValueError, BrokenExecutor):
            # No fork/semaphores, or a worker died mid-build: retry the
            # whole wave on threads.
            global_registry().counter("shard.build.pool_fallbacks").increment()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        built = list(
            pool.map(
                lambda pair: _build_with_retry(family, pair[0], attempts, pair[1]),
                zip(graphs, rngs),
            )
        )
    return (
        [index for index, _ in built],
        [used for _, used in built],
        "inline",
        (),
    )


@register_plain
class ShardedIndex(ReachabilityIndex):
    """Partitioned two-level reachability index over a DAG.

    ``build(graph, family="PLL", num_shards=4)`` conforms to the core
    index API — complete (never MAYBE), DAG input like the families it
    wraps (lift cyclic graphs with
    :class:`~repro.core.condensed.CondensedIndex` as usual).  ``family``
    names any registered plain index; each shard and the boundary graph
    get their own instance of it.
    """

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Sharded",
        framework="-",
        complete=True,
        input_kind="DAG",
        dynamic="no",
    )

    def __init__(
        self,
        graph: DiGraph,
        partition: Partition,
        family: str,
        shard_graphs: list[DiGraph],
        shard_indexes: list[ReachabilityIndex],
        local_of: list[int],
        shard_globals: list[list[int]],
        boundary_graph: DiGraph | None,
        boundary_index: ReachabilityIndex | None,
        boundary_globals: list[int],
    ) -> None:
        super().__init__(graph)
        self._partition = partition
        self._family = family
        self._shard_graphs = shard_graphs
        self._shard_indexes = shard_indexes
        self._shard_of = list(partition.shard_of)
        self._local_of = local_of
        self._shard_globals = shard_globals
        self._boundary_graph = boundary_graph
        self._boundary_index = boundary_index
        self._boundary_globals = boundary_globals
        self._bid_of = {g: b for b, g in enumerate(boundary_globals)}
        borders: list[list[int]] = [[] for _ in range(partition.num_shards)]
        for g in boundary_globals:
            borders[self._shard_of[g]].append(g)
        self._shard_borders = borders
        # Per-vertex border memoisation (query-time only; dropped on pickle).
        self._out_cache: dict[int, tuple[int, ...]] = {}
        self._in_cache: dict[int, tuple[int, ...]] = {}
        self._pair_cache: dict[tuple[tuple[int, ...], tuple[int, ...]], bool] = {}
        self.shard_build_report: ShardBuildReport | None = None

    # -- construction ---------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: DiGraph,
        family: str = "PLL",
        num_shards: int = 4,
        refine_passes: int = 2,
        executor: str = "thread",
        workers: int | None = None,
        build_attempts: int = _BUILD_ATTEMPTS,
        retry_seed: int = 0,
    ) -> "ShardedIndex":
        """Partition ``graph``, build ``family`` per shard, index the boundary.

        ``executor`` is ``"thread"`` (default), ``"process"`` (true CPU
        parallelism; shard graphs and built indexes cross the pickle
        boundary), or ``"serial"``.  ``workers`` defaults to
        ``min(num_shards, cpu_count)``.  Transient per-shard build
        failures retry up to ``build_attempts`` times with seeded
        exponential backoff (``retry_seed`` makes the schedule
        replayable); per-shard attempt counts land in the
        :class:`ShardBuildReport`.
        """
        if family == cls.metadata.name:
            raise IndexBuildError("a sharded index cannot shard itself")
        if executor not in ("thread", "process", "serial"):
            raise IndexBuildError(
                f"executor must be 'thread', 'process' or 'serial', got {executor!r}"
            )
        inner_cls = plain_index(family)  # fail fast on unknown families
        if inner_cls.metadata.input_kind != "DAG":
            # General-input families work on any subgraph; DAG-only ones
            # are fine too because shard subgraphs of a DAG stay acyclic.
            pass
        t_start = time.perf_counter()
        with build_phase("partition") as ph:
            partition = partition_dag(graph, num_shards, refine_passes)
            ph.annotate(
                shards=partition.num_shards,
                cut_edges=len(partition.cut_edges),
                moves=partition.refinement_moves,
            )
        t_partition = time.perf_counter()
        k = partition.num_shards
        if workers is None:
            workers = max(1, min(k, os.cpu_count() or 1))
        with build_phase("shard-extract") as ph:
            shard_graphs, local_of, shard_globals = _extract_shards(
                graph, partition
            )
            ph.annotate(sizes=list(partition.shard_sizes))
        with build_phase("shard-builds") as ph:
            shard_indexes, shard_attempts, transport, bytes_shipped = _run_builds(
                family,
                shard_graphs,
                executor,
                workers,
                attempts=build_attempts,
                retry_seed=retry_seed,
            )
            ph.annotate(
                family=family,
                shards=k,
                executor=executor,
                workers=workers,
                transport=transport,
            )
        t_builds = time.perf_counter()
        with build_phase("boundary-graph") as ph:
            boundary_graph, boundary_globals = _boundary_graph(
                graph, partition, shard_graphs, local_of, shard_globals
            )
            ph.annotate(
                vertices=boundary_graph.num_vertices,
                edges=boundary_graph.num_edges,
            )
        boundary_index: ReachabilityIndex | None = None
        if boundary_graph.num_vertices:
            # Observed as a nested build: shows up as a child phase.
            boundary_index = plain_index(family).build(boundary_graph)
        t_boundary = time.perf_counter()
        index = cls(
            graph,
            partition,
            family,
            shard_graphs,
            shard_indexes,
            local_of,
            shard_globals,
            boundary_graph if boundary_graph.num_vertices else None,
            boundary_index,
            boundary_globals,
        )
        index.shard_build_report = ShardBuildReport(
            family=family,
            num_shards=k,
            executor=executor,
            workers=workers,
            partition_seconds=t_partition - t_start,
            shard_build_seconds=t_builds - t_partition,
            boundary_seconds=t_boundary - t_builds,
            total_seconds=t_boundary - t_start,
            shard_sizes=partition.shard_sizes,
            cut_edges=len(partition.cut_edges),
            boundary_vertices=len(boundary_globals),
            boundary_edges=boundary_graph.num_edges,
            shard_reports=tuple(
                inner.build_report for inner in shard_indexes
            ),
            boundary_report=(
                boundary_index.build_report if boundary_index is not None else None
            ),
            shard_attempts=tuple(shard_attempts),
            transport=transport,
            bytes_shipped_per_worker=bytes_shipped,
            backend=_accel.backend_name(),
        )
        registry = global_registry()
        registry.counter("shard.build.builds").increment()
        registry.counter("shard.build.shards").increment(k)
        registry.counter("shard.build.cut_edges").increment(
            len(partition.cut_edges)
        )
        return index

    # -- introspection ----------------------------------------------------
    @property
    def partition(self) -> Partition:
        """The vertex→shard assignment this index was built over."""
        return self._partition

    @property
    def family(self) -> str:
        """The inner plain family built per shard and over the boundary."""
        return self._family

    @property
    def shards(self) -> tuple[ReachabilityIndex, ...]:
        """The per-shard inner indexes (local vertex ids)."""
        return tuple(self._shard_indexes)

    @property
    def boundary_index(self) -> ReachabilityIndex | None:
        """The index over the boundary summary graph (None without cuts)."""
        return self._boundary_index

    @property
    def boundary_graph(self) -> DiGraph | None:
        """The boundary summary graph (None without cut edges)."""
        return self._boundary_graph

    # -- probing ----------------------------------------------------------
    def lookup(self, source: int, target: int) -> TriState:
        """Exact probe: the two-level composition never answers MAYBE."""
        self._check_query(source, target)
        answer, _route, _details = self._resolve(source, target)
        return TriState.YES if answer else TriState.NO

    def query(self, source: int, target: int) -> bool:
        self._check_query(source, target)
        if not TRACER.enabled:
            return self._resolve(source, target)[0]
        with TRACER.span(
            "shard.query", index=self.metadata.name, source=source, target=target
        ) as span:
            answer, route, _details = self._resolve(source, target)
            span.annotate(route=route, answer=answer)
            global_registry().counter(f"shard.route.{route}").increment()
            return answer

    def query_batch(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Batched two-level resolution.

        Same-shard pairs go through each shard index's own
        ``query_batch`` (one call per touched shard, so the PR 2 kernels
        see whole sub-batches); pairs the shard answers NO — plus all
        cross-shard pairs — resolve through one batched border
        composition against the boundary index.
        """
        self._check_pairs(pairs)
        if not pairs:
            return []
        answers: list[bool | None] = [None] * len(pairs)
        shard_of = self._shard_of
        local_of = self._local_of
        by_shard: dict[int, list[int]] = {}
        escalate: list[int] = []
        trivial = 0
        for position, (s, t) in enumerate(pairs):
            if s == t:
                answers[position] = True
                trivial += 1
            elif shard_of[s] == shard_of[t]:
                by_shard.setdefault(shard_of[s], []).append(position)
            else:
                escalate.append(position)
        deadline = current_deadline()
        intra_hits = 0
        for shard, positions in by_shard.items():
            if deadline is not None:
                deadline.check()
            local_pairs = [
                (local_of[pairs[i][0]], local_of[pairs[i][1]]) for i in positions
            ]
            local_answers = self._shard_indexes[shard].query_batch(local_pairs)
            for position, answer in zip(positions, local_answers):
                if answer:
                    answers[position] = True
                    intra_hits += 1
                elif self._boundary_index is None:
                    answers[position] = False  # no cuts: intra NO is final
                    intra_hits += 1
                else:
                    escalate.append(position)
        composed = 0
        cached = 0
        if escalate:
            composed, cached = self._compose_batch(pairs, escalate, answers)
        if TRACER.enabled:
            registry = global_registry()
            if trivial:
                registry.counter("shard.route.trivial").increment(trivial)
            if intra_hits:
                registry.counter("shard.route.intra_shard").increment(intra_hits)
            if composed:
                registry.counter("shard.route.cross_shard").increment(composed)
            if cached:
                registry.counter("shard.route.boundary_cache").increment(cached)
        return answers  # type: ignore[return-value]

    # -- resolution core ---------------------------------------------------
    def _resolve(self, source: int, target: int) -> tuple[bool, str, tuple[str, ...]]:
        """Answer + route + human details; explain and query share this."""
        if source == target:
            return True, "trivial", (
                "source equals target: reachable by the empty path",
            )
        shard_s = self._shard_of[source]
        shard_t = self._shard_of[target]
        if shard_s == shard_t:
            local = self._local_of
            if self._shard_indexes[shard_s].query(local[source], local[target]):
                return True, "intra_shard", (
                    f"shard {shard_s}: the shard-local {self._family} index "
                    "answered yes",
                )
            if self._boundary_index is None:
                return False, "intra_shard", (
                    f"shard {shard_s}: shard-local no is final "
                    "(no cut edges, paths cannot leave the shard)",
                )
            answer, route, details = self._compose(source, target)
            return answer, route, (
                f"shard {shard_s}: shard-local probe answered no; "
                "checking exit-and-re-enter paths through the boundary",
                *details,
            )
        answer, route, details = self._compose(source, target)
        return answer, route, (
            f"cross-shard: shard({source})={shard_s}, shard({target})={shard_t}",
            *details,
        )

    def _out_borders(self, source: int) -> tuple[int, ...]:
        """Boundary ids (in boundary-graph numbering) reachable from
        ``source`` without leaving its shard."""
        cached = self._out_cache.get(source)
        if cached is not None:
            return cached
        shard = self._shard_of[source]
        borders = self._shard_borders[shard]
        if not borders:
            result: tuple[int, ...] = ()
        else:
            local = self._local_of
            index = self._shard_indexes[shard]
            hits = index.query_batch(
                [(local[source], local[b]) for b in borders]
            )
            result = tuple(
                self._bid_of[b] for b, hit in zip(borders, hits) if hit
            )
        self._out_cache[source] = result
        return result

    def _in_borders(self, target: int) -> tuple[int, ...]:
        """Boundary ids that reach ``target`` without leaving its shard."""
        cached = self._in_cache.get(target)
        if cached is not None:
            return cached
        shard = self._shard_of[target]
        borders = self._shard_borders[shard]
        if not borders:
            result: tuple[int, ...] = ()
        else:
            local = self._local_of
            index = self._shard_indexes[shard]
            hits = index.query_batch(
                [(local[b], local[target]) for b in borders]
            )
            result = tuple(
                self._bid_of[b] for b, hit in zip(borders, hits) if hit
            )
        self._in_cache[target] = result
        return result

    def _compose(self, source: int, target: int) -> tuple[bool, str, tuple[str, ...]]:
        """The boundary composition: out-borders ⇝ in-borders, memoised."""
        if self._boundary_index is None:
            return False, "cross_shard", (
                "no cut edges: distinct shards are mutually unreachable",
            )
        deadline = current_deadline()
        if deadline is not None:
            deadline.check()
        out = self._out_borders(source)
        into = self._in_borders(target)
        if not out or not into:
            side = "source has no out-borders" if not out else "target has no in-borders"
            return False, "cross_shard", (f"boundary composition: {side}",)
        key = (out, into)
        hit = self._pair_cache.get(key)
        if hit is not None:
            return hit, "boundary_cache", (
                f"boundary composition memoised for this border pair "
                f"(|out|={len(out)}, |in|={len(into)})",
            )
        probes = self._boundary_index.query_batch(
            [(b_out, b_in) for b_out in out for b_in in into]
        )
        answer = any(probes)
        self._pair_cache[key] = answer
        return answer, "cross_shard", (
            f"boundary composition over |out|={len(out)} x |in|={len(into)} "
            f"border pairs answered {str(answer).lower()}",
        )

    def _compose_batch(
        self,
        pairs: Sequence[tuple[int, int]],
        positions: list[int],
        answers: list[bool | None],
    ) -> tuple[int, int]:
        """Resolve escalated positions via one batched border composition.

        Returns ``(composed, cache_hits)`` for route accounting.
        """
        boundary = self._boundary_index
        if boundary is None:
            for position in positions:
                answers[position] = False
            return len(positions), 0
        deadline = current_deadline()
        if deadline is not None:
            deadline.check()
        # Fill the per-vertex border caches with one shard-index batch per
        # touched shard (all sources of one shard share a call; same for
        # targets) instead of one call per vertex.
        self._fill_border_caches(
            {pairs[i][0] for i in positions if pairs[i][0] not in self._out_cache},
            outgoing=True,
        )
        self._fill_border_caches(
            {pairs[i][1] for i in positions if pairs[i][1] not in self._in_cache},
            outgoing=False,
        )
        cache_hits = 0
        need: list[int] = []
        boundary_pairs: set[tuple[int, int]] = set()
        for position in positions:
            s, t = pairs[position]
            out = self._out_cache[s]
            into = self._in_cache[t]
            if not out or not into:
                answers[position] = False
                continue
            hit = self._pair_cache.get((out, into))
            if hit is not None:
                answers[position] = hit
                cache_hits += 1
                continue
            need.append(position)
            boundary_pairs.update(
                (b_out, b_in) for b_out in out for b_in in into
            )
        if need:
            unique = sorted(boundary_pairs)
            verdicts = dict(zip(unique, boundary.query_batch(unique)))
            for position in need:
                s, t = pairs[position]
                out = self._out_cache[s]
                into = self._in_cache[t]
                answer = any(
                    verdicts[(b_out, b_in)] for b_out in out for b_in in into
                )
                self._pair_cache[(out, into)] = answer
                answers[position] = answer
        composed = len(positions) - cache_hits
        return composed, cache_hits

    def _fill_border_caches(self, vertices: set[int], outgoing: bool) -> None:
        """Batch-compute border sets for many vertices, grouped by shard."""
        if not vertices:
            return
        local_of = self._local_of
        by_shard: dict[int, list[int]] = {}
        for v in vertices:
            by_shard.setdefault(self._shard_of[v], []).append(v)
        cache = self._out_cache if outgoing else self._in_cache
        for shard, members in by_shard.items():
            borders = self._shard_borders[shard]
            if not borders:
                for v in members:
                    cache[v] = ()
                continue
            index = self._shard_indexes[shard]
            if outgoing:
                local_pairs = [
                    (local_of[v], local_of[b]) for v in members for b in borders
                ]
            else:
                local_pairs = [
                    (local_of[b], local_of[v]) for v in members for b in borders
                ]
            hits = index.query_batch(local_pairs)
            width = len(borders)
            for slot, v in enumerate(members):
                row = hits[slot * width : (slot + 1) * width]
                cache[v] = tuple(
                    self._bid_of[b] for b, hit in zip(borders, row) if hit
                )

    # -- set enumeration ---------------------------------------------------
    def _enumerate_routed(
        self, vertex: int, forward: bool
    ) -> tuple[frozenset[int], str, tuple[str, ...]]:
        """Per-shard enumeration composed through the boundary summary graph.

        Forward: the shard-local descendants of ``vertex``, plus — for
        every boundary vertex reachable (in the boundary graph) from one
        of ``vertex``'s out-borders — that border's own shard-local
        descendants.  Any cross-shard path decomposes at boundary
        vertices, and the boundary graph closes intra-shard segments, so
        the union is exact.  Backward is the mirror image over
        in-borders and boundary ancestors.
        """
        shard = self._shard_of[vertex]
        local_of = self._local_of
        shard_globals = self._shard_globals
        local_set, _route, _details = self._shard_indexes[shard]._enumerate_routed(
            local_of[vertex], forward
        )
        home_map = shard_globals[shard]
        members = {home_map[lv] for lv in local_set}
        seeds = self._out_borders(vertex) if forward else self._in_borders(vertex)
        boundary = self._boundary_index
        frontier: set[int] = set()
        if boundary is not None and seeds:
            for bid in seeds:
                bset, _r, _d = boundary._enumerate_routed(bid, forward)
                frontier |= bset
            by_shard: dict[int, list[int]] = {}
            for bid in frontier:
                g = self._boundary_globals[bid]
                by_shard.setdefault(self._shard_of[g], []).append(g)
            for other, globals_here in by_shard.items():
                index = self._shard_indexes[other]
                gmap = shard_globals[other]
                for g in globals_here:
                    bset, _r, _d = index._enumerate_routed(local_of[g], forward)
                    members.update(gmap[lv] for lv in bset)
        kind = "descendants" if forward else "ancestors"
        return (
            frozenset(members),
            "enum_compose",
            (
                f"shard {shard}: local enumeration reached {len(local_set)} "
                f"vertices; {len(seeds)} border seeds expanded through "
                f"{len(frontier)} boundary vertices to {len(members)} "
                f"{kind} overall",
            ),
        )

    # -- observability -----------------------------------------------------
    def explain(self, source: int, target: int) -> Explanation:
        """The shard route one query takes: ``intra_shard`` when the
        shard-local index decided, ``cross_shard`` for a fresh boundary
        composition, ``boundary_cache`` when the composition was
        memoised for this border pair."""
        self._check_query(source, target)
        answer, route, details = self._resolve(source, target)
        return Explanation(
            index=self.metadata.name,
            source=source,
            target=target,
            answer=answer,
            route=route,
            probe=None if route == "trivial" else (
                TriState.YES if answer else TriState.NO
            ),
            details=details,
        )

    # -- accounting --------------------------------------------------------
    def size_in_entries(self) -> int:
        """Shard indexes + boundary index + the partition map itself."""
        total = sum(inner.size_in_entries() for inner in self._shard_indexes)
        if self._boundary_index is not None:
            total += self._boundary_index.size_in_entries()
        return total + len(self._shard_of) + len(self._boundary_globals)

    def __getstate__(self) -> dict[str, object]:
        """Persistable state: drop the query-time border memoisation."""
        state = super().__getstate__()
        state["_out_cache"] = {}
        state["_in_cache"] = {}
        state["_pair_cache"] = {}
        return state

    def __repr__(self) -> str:
        return (
            f"ShardedIndex(family={self._family!r}, k={self._partition.num_shards}, "
            f"|V|={self._graph.num_vertices}, "
            f"cut={len(self._partition.cut_edges)}, "
            f"entries={self.size_in_entries()})"
        )


def _extract_shards(
    graph: DiGraph, partition: Partition
) -> tuple[list[DiGraph], list[int], list[list[int]]]:
    """Per-shard local-id subgraphs plus the global↔local vertex maps."""
    k = partition.num_shards
    shard_of = partition.shard_of
    local_of = [0] * graph.num_vertices
    shard_globals: list[list[int]] = [[] for _ in range(k)]
    for v in range(graph.num_vertices):
        shard = shard_of[v]
        local_of[v] = len(shard_globals[shard])
        shard_globals[shard].append(v)
    shard_graphs = [DiGraph(len(members)) for members in shard_globals]
    for u, v in graph.edges():
        if shard_of[u] == shard_of[v]:
            shard_graphs[shard_of[u]].add_edge(local_of[u], local_of[v])
    return shard_graphs, local_of, shard_globals


def _boundary_graph(
    graph: DiGraph,
    partition: Partition,
    shard_graphs: list[DiGraph],
    local_of: list[int],
    shard_globals: list[list[int]],
) -> tuple[DiGraph, list[int]]:
    """The boundary summary graph: cut edges + per-shard border closure.

    The closure uses one bit-parallel :func:`reach_masks` sweep per
    shard (borders batched :data:`_CLOSURE_WAVE` per wave): an edge
    ``b → b'`` is added whenever ``b`` reaches ``b'`` inside the shard,
    so multi-hop intra-shard segments of a cross-shard path collapse to
    one boundary edge.
    """
    boundary_globals = list(partition.boundary_vertices)
    bid_of = {g: b for b, g in enumerate(boundary_globals)}
    boundary = DiGraph(len(boundary_globals))
    for u, v in partition.cut_edges:
        boundary.add_edge_if_absent(bid_of[u], bid_of[v])
    shard_of = partition.shard_of
    borders_by_shard: list[list[int]] = [
        [] for _ in range(partition.num_shards)
    ]
    for g in boundary_globals:
        borders_by_shard[shard_of[g]].append(g)
    for shard, borders in enumerate(borders_by_shard):
        if len(borders) < 2:
            continue
        csr = csr_of(shard_graphs[shard])
        local_borders = [local_of[b] for b in borders]
        for base in range(0, len(borders), _CLOSURE_WAVE):
            wave = local_borders[base : base + _CLOSURE_WAVE]
            masks = reach_masks(csr, wave)
            for b_target, local_target in zip(borders, local_borders):
                mask = masks[local_target]
                while mask:
                    low = mask & -mask
                    slot = low.bit_length() - 1
                    mask ^= low
                    b_source = borders[base + slot]
                    if b_source != b_target:
                        boundary.add_edge_if_absent(
                            bid_of[b_source], bid_of[b_target]
                        )
    return boundary, boundary_globals
