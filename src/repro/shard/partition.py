"""Cutting a DAG into k edge-disjoint shards.

The survey's scalability discussion (§6) observes that single-structure
indexes hit a construction-time and memory wall as graphs grow; bounding
per-structure size — the FERRARI lever — is what keeps builds tractable,
and partitioning is the natural way to impose that bound.  This module
provides the cut: :func:`partition_dag` assigns every vertex of a DAG to
one of ``k`` shards by **topological banding** (contiguous blocks of a
deterministic topological order, so edges overwhelmingly point from a
shard into itself or a later shard) followed by a **greedy min-cut
refinement** pass that migrates boundary vertices to the shard holding
the majority of their neighbours whenever that strictly reduces the cut,
under a balance cap so no shard starves or bloats.

The result is a :class:`Partition`: the vertex→shard map, the cut edges
(edges whose endpoints land in different shards), and the statistics the
``repro shard stats`` CLI reports.  Everything downstream — per-shard
subgraphs, the boundary summary graph, the two-level query composition —
derives from this one object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import topological_order

__all__ = ["Partition", "partition_dag"]


@dataclass(frozen=True)
class Partition:
    """One vertex→shard assignment of a DAG, with its cut.

    Attributes
    ----------
    num_shards:
        The effective shard count (the requested ``k`` clamped to
        ``|V|``; every shard is non-empty).
    shard_of:
        ``shard_of[v]`` is the shard id of vertex ``v``.
    cut_edges:
        Every edge ``(u, v)`` with ``shard_of[u] != shard_of[v]``, in
        deterministic sorted order.
    num_edges:
        Edge count of the partitioned graph (denominator of
        :meth:`cut_fraction`).
    refinement_moves:
        How many vertices the greedy refinement migrated.
    """

    num_shards: int
    shard_of: tuple[int, ...]
    cut_edges: tuple[tuple[int, int], ...]
    num_edges: int
    refinement_moves: int = 0

    @property
    def shard_sizes(self) -> tuple[int, ...]:
        """Vertex count per shard."""
        sizes = [0] * self.num_shards
        for shard in self.shard_of:
            sizes[shard] += 1
        return tuple(sizes)

    @property
    def boundary_vertices(self) -> tuple[int, ...]:
        """Endpoints of cut edges, sorted — the vertices lifted into the
        boundary summary graph."""
        seen: set[int] = set()
        for u, v in self.cut_edges:
            seen.add(u)
            seen.add(v)
        return tuple(sorted(seen))

    def cut_fraction(self) -> float:
        """Cut edges as a fraction of all edges (0.0 on an empty graph)."""
        return len(self.cut_edges) / self.num_edges if self.num_edges else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable statistics (the CLI/bench payload shape)."""
        return {
            "num_shards": self.num_shards,
            "shard_sizes": list(self.shard_sizes),
            "num_edges": self.num_edges,
            "cut_edges": len(self.cut_edges),
            "cut_fraction": self.cut_fraction(),
            "boundary_vertices": len(self.boundary_vertices),
            "refinement_moves": self.refinement_moves,
        }

    def __repr__(self) -> str:
        return (
            f"Partition(k={self.num_shards}, sizes={list(self.shard_sizes)}, "
            f"cut={len(self.cut_edges)}/{self.num_edges})"
        )


def _cut_edges(graph: DiGraph, shard: list[int]) -> list[tuple[int, int]]:
    return sorted(
        (u, v) for u, v in graph.edges() if shard[u] != shard[v]
    )


def partition_dag(
    graph: DiGraph, num_shards: int, refine_passes: int = 2
) -> Partition:
    """Partition a DAG into ``num_shards`` edge-disjoint shards.

    Raises :class:`~repro.errors.NotADAGError` on cyclic input (partition
    the condensation instead) and :class:`~repro.errors.GraphError` on a
    non-positive shard count.  ``num_shards`` is clamped to ``|V|`` so
    every shard is non-empty; ``k=1`` degenerates to the trivial
    partition with an empty cut.

    Banding slices the deterministic topological order into ``k``
    near-equal contiguous blocks — level-consistent, so every edge goes
    from a shard to itself or a later one.  Refinement then sweeps the
    boundary up to ``refine_passes`` times, moving a vertex to the shard
    holding the strict majority of its neighbours when the move reduces
    the cut, capped at ~1.2·|V|/k vertices per shard and never emptying
    one.
    """
    if num_shards < 1:
        raise GraphError(f"num_shards must be >= 1, got {num_shards}")
    if refine_passes < 0:
        raise GraphError(f"refine_passes must be >= 0, got {refine_passes}")
    order = topological_order(graph)  # raises NotADAGError on cycles
    n = graph.num_vertices
    k = max(1, min(num_shards, n))
    shard = [0] * n
    for position, v in enumerate(order):
        shard[v] = position * k // n if n else 0
    moves = 0
    if k > 1:
        sizes = [0] * k
        for s in shard:
            sizes[s] += 1
        max_size = max(2, (n + k - 1) // k + max(1, n // (5 * k)))
        for _ in range(refine_passes):
            moved_this_pass = False
            boundary = sorted(
                {u for u, v in graph.edges() if shard[u] != shard[v]}
                | {v for u, v in graph.edges() if shard[u] != shard[v]}
            )
            for v in boundary:
                current = shard[v]
                if sizes[current] <= 1:
                    continue  # never empty a shard
                tally: dict[int, int] = {}
                for w in graph.out_neighbors(v):
                    tally[shard[w]] = tally.get(shard[w], 0) + 1
                for w in graph.in_neighbors(v):
                    tally[shard[w]] = tally.get(shard[w], 0) + 1
                here = tally.get(current, 0)
                best, best_count = current, here
                for candidate in sorted(tally):
                    if (
                        tally[candidate] > best_count
                        and candidate != current
                        and sizes[candidate] < max_size
                    ):
                        best, best_count = candidate, tally[candidate]
                if best != current:
                    shard[v] = best
                    sizes[current] -= 1
                    sizes[best] += 1
                    moves += 1
                    moved_this_pass = True
            if not moved_this_pass:
                break
    return Partition(
        num_shards=k,
        shard_of=tuple(shard),
        cut_edges=tuple(_cut_edges(graph, shard)),
        num_edges=graph.num_edges,
        refinement_moves=moves,
    )
