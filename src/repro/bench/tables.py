"""Plain-text table rendering for benchmark and experiment output.

Every benchmark prints its result as an aligned ASCII table in the same
row/column shape as the corresponding paper artifact, so paper-vs-measured
comparison (EXPERIMENTS.md) is a visual diff.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_seconds", "format_count"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-readable duration (µs/ms/s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def format_count(value: float) -> str:
    """Human-readable count with thousands separators."""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}"
    return f"{int(value):,}"
