"""Timing and measurement helpers shared by the benchmark suite.

pytest-benchmark handles the statistically careful per-operation timing;
this module covers the coarser measurements the experiment tables need —
build times, index sizes, workload throughput, false-positive rates — in
a form both the ``benchmarks/`` suite and the CLI reuse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.base import ReachabilityIndex, TriState
from repro.core.condensed import CondensedIndex
from repro.graphs.digraph import DiGraph
from repro.graphs.topo import is_dag
from repro.obs.build import BuildReport
from repro.workloads.queries import PlainQuery

__all__ = [
    "BuildResult",
    "WorkloadResult",
    "build_index",
    "time_workload",
    "lookup_statistics",
]


@dataclass(frozen=True)
class BuildResult:
    """Outcome of building one index."""

    name: str
    build_seconds: float
    entries: int
    index: ReachabilityIndex
    report: BuildReport | None = None


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of running a workload against one query function."""

    name: str
    total_seconds: float
    num_queries: int
    wrong_answers: int

    @property
    def per_query_seconds(self) -> float:
        """Mean seconds per query."""
        return self.total_seconds / max(1, self.num_queries)


def build_index(
    cls: type[ReachabilityIndex], graph: DiGraph, **params: object
) -> BuildResult:
    """Build an index, wrapping DAG-only techniques on cyclic input."""
    start = time.perf_counter()
    if cls.metadata.input_kind == "DAG" and not is_dag(graph):
        index: ReachabilityIndex = CondensedIndex.build(graph, inner=cls, **params)
    else:
        index = cls.build(graph, **params)
    elapsed = time.perf_counter() - start
    return BuildResult(
        name=cls.metadata.name,
        build_seconds=elapsed,
        entries=index.size_in_entries(),
        index=index,
        report=getattr(index, "build_report", None),
    )


def time_workload(
    name: str,
    answer: "callable",
    workload: list[PlainQuery],
) -> WorkloadResult:
    """Run every query through ``answer(s, t)`` and check the ground truth."""
    wrong = 0
    start = time.perf_counter()
    for query in workload:
        if answer(query.source, query.target) != query.reachable:
            wrong += 1
    elapsed = time.perf_counter() - start
    return WorkloadResult(
        name=name,
        total_seconds=elapsed,
        num_queries=len(workload),
        wrong_answers=wrong,
    )


def lookup_statistics(
    index: ReachabilityIndex, workload: list[PlainQuery]
) -> dict[str, int]:
    """Classify raw index probes against ground truth.

    Returns counts of true/false positives/negatives and MAYBEs — the raw
    material for the §3.3 false-positive-rate experiment (partial indexes
    must show zero ``false_negative``).
    """
    counts = {
        "yes_correct": 0,
        "yes_wrong": 0,  # false positives at the lookup level
        "no_correct": 0,
        "no_wrong": 0,  # false negatives: must stay zero for §3.3 indexes
        "maybe_reachable": 0,
        "maybe_unreachable": 0,
    }
    for query in workload:
        probe = index.lookup(query.source, query.target)
        if probe is TriState.YES:
            counts["yes_correct" if query.reachable else "yes_wrong"] += 1
        elif probe is TriState.NO:
            counts["no_correct" if not query.reachable else "no_wrong"] += 1
        else:
            key = "maybe_reachable" if query.reachable else "maybe_unreachable"
            counts[key] += 1
    return counts
