"""Experiment definitions — one function per DESIGN.md experiment id.

Each function computes the rows of one paper artifact or prose claim
(tables TAB1/TAB2, the FIG1 checks, and the CLAIM-* / ABL-* suites) and
returns plain data; the ``benchmarks/`` suite prints them via
:mod:`repro.bench.tables` and asserts the claim-level expectations, and
EXPERIMENTS.md records the measured outcomes.
"""

from __future__ import annotations

import time

from repro.bench.harness import build_index, lookup_statistics, time_workload
from repro.core.registry import all_labeled_indexes, all_plain_indexes, plain_index
from repro.graphs.generators import random_dag, scale_free_dag
from repro.graphs.labeled import LabeledDiGraph
from repro.graphs.reduction import reduce_dag
from repro.traversal.online import bfs_reachable, bibfs_reachable, dfs_reachable
from repro.traversal.rpq import rpq_reachable
from repro.workloads.queries import (
    ConstrainedQuery,
    alternation_workload,
    plain_workload,
)

__all__ = [
    "taxonomy_table1_rows",
    "taxonomy_table2_rows",
    "query_speed_rows",
    "build_scaling_rows",
    "index_size_rows",
    "approx_tc_rows",
    "dynamic_rows",
    "lcr_rows",
    "lcr_build_rows",
    "ablation_grail_rows",
    "ablation_ferrari_rows",
    "ablation_order_rows",
    "ablation_reduction_rows",
]

# Indexes cheap enough for the standard benchmark graph sizes.  The
# quadratic/greedy techniques (2-Hop, Dual labeling, path-hop…) get the
# smaller graphs their papers targeted.
FAST_PLAIN = [
    "GRAIL",
    "Ferrari",
    "BFL",
    "IP",
    "PLL",
    "DL",
    "TFL",
    "TOL",
    "Preach",
    "Feline",
    "O'Reach",
    "DBL",
    "GRIPP",
    "Tree+SSPI",
    "DAGGER",
    "Path-tree",
]


def taxonomy_table1_rows() -> list[tuple[str, str, str, str, str]]:
    """TAB1: the Table 1 taxonomy from live metadata."""
    rows = []
    for cls in all_plain_indexes().values():
        meta = cls.metadata
        rows.append(
            (meta.name, meta.framework, meta.index_type, meta.input_kind, meta.dynamic)
        )
    rows.sort(key=lambda r: (r[1], r[0]))
    return rows


def taxonomy_table2_rows() -> list[tuple[str, str, str, str, str, str]]:
    """TAB2: the Table 2 taxonomy from live metadata."""
    rows = []
    for cls in all_labeled_indexes().values():
        meta = cls.metadata
        rows.append(
            (
                meta.name,
                meta.framework,
                meta.constraint or "-",
                meta.index_type,
                meta.input_kind,
                meta.dynamic,
            )
        )
    rows.sort(key=lambda r: (r[1], r[0]))
    return rows


def query_speed_rows(
    layers: int = 40,
    width: int = 50,
    seed: int = 5,
    num_queries: int = 400,
    positive_fraction: float = 0.3,
) -> list[dict[str, object]]:
    """CLAIM-S3-SPEED: per-query time, traversal baselines vs indexes.

    Uses a deep layered DAG — the regime the claim targets: traversal
    must visit "a large portion of the graph" per query, while labelings
    answer from a few comparisons.
    """
    from repro.graphs.generators import layered_dag

    graph = layered_dag(layers, width, edges_per_vertex=3, seed=seed)
    workload = plain_workload(graph, num_queries, positive_fraction, seed=seed + 1)
    rows: list[dict[str, object]] = []
    for name, fn in (
        ("BFS", lambda s, t: bfs_reachable(graph, s, t)),
        ("DFS", lambda s, t: dfs_reachable(graph, s, t)),
        ("BiBFS", lambda s, t: bibfs_reachable(graph, s, t)),
    ):
        result = time_workload(name, fn, workload)
        rows.append(
            {
                "name": name,
                "kind": "traversal",
                "per_query": result.per_query_seconds,
                "entries": 0,
                "wrong": result.wrong_answers,
            }
        )
    for name in FAST_PLAIN:
        built = build_index(plain_index(name), graph)
        result = time_workload(name, built.index.query, workload)
        rows.append(
            {
                "name": name,
                "kind": "index",
                "per_query": result.per_query_seconds,
                "entries": built.entries,
                "wrong": result.wrong_answers,
                "build_seconds": built.build_seconds,
                "build_phases": (
                    [phase.as_dict() for phase in built.report.phases]
                    if built.report is not None
                    else []
                ),
            }
        )
    return rows


def build_scaling_rows(
    sizes: tuple[int, ...] = (250, 500, 1000, 2000),
    seed: int = 6,
    names: tuple[str, ...] = ("GRAIL", "Ferrari", "BFL", "IP", "Feline", "Preach"),
) -> list[dict[str, object]]:
    """CLAIM-S3-SCALE: partial-index build time and size across |V|."""
    rows: list[dict[str, object]] = []
    for n in sizes:
        graph = random_dag(n, 3 * n, seed=seed)
        for name in names:
            built = build_index(plain_index(name), graph)
            rows.append(
                {
                    "name": name,
                    "vertices": n,
                    "edges": graph.num_edges,
                    "build_seconds": built.build_seconds,
                    "entries": built.entries,
                }
            )
    return rows


def index_size_rows(
    num_vertices: int = 300, seed: int = 7
) -> list[dict[str, object]]:
    """CLAIM-S3-SIZE: entries per index on one graph, TC included.

    Sizes come from the uniform ``index.size_report()`` surface — the
    same numbers the advisor's budget logic consumes.
    """
    graph = random_dag(num_vertices, 4 * num_vertices, seed=seed)
    rows: list[dict[str, object]] = []
    for name in sorted(all_plain_indexes()):
        if name in ("2-Hop",):  # O(n^4) greedy: measured separately below
            continue
        built = build_index(plain_index(name), graph)
        size = built.index.size_report()
        rows.append(
            {
                "name": name,
                "entries": size.entries,
                "build_seconds": built.build_seconds,
                "bytes": size.estimated_bytes,
            }
        )
    small = random_dag(120, 300, seed=seed)
    built = build_index(plain_index("2-Hop"), small)
    size = built.index.size_report()
    rows.append(
        {
            "name": "2-Hop (n=120)",
            "entries": size.entries,
            "build_seconds": built.build_seconds,
            "bytes": size.estimated_bytes,
        }
    )
    rows.sort(key=lambda r: r["entries"])
    return rows


def approx_tc_rows(
    num_vertices: int = 1200, seed: int = 8, num_queries: int = 600
) -> list[dict[str, object]]:
    """CLAIM-S33-FPR: lookup outcomes for the approximate-TC indexes."""
    graph = scale_free_dag(num_vertices, edges_per_vertex=3, seed=seed)
    workload = plain_workload(graph, num_queries, positive_fraction=0.25, seed=seed + 1)
    negatives = sum(1 for q in workload if not q.reachable)
    rows: list[dict[str, object]] = []
    configs = [
        ("IP", {"k": 2}),
        ("IP", {"k": 5}),
        ("BFL", {"bits": 32}),
        ("BFL", {"bits": 160}),
        ("GRAIL", {"k": 2}),
        ("GRAIL", {"k": 5}),
    ]
    for name, params in configs:
        built = build_index(plain_index(name), graph, **params)
        stats = lookup_statistics(built.index, workload)
        assert stats["no_wrong"] == 0, f"{name} produced a false negative"
        timing = time_workload(name, built.index.query, workload)
        rows.append(
            {
                "name": f"{name} {params}",
                "entries": built.entries,
                "negatives_killed": stats["no_correct"],
                "negatives_total": negatives,
                "false_positive_maybes": stats["maybe_unreachable"],
                "per_query": timing.per_query_seconds,
            }
        )
    return rows


def dynamic_rows(
    num_vertices: int = 400, seed: int = 9, num_updates: int = 60
) -> list[dict[str, object]]:
    """CLAIM-S32-DYN: maintenance cost per update vs full rebuild."""
    from repro.workloads.updates import update_stream

    rows: list[dict[str, object]] = []
    for name in ("TOL", "U2-hop", "Path-tree", "IP", "DAGGER", "DBL"):
        cls = plain_index(name)
        graph = random_dag(num_vertices, 3 * num_vertices, seed=seed)
        index = cls.build(graph.copy())
        stream = update_stream(
            graph,
            num_updates,
            seed=seed + 1,
            delete_fraction=0.4 if cls.metadata.dynamic == "yes" else 0.0,
            keep_acyclic=cls.metadata.input_kind == "DAG",
        )
        insert_time = delete_time = 0.0
        inserts = deletes = 0
        for op in stream:
            start = time.perf_counter()
            if op.kind == "insert":
                index.insert_edge(op.source, op.target)
                insert_time += time.perf_counter() - start
                inserts += 1
            else:
                index.delete_edge(op.source, op.target)
                delete_time += time.perf_counter() - start
                deletes += 1
        rebuild_start = time.perf_counter()
        cls.build(index.graph.copy())
        rebuild_seconds = time.perf_counter() - rebuild_start
        rows.append(
            {
                "name": name,
                "insert_ms": 1e3 * insert_time / max(1, inserts),
                "delete_ms": (1e3 * delete_time / deletes) if deletes else None,
                "rebuild_ms": 1e3 * rebuild_seconds,
            }
        )
    return rows


def _labeled_benchmark_graph(num_vertices: int, seed: int) -> LabeledDiGraph:
    from repro.graphs.generators import with_random_labels

    base = scale_free_dag(num_vertices, edges_per_vertex=3, seed=seed)
    return with_random_labels(base, ["a", "b", "c", "d"], seed=seed + 1, skew=0.5)


def _time_constrained(
    name: str, answer, workload: list[ConstrainedQuery]
) -> dict[str, object]:
    wrong = 0
    start = time.perf_counter()
    for q in workload:
        if answer(q.source, q.target, q.constraint) != q.reachable:
            wrong += 1
    elapsed = time.perf_counter() - start
    return {
        "name": name,
        "per_query": elapsed / max(1, len(workload)),
        "wrong": wrong,
    }


def lcr_rows(
    num_vertices: int = 300, seed: int = 10, num_queries: int = 150
) -> list[dict[str, object]]:
    """CLAIM-S4-LCR: LCR query time — online vs the §4.1 index families."""
    graph = _labeled_benchmark_graph(num_vertices, seed)
    workload = alternation_workload(graph, num_queries, seed=seed + 2, max_labels=3)
    rows: list[dict[str, object]] = []
    rows.append(
        _time_constrained(
            "guided BFS", lambda s, t, c: rpq_reachable(graph, s, t, c), workload
        )
    )
    labeled = all_labeled_indexes()
    for name in ("Landmark index", "P2H+", "Jin et al.", "Chen et al.", "Zou et al."):
        cls = labeled[name]
        start = time.perf_counter()
        index = cls.build(graph.copy())
        build_seconds = time.perf_counter() - start
        row = _time_constrained(name, index.query, workload)
        row["build_seconds"] = build_seconds
        row["entries"] = index.size_in_entries()
        rows.append(row)
    return rows


def lcr_build_rows(num_vertices: int = 300, seed: int = 11) -> list[dict[str, object]]:
    """CLAIM-S4-BUILD: path-constrained indexing costs more than plain."""
    graph = _labeled_benchmark_graph(num_vertices, seed)
    plain = graph.to_plain()
    rows: list[dict[str, object]] = []
    for name in ("PLL", "GRAIL", "BFL"):
        built = build_index(plain_index(name), plain)
        rows.append(
            {
                "name": f"plain/{name}",
                "build_seconds": built.build_seconds,
                "entries": built.entries,
            }
        )
    labeled = all_labeled_indexes()
    for name in ("P2H+", "Landmark index", "Jin et al.", "Zou et al."):
        start = time.perf_counter()
        index = labeled[name].build(graph.copy())
        rows.append(
            {
                "name": f"labeled/{name}",
                "build_seconds": time.perf_counter() - start,
                "entries": index.size_in_entries(),
            }
        )
    return rows


def ablation_grail_rows(
    num_vertices: int = 1200, seed: int = 12, num_queries: int = 400
) -> list[dict[str, object]]:
    """ABL-GRAIL-K: more traversals -> fewer MAYBEs, slower build."""
    graph = scale_free_dag(num_vertices, edges_per_vertex=3, seed=seed)
    workload = plain_workload(graph, num_queries, positive_fraction=0.3, seed=seed + 1)
    rows: list[dict[str, object]] = []
    for k in (1, 2, 3, 5, 8):
        built = build_index(plain_index("GRAIL"), graph, k=k)
        stats = lookup_statistics(built.index, workload)
        timing = time_workload(f"GRAIL k={k}", built.index.query, workload)
        rows.append(
            {
                "k": k,
                "build_seconds": built.build_seconds,
                "entries": built.entries,
                "maybes_on_negative": stats["maybe_unreachable"],
                "per_query": timing.per_query_seconds,
            }
        )
    return rows


def ablation_ferrari_rows(
    num_vertices: int = 600, seed: int = 13, num_queries: int = 300
) -> list[dict[str, object]]:
    """ABL-FERRARI-K: the interval budget trades size for exactness."""
    graph = random_dag(num_vertices, 3 * num_vertices, seed=seed)
    workload = plain_workload(graph, num_queries, positive_fraction=0.4, seed=seed + 1)
    rows: list[dict[str, object]] = []
    for k in (1, 2, 4, 8, 16):
        built = build_index(plain_index("Ferrari"), graph, k=k)
        stats = lookup_statistics(built.index, workload)
        rows.append(
            {
                "k": k,
                "entries": built.entries,
                "exact_yes": stats["yes_correct"],
                "maybes": stats["maybe_reachable"] + stats["maybe_unreachable"],
            }
        )
    return rows


def ablation_order_rows(
    num_vertices: int = 400, seed: int = 14
) -> list[dict[str, object]]:
    """ABL-ORDER: TOL instantiations — label size depends on the order."""
    import random as _random

    graph = scale_free_dag(num_vertices, edges_per_vertex=3, seed=seed)
    from repro.graphs.topo import topological_order
    from repro.plain.pruned import degree_order

    orders = {
        "degree sum (PLL)": degree_order(graph),
        "degree product (DL)": sorted(
            graph.vertices(),
            key=lambda v: (
                -(graph.in_degree(v) + 1) * (graph.out_degree(v) + 1),
                v,
            ),
        ),
        "topological (TFL)": topological_order(graph),
        "random": _random.Random(seed).sample(
            list(graph.vertices()), graph.num_vertices
        ),
    }
    rows: list[dict[str, object]] = []
    for order_name, order in orders.items():
        start = time.perf_counter()
        index = plain_index("TOL").build(graph.copy(), order=order)
        rows.append(
            {
                "order": order_name,
                "build_seconds": time.perf_counter() - start,
                "entries": index.size_in_entries(),
            }
        )
    return rows


def ablation_reduction_rows(
    num_vertices: int = 600, seed: int = 15
) -> list[dict[str, object]]:
    """ABL-REDUCTION: §3.4 graph reduction shrinks downstream indexes."""
    graph = random_dag(num_vertices, 4 * num_vertices, seed=seed)
    reduced = reduce_dag(graph)
    rows: list[dict[str, object]] = []
    for name in ("PLL", "GRAIL", "Tree cover"):
        direct = build_index(plain_index(name), graph)
        on_reduced = build_index(plain_index(name), reduced.dag)
        rows.append(
            {
                "name": name,
                "entries_direct": direct.entries,
                "entries_reduced": on_reduced.entries,
                "build_direct": direct.build_seconds,
                "build_reduced": on_reduced.build_seconds,
                "edges_removed": reduced.edges_removed,
                "vertices_merged": reduced.vertices_merged,
            }
        )
    return rows
