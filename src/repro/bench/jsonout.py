"""Machine-readable benchmark artifacts: ``BENCH_<name>.json``.

The ASCII tables the benchmark suite prints are for humans; CI and
regression tooling need the same numbers as JSON.  Every benchmark that
measures a claim can emit one artifact through :func:`emit`, so the
files share an envelope (benchmark name, interpreter, platform) and a
predictable filename — ``BENCH_batch.json``, ``BENCH_query_speed.json``
— that a smoke job can pick up without per-benchmark glue.

Standalone benchmark scripts add the flag with :func:`add_json_argument`
and pass ``args.json`` straight to :func:`emit`; under pytest the tests
call :func:`emit` with no path and the artifact lands in the working
directory.
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

__all__ = ["add_json_argument", "bench_path", "emit"]


def bench_path(name: str, directory: str | Path = ".") -> Path:
    """The conventional artifact path: ``<directory>/BENCH_<name>.json``."""
    return Path(directory) / f"BENCH_{name}.json"


def add_json_argument(parser: argparse.ArgumentParser, name: str) -> None:
    """Register the common ``--json PATH`` flag (default: ``BENCH_<name>.json``)."""
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=str(bench_path(name)),
        help=f"write results as JSON (default: {bench_path(name)})",
    )


def emit(name: str, results: object, path: str | Path | None = None) -> Path:
    """Write ``results`` under the shared envelope; returns the file written.

    ``results`` must be JSON-serialisable (plain dicts/lists/numbers from
    the measurement code).  ``path=None`` uses :func:`bench_path` in the
    current directory.
    """
    target = Path(path) if path is not None else bench_path(name)
    document = {
        "bench": name,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target
