"""Machine-readable benchmark artifacts: ``BENCH_<name>.json``.

The ASCII tables the benchmark suite prints are for humans; CI and
regression tooling need the same numbers as JSON.  Every benchmark that
measures a claim can emit one artifact through :func:`emit`, so the
files share an envelope (benchmark name, interpreter, platform, and a
:func:`provenance` stamp — git sha plus UTC date) and a
predictable filename — ``BENCH_batch.json``, ``BENCH_query_speed.json``
— that a smoke job can pick up without per-benchmark glue.

Standalone benchmark scripts add the flag with :func:`add_json_argument`
and pass ``args.json`` straight to :func:`emit`; under pytest the tests
call :func:`emit` with no path and the artifact lands in the working
directory.
"""

from __future__ import annotations

import argparse
import datetime
import functools
import json
import platform
import subprocess
from pathlib import Path

__all__ = ["add_json_argument", "bench_path", "emit", "provenance"]


@functools.lru_cache(maxsize=1)
def _git_revision() -> str:
    """The repository HEAD sha, or ``"unknown"`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def provenance() -> dict[str, str]:
    """Where and when a benchmark artifact was produced.

    Stamped into every :func:`emit` envelope so a ``BENCH_*.json`` found
    on disk can be traced to a commit and an interpreter without relying
    on file mtimes.
    """
    from repro import accel

    return {
        "git_sha": _git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "backend": accel.backend_name(),
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
    }


def bench_path(name: str, directory: str | Path = ".") -> Path:
    """The conventional artifact path: ``<directory>/BENCH_<name>.json``."""
    return Path(directory) / f"BENCH_{name}.json"


def add_json_argument(parser: argparse.ArgumentParser, name: str) -> None:
    """Register the common ``--json PATH`` flag (default: ``BENCH_<name>.json``)."""
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=str(bench_path(name)),
        help=f"write results as JSON (default: {bench_path(name)})",
    )


def emit(name: str, results: object, path: str | Path | None = None) -> Path:
    """Write ``results`` under the shared envelope; returns the file written.

    ``results`` must be JSON-serialisable (plain dicts/lists/numbers from
    the measurement code).  ``path=None`` uses :func:`bench_path` in the
    current directory.  The envelope carries ``schema_version`` so
    regression tooling (``tools/bench_compare.py``) can refuse artifacts
    it does not understand instead of misreading them.
    """
    target = Path(path) if path is not None else bench_path(name)
    stamp = provenance()
    document = {
        "schema_version": 1,
        "bench": name,
        "python": stamp["python"],
        "platform": stamp["platform"],
        "provenance": stamp,
        "results": results,
    }
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target
