"""Benchmark harness: timing helpers, table rendering, JSON artifacts."""

from repro.bench.harness import (
    BuildResult,
    WorkloadResult,
    build_index,
    lookup_statistics,
    time_workload,
)
from repro.bench.jsonout import add_json_argument, bench_path, emit
from repro.bench.tables import format_count, format_seconds, render_table

__all__ = [
    "BuildResult",
    "WorkloadResult",
    "build_index",
    "lookup_statistics",
    "time_workload",
    "add_json_argument",
    "bench_path",
    "emit",
    "format_count",
    "format_seconds",
    "render_table",
]
