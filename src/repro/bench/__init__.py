"""Benchmark harness: timing helpers and table rendering."""

from repro.bench.harness import (
    BuildResult,
    WorkloadResult,
    build_index,
    lookup_statistics,
    time_workload,
)
from repro.bench.tables import format_count, format_seconds, render_table

__all__ = [
    "BuildResult",
    "WorkloadResult",
    "build_index",
    "lookup_statistics",
    "time_workload",
    "format_count",
    "format_seconds",
    "render_table",
]
