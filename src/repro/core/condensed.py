"""Lifting DAG-only indexes to general graphs via SCC condensation.

§3.1 of the survey: "most plain reachability indexes in literature assume
DAGs as input since generalization is easy" — coarsen every strongly
connected component into one vertex (Tarjan), answer same-SCC queries
immediately, and delegate cross-SCC queries to the DAG index built over the
condensation.  :class:`CondensedIndex` implements exactly that wrapper for
*any* :class:`~repro.core.base.ReachabilityIndex`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import ClassVar

from repro.core.base import Explanation, IndexMetadata, ReachabilityIndex, TriState
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import Condensation, condense
from repro.obs.build import build_phase
from repro.obs.metrics import global_registry
from repro.obs.tracer import TRACER

__all__ = ["CondensedIndex"]


class CondensedIndex(ReachabilityIndex):
    """A DAG-only index wrapped to accept general (possibly cyclic) graphs.

    ``CondensedIndex.build(graph, inner=SomeDagIndex, **params)`` condenses
    ``graph``, builds ``SomeDagIndex`` over the condensation DAG, and routes
    queries through the SCC map.
    """

    metadata: ClassVar[IndexMetadata] = IndexMetadata(
        name="Condensed",
        framework="-",
        complete=True,
        input_kind="General",
        dynamic="no",
    )

    def __init__(
        self,
        graph: DiGraph,
        condensation: Condensation,
        inner_index: ReachabilityIndex,
    ) -> None:
        super().__init__(graph)
        self._condensation = condensation
        self._inner = inner_index
        # The taxonomy row of the wrapper: same technique, general input.
        self.metadata = dataclasses.replace(
            inner_index.metadata,
            name=f"{inner_index.metadata.name}+SCC",
            input_kind="General",
        )

    @classmethod
    def build(
        cls,
        graph: DiGraph,
        inner: type[ReachabilityIndex] | None = None,
        **params: object,
    ) -> "CondensedIndex":
        """Condense ``graph`` and build ``inner`` over the resulting DAG."""
        if inner is None:
            raise TypeError("CondensedIndex.build requires inner=<DAG index class>")
        with build_phase("scc-condense") as phase:
            condensation = condense(graph)
            phase.annotate(
                vertices=graph.num_vertices,
                sccs=condensation.dag.num_vertices,
            )
        # The inner build is itself observed; it nests as a child phase.
        inner_index = inner.build(condensation.dag, **params)
        return cls(graph, condensation, inner_index)

    @property
    def inner(self) -> ReachabilityIndex:
        """The wrapped DAG index (built over the condensation)."""
        return self._inner

    @property
    def condensation(self) -> Condensation:
        """The SCC condensation of the original graph."""
        return self._condensation

    def lookup(self, source: int, target: int) -> TriState:
        """Same-SCC queries answer YES; otherwise probe the DAG index."""
        self._check_query(source, target)
        cs = self._condensation.scc_of[source]
        ct = self._condensation.scc_of[target]
        if cs == ct:
            return TriState.YES
        return self._inner.lookup(cs, ct)

    def lookup_batch(self, pairs: Sequence[tuple[int, int]]) -> list[TriState]:
        """Batch probes: same-SCC pairs answer YES, the rest batch inward."""
        self._check_pairs(pairs)
        scc_of = self._condensation.scc_of
        condensed = [(scc_of[s], scc_of[t]) for s, t in pairs]
        crossing = [(cs, ct) for cs, ct in condensed if cs != ct]
        inner = iter(self._inner.lookup_batch(crossing))
        yes = TriState.YES
        return [yes if cs == ct else next(inner) for cs, ct in condensed]

    def query(self, source: int, target: int) -> bool:
        self._check_query(source, target)
        cs = self._condensation.scc_of[source]
        ct = self._condensation.scc_of[target]
        if cs == ct:
            if TRACER.enabled:
                global_registry().counter("index.route.same_scc").increment()
            return True
        # Cross-SCC: the inner DAG index attributes its own route.
        return self._inner.query(cs, ct)

    def explain(self, source: int, target: int) -> Explanation:
        """The decision path through the SCC map and the inner DAG index."""
        self._check_query(source, target)
        cs = self._condensation.scc_of[source]
        ct = self._condensation.scc_of[target]
        if cs == ct:
            return Explanation(
                index=self.metadata.name,
                source=source,
                target=target,
                answer=True,
                route="same_scc",
                probe=TriState.YES,
                details=(
                    f"both vertices collapse into SCC {cs}: mutually reachable",
                ),
            )
        inner = self._inner.explain(cs, ct)
        return Explanation(
            index=self.metadata.name,
            source=source,
            target=target,
            answer=inner.answer,
            route=inner.route,
            probe=inner.probe,
            details=(
                f"condensed: scc({source})={cs}, scc({target})={ct}; "
                f"delegated to {inner.index} over the condensation DAG",
                *inner.details,
            ),
        )

    def query_batch(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Batch queries through the SCC map, delegating cross-SCC pairs.

        The inner index sees one batched call over the condensation DAG,
        so its own amortised paths (bit-parallel fallback, label merges)
        apply to the whole batch at once.
        """
        self._check_pairs(pairs)
        scc_of = self._condensation.scc_of
        condensed = [(scc_of[s], scc_of[t]) for s, t in pairs]
        crossing = [(cs, ct) for cs, ct in condensed if cs != ct]
        inner = iter(self._inner.query_batch(crossing))
        return [True if cs == ct else next(inner) for cs, ct in condensed]

    def _enumerate_routed(
        self, vertex: int, forward: bool
    ) -> tuple[frozenset[int], str, tuple[str, ...]]:
        """Enumerate over the condensation and expand SCC members.

        The inner DAG index enumerates condensed vertices through its own
        fast path; each condensed vertex then expands to its SCC members,
        which always include ``vertex``'s own component.
        """
        cond = self._condensation
        cv = cond.scc_of[vertex]
        inner_set, route, details = self._inner._enumerate_routed(cv, forward)
        members: list[int] = []
        for c in inner_set:
            members.extend(cond.members[c])
        return (
            frozenset(members),
            route,
            (
                f"condensed: scc({vertex})={cv}; {len(inner_set)} condensed "
                f"vertices expanded to {len(members)} members",
                *details,
            ),
        )

    def size_in_entries(self) -> int:
        """Inner index entries plus one SCC-map entry per vertex."""
        return self._inner.size_in_entries() + self._graph.num_vertices
