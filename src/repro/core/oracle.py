"""High-level facades over the index registry.

:class:`PlainReachabilityOracle` and :class:`PathReachabilityOracle` are
the "just answer my query" entry points a GDBMS would embed (§5's
integration discussion): they pick an index by name, transparently wrap
DAG-only techniques with SCC condensation when the input is cyclic, and —
for path queries — dispatch on the constraint class (alternation → LCR
index, concatenation → RLC index, anything else → automaton-guided
traversal, the only strategy that covers full RPQs today).
"""

from __future__ import annotations

from repro.core.base import LabelConstrainedIndex, ReachabilityIndex
from repro.core.condensed import CondensedIndex
from repro.core.registry import labeled_index, plain_index
from repro.errors import UnsupportedConstraintError
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.graphs.topo import is_dag
from repro.traversal.regex import (
    RegexNode,
    alternation_label_set,
    concatenation_sequence,
    parse_constraint,
)
from repro.traversal.rpq import rpq_reachable

__all__ = ["PlainReachabilityOracle", "PathReachabilityOracle"]


class PlainReachabilityOracle:
    """Answer plain reachability queries with a chosen index.

    Parameters
    ----------
    graph:
        The (possibly cyclic) input graph.
    index_name:
        A Table 1 index name (default ``"PLL"``).  DAG-only indexes are
        wrapped with SCC condensation automatically on cyclic input.
    params:
        Extra build parameters forwarded to the index (``k=…``, ``seed=…``).
    """

    def __init__(self, graph: DiGraph, index_name: str = "PLL", **params: object) -> None:
        cls = plain_index(index_name)
        self._index: ReachabilityIndex
        if cls.metadata.input_kind == "DAG" and not is_dag(graph):
            self._index = CondensedIndex.build(graph, inner=cls, **params)
        else:
            self._index = cls.build(graph, **params)

    @property
    def index(self) -> ReachabilityIndex:
        """The underlying (possibly condensation-wrapped) index."""
        return self._index

    def reachable(self, source: int, target: int) -> bool:
        """Whether ``target`` is reachable from ``source``."""
        return self._index.query(source, target)

    def size_in_entries(self) -> int:
        """The index's size in entries."""
        return self._index.size_in_entries()


class PathReachabilityOracle:
    """Answer path-constrained reachability queries, dispatching on α.

    Alternation constraints go to an LCR index (default ``"P2H+"``),
    concatenation constraints to the RLC index, and any other regular
    expression to automaton-guided traversal — mirroring §5's observation
    that no single index today covers the full RPQ fragment.
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        alternation_index: str = "P2H+",
        concatenation_index: str = "RLC",
        **params: object,
    ) -> None:
        self._graph = graph
        self._alternation: LabelConstrainedIndex = labeled_index(
            alternation_index
        ).build(graph, **params)
        self._concatenation: LabelConstrainedIndex = labeled_index(
            concatenation_index
        ).build(graph)

    @property
    def alternation_index(self) -> LabelConstrainedIndex:
        """The index serving ``(l1 ∪ l2 ∪ …)*`` constraints."""
        return self._alternation

    @property
    def concatenation_index(self) -> LabelConstrainedIndex:
        """The index serving ``(l1 · l2 · …)*`` constraints."""
        return self._concatenation

    def reachable(self, source: int, target: int, constraint: str | RegexNode) -> bool:
        """Whether a constrained ``source``-``target`` path exists."""
        node = parse_constraint(constraint)
        if alternation_label_set(node) is not None:
            return self._alternation.query(source, target, node)
        if concatenation_sequence(node) is not None:
            try:
                return self._concatenation.query(source, target, node)
            except UnsupportedConstraintError:
                pass  # period beyond the index bound: fall back to traversal
        return rpq_reachable(self._graph, source, target, node)
