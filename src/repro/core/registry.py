"""Name → index-class registry.

Every index implementation registers itself at import time with the
:func:`register_plain` / :func:`register_labeled` decorators.  The taxonomy
benchmarks (Tables 1 and 2) walk these registries and print each class's
:class:`~repro.core.base.IndexMetadata`, so the published tables are
regenerated from the live implementations rather than hand-copied.
"""

from __future__ import annotations

import importlib
from typing import TypeVar

from repro.core.base import LabelConstrainedIndex, ReachabilityIndex
from repro.errors import ReproError

__all__ = [
    "register_plain",
    "register_labeled",
    "plain_index",
    "labeled_index",
    "all_plain_indexes",
    "all_labeled_indexes",
]

_PLAIN: dict[str, type[ReachabilityIndex]] = {}
_LABELED: dict[str, type[LabelConstrainedIndex]] = {}

P = TypeVar("P", bound=type[ReachabilityIndex])
L = TypeVar("L", bound=type[LabelConstrainedIndex])


def register_plain(cls: P) -> P:
    """Class decorator: add a plain index to the registry (keyed by metadata.name)."""
    name = cls.metadata.name
    if name in _PLAIN:
        raise ReproError(f"plain index {name!r} registered twice")
    _PLAIN[name] = cls
    return cls


def register_labeled(cls: L) -> L:
    """Class decorator: add a path-constrained index to the registry."""
    name = cls.metadata.name
    if name in _LABELED:
        raise ReproError(f"labeled index {name!r} registered twice")
    _LABELED[name] = cls
    return cls


def _ensure_loaded() -> None:
    """Import the implementation packages so their registrations run."""
    importlib.import_module("repro.plain")
    importlib.import_module("repro.labeled")
    importlib.import_module("repro.shard")


def plain_index(name: str) -> type[ReachabilityIndex]:
    """Look up a plain index class by its paper name (e.g. ``"GRAIL"``)."""
    _ensure_loaded()
    try:
        return _PLAIN[name]
    except KeyError:
        known = ", ".join(sorted(_PLAIN))
        raise ReproError(f"unknown plain index {name!r}; known: {known}") from None


def labeled_index(name: str) -> type[LabelConstrainedIndex]:
    """Look up a path-constrained index class by its paper name."""
    _ensure_loaded()
    try:
        return _LABELED[name]
    except KeyError:
        known = ", ".join(sorted(_LABELED))
        raise ReproError(f"unknown labeled index {name!r}; known: {known}") from None


def all_plain_indexes() -> dict[str, type[ReachabilityIndex]]:
    """All registered plain indexes, keyed by name."""
    _ensure_loaded()
    return dict(_PLAIN)


def all_labeled_indexes() -> dict[str, type[LabelConstrainedIndex]]:
    """All registered path-constrained indexes, keyed by name."""
    _ensure_loaded()
    return dict(_LABELED)
