"""Name → index-class registry.

Every index implementation registers itself at import time with the
:func:`register_plain` / :func:`register_labeled` decorators.  The taxonomy
benchmarks (Tables 1 and 2) walk these registries and print each class's
:class:`~repro.core.base.IndexMetadata`, so the published tables are
regenerated from the live implementations rather than hand-copied.
"""

from __future__ import annotations

import difflib
import importlib
from typing import TypeVar

from repro.core.base import LabelConstrainedIndex, ReachabilityIndex
from repro.errors import ReproError

__all__ = [
    "register_plain",
    "register_labeled",
    "plain_index",
    "labeled_index",
    "all_plain_indexes",
    "all_labeled_indexes",
]

_PLAIN: dict[str, type[ReachabilityIndex]] = {}
_LABELED: dict[str, type[LabelConstrainedIndex]] = {}

P = TypeVar("P", bound=type[ReachabilityIndex])
L = TypeVar("L", bound=type[LabelConstrainedIndex])


def register_plain(cls: P) -> P:
    """Class decorator: add a plain index to the registry (keyed by metadata.name)."""
    name = cls.metadata.name
    if name in _PLAIN:
        raise ReproError(f"plain index {name!r} registered twice")
    _PLAIN[name] = cls
    return cls


def register_labeled(cls: L) -> L:
    """Class decorator: add a path-constrained index to the registry."""
    name = cls.metadata.name
    if name in _LABELED:
        raise ReproError(f"labeled index {name!r} registered twice")
    _LABELED[name] = cls
    return cls


def _ensure_loaded() -> None:
    """Import the implementation packages so their registrations run."""
    importlib.import_module("repro.plain")
    importlib.import_module("repro.labeled")
    importlib.import_module("repro.shard")


def _unknown_index_error(kind: str, name: str, registry: dict[str, object]) -> ReproError:
    """A lookup failure that names every registered family and, when one
    is close (case slip, typo, missing punctuation), suggests it."""
    known = sorted(registry)
    wanted = str(name)
    folded = {candidate.lower(): candidate for candidate in known}
    suggestion = folded.get(wanted.lower())
    if suggestion is None:
        close = difflib.get_close_matches(wanted, known, n=1, cutoff=0.6)
        if not close:  # retry case-insensitively (e.g. "grail" vs "GRAIL")
            close = difflib.get_close_matches(
                wanted.lower(), list(folded), n=1, cutoff=0.6
            )
            close = [folded[match] for match in close]
        suggestion = close[0] if close else None
    message = f"unknown {kind} index {name!r}"
    if suggestion is not None:
        message += f"; did you mean {suggestion!r}?"
    message += f" known: {', '.join(known)}"
    return ReproError(message)


def plain_index(name: str) -> type[ReachabilityIndex]:
    """Look up a plain index class by its paper name (e.g. ``"GRAIL"``)."""
    _ensure_loaded()
    try:
        return _PLAIN[name]
    except KeyError:
        raise _unknown_index_error("plain", name, _PLAIN) from None


def labeled_index(name: str) -> type[LabelConstrainedIndex]:
    """Look up a path-constrained index class by its paper name."""
    _ensure_loaded()
    try:
        return _LABELED[name]
    except KeyError:
        raise _unknown_index_error("labeled", name, _LABELED) from None


def all_plain_indexes() -> dict[str, type[ReachabilityIndex]]:
    """All registered plain indexes, keyed by name."""
    _ensure_loaded()
    return dict(_PLAIN)


def all_labeled_indexes() -> dict[str, type[LabelConstrainedIndex]]:
    """All registered path-constrained indexes, keyed by name."""
    _ensure_loaded()
    return dict(_LABELED)
