"""Core abstractions: index ABCs, taxonomy metadata, registry, wrappers."""

from repro.core.base import (
    Explanation,
    IndexMetadata,
    LabelConstrainedIndex,
    ReachabilityIndex,
    SizeReport,
    TriState,
    guided_query,
)
from repro.core.condensed import CondensedIndex
from repro.core.registry import (
    all_labeled_indexes,
    all_plain_indexes,
    labeled_index,
    plain_index,
    register_labeled,
    register_plain,
)

__all__ = [
    "Explanation",
    "IndexMetadata",
    "LabelConstrainedIndex",
    "ReachabilityIndex",
    "SizeReport",
    "TriState",
    "guided_query",
    "CondensedIndex",
    "all_labeled_indexes",
    "all_plain_indexes",
    "labeled_index",
    "plain_index",
    "register_labeled",
    "register_plain",
]
