"""The unified reachability-index API.

Every index the survey reviews is implemented against the abstractions in
this module:

* :class:`IndexMetadata` — the taxonomy row (framework, complete/partial,
  DAG/general input, dynamic support) as printed in Tables 1 and 2 of the
  paper.  The taxonomy benchmarks regenerate those tables from these
  objects, so each implementation *is* its own row.
* :class:`TriState` — the three-valued answer of an index lookup.  A
  complete index never answers MAYBE; a partial index without false
  negatives answers NO or MAYBE; one without false positives answers YES or
  MAYBE.
* :class:`ReachabilityIndex` — plain indexes (§3).  ``lookup`` is the raw
  index probe; ``query`` is always exact, falling back to *guided
  traversal* that recursively consults the index to prune (the §5 rules).
* :class:`LabelConstrainedIndex` — path-constrained indexes (§4), same
  split between ``lookup`` and exact ``query``.
"""

from __future__ import annotations

import enum
import functools
from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass
from typing import ClassVar

from repro.errors import QueryError, UnsupportedOperationError
from repro.graphs.digraph import DiGraph
from repro.graphs.labeled import LabeledDiGraph
from repro.kernels import ancestors_set, batch_reachable, csr_of, descendants_set
from repro.obs.build import observe_build
from repro.obs.metrics import global_registry
from repro.obs.tracer import TRACER
from repro.resilience.deadline import CHECK_STRIDE, current_deadline
from repro.traversal.regex import RegexNode

__all__ = [
    "TriState",
    "IndexMetadata",
    "Explanation",
    "SetExplanation",
    "SizeReport",
    "ReachabilityIndex",
    "LabelConstrainedIndex",
    "guided_query",
    "guided_query_bidirectional",
]


class TriState(enum.Enum):
    """Three-valued result of an index probe."""

    YES = "yes"
    NO = "no"
    MAYBE = "maybe"


@dataclass(frozen=True)
class IndexMetadata:
    """One taxonomy row of Table 1 / Table 2 of the survey.

    Attributes
    ----------
    name:
        Short index name as used in the paper (e.g. ``"GRAIL"``).
    framework:
        ``"Tree cover"``, ``"2-Hop"``, ``"Approximate TC"``, ``"TC"``,
        ``"GTC"`` or ``"-"`` for the §3.4 one-off designs.
    complete:
        True for complete indexes (queries answered purely by lookups).
    input_kind:
        ``"DAG"`` or ``"General"`` — the graph class the technique assumes.
    dynamic:
        ``"no"``, ``"yes"``, or ``"insert-only"``.
    constraint:
        ``None`` for plain indexes; ``"Alternation"`` or ``"Concatenation"``
        for path-constrained ones.
    """

    name: str
    framework: str
    complete: bool
    input_kind: str
    dynamic: str
    constraint: str | None = None

    @property
    def index_type(self) -> str:
        """``"Complete"`` or ``"Partial"`` — the Table 1/2 column value."""
        return "Complete" if self.complete else "Partial"


@dataclass(frozen=True)
class Explanation:
    """The routed decision path of one exact reachability answer.

    Produced by :meth:`ReachabilityIndex.explain` — the §5 observability
    surface: *how* was this query answered, not just what the answer
    was.  ``route`` is one of

    * ``"trivial"`` — source equals target;
    * ``"label_probe"`` — a complete index answered from its labels;
    * ``"certain"`` — a partial index's YES/NO certificate sufficed;
    * ``"guided_traversal"`` — the partial probe said MAYBE and the
      index-guided BFS fallback decided;
    * ``"same_scc"`` — the SCC-condensation wrapper short-circuited;
    * ``"deadline_abort"`` / ``"degraded"`` — the serving tier gave up
      (deadline expiry or an open circuit breaker) and downgraded the
      answer to UNKNOWN (``answer is None``).
    """

    index: str
    source: int
    target: int
    answer: bool | None
    route: str
    probe: TriState | None
    details: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable plain data (the CLI/HTTP payload shape)."""
        return {
            "index": self.index,
            "source": self.source,
            "target": self.target,
            "answer": self.answer,
            "route": self.route,
            "probe": self.probe.value if self.probe is not None else None,
            "details": list(self.details),
        }

    def render_text(self) -> str:
        """A short human-readable decision path."""
        rendered = "unknown" if self.answer is None else str(self.answer).lower()
        lines = [
            f"Qr({self.source}, {self.target}) = "
            f"{rendered}  [{self.index}]",
            f"  route: {self.route}"
            + (f" (probe={self.probe.value})" if self.probe is not None else ""),
        ]
        lines.extend(f"  {detail}" for detail in self.details)
        return "\n".join(lines)


@dataclass(frozen=True)
class SetExplanation:
    """The routed decision path of one reachable-set enumeration.

    Produced by :meth:`ReachabilityIndex.explain_reachable_from` /
    :meth:`~ReachabilityIndex.explain_reaching_to` — the enumeration
    counterpart of :class:`Explanation`.  ``route`` is one of

    * ``"enum_traversal"`` — the default graph traversal enumerated the
      set (output-sensitive BFS over the CSR snapshot);
    * ``"enum_closure"`` — a transitive-closure bitset was expanded
      directly (TC);
    * ``"enum_label_join"`` — 2-hop labels were joined through an
      inverted hub index (PLL/DL/TOL/TFL/2-Hop);
    * ``"enum_interval"`` — a subtree-interval scan produced the set
      (tree cover exactly; GRAIL/DAGGER prune candidates by interval
      and confirm them with one shared kernel sweep);
    * ``"enum_compose"`` — per-shard enumerations composed through the
      boundary summary graph (Sharded).

    The SCC-condensation wrapper expands the inner DAG answer through
    the SCC map and reports the *inner* route, mirroring how
    :meth:`CondensedIndex.explain` delegates pair queries.
    """

    index: str
    vertex: int
    direction: str  # "from" (descendants) or "to" (ancestors)
    count: int
    route: str
    details: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable plain data (the CLI/HTTP payload shape)."""
        return {
            "index": self.index,
            "vertex": self.vertex,
            "direction": self.direction,
            "count": self.count,
            "route": self.route,
            "details": list(self.details),
        }

    def render_text(self) -> str:
        """A short human-readable decision path."""
        name = "reachable_from" if self.direction == "from" else "reaching_to"
        lines = [
            f"{name}({self.vertex}) = {self.count} vertices  [{self.index}]",
            f"  route: {self.route}",
        ]
        lines.extend(f"  {detail}" for detail in self.details)
        return "\n".join(lines)


@dataclass(frozen=True)
class SizeReport:
    """Uniform size accounting of one built index.

    Every family reports size the same two ways: ``entries`` — the
    survey's abstract metric (labels / intervals / words, whatever the
    family counts) — and ``estimated_bytes`` — the serialized payload
    with the indexed graph subtracted out, the number a size *budget*
    is stated in.  The advisor's budget logic and the size benchmarks
    both consume this instead of reaching into per-family attributes.
    """

    index: str
    entries: int
    estimated_bytes: int
    graph_vertices: int
    graph_edges: int
    #: Kernel backend active when the report was taken ("python"/"numpy").
    backend: str = "python"

    @property
    def bytes_per_entry(self) -> float:
        """Average serialized bytes per entry (0.0 for empty indexes)."""
        return self.estimated_bytes / self.entries if self.entries else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable plain data (the BENCH_*.json shape)."""
        return {
            "index": self.index,
            "entries": self.entries,
            "estimated_bytes": self.estimated_bytes,
            "bytes_per_entry": self.bytes_per_entry,
            "graph_vertices": self.graph_vertices,
            "graph_edges": self.graph_edges,
            "backend": self.backend,
        }

    def render_text(self) -> str:
        """One human-readable size line for the CLI."""
        return (
            f"{self.index}: {self.entries:,} entries, "
            f"~{self.estimated_bytes:,} bytes "
            f"({self.bytes_per_entry:.1f} B/entry) over "
            f"|V|={self.graph_vertices:,} |E|={self.graph_edges:,}"
        )


def _size_report_of(index) -> SizeReport:
    """The shared ``size_report`` implementation for both base classes."""
    from repro import accel
    from repro.persistence import serialized_size_bytes

    graph = index.graph
    return SizeReport(
        index=index.metadata.name,
        entries=index.size_in_entries(),
        estimated_bytes=serialized_size_bytes(index, include_graph=False),
        graph_vertices=graph.num_vertices,
        graph_edges=graph.num_edges,
        backend=accel.backend_name(),
    )


def _instrumented_build(raw: classmethod) -> classmethod:
    """Wrap a subclass ``build`` with per-phase observation.

    Applied automatically by ``__init_subclass__`` wherever an index
    class defines its own ``build``, so every family's construction is
    observed — total time, the :func:`~repro.obs.build.build_phase`
    stages it marks, and final size — without per-family boilerplate.
    The report lands on the instance as ``build_report``.
    """
    inner = raw.__func__

    @functools.wraps(inner)
    def build(cls, graph, *args, **params):
        with observe_build(cls.metadata.name) as observation:
            index = inner(cls, graph, *args, **params)
        observation.attach(index, entries=index.size_in_entries())
        return index

    build._obs_wrapped = True
    return classmethod(build)


def guided_query(graph: DiGraph, index: "ReachabilityIndex", source: int, target: int) -> bool:
    """Exact reachability via index-guided BFS (the §5 pruning rules).

    Starting from ``source``, the frontier vertex ``v`` is resolved with an
    index probe ``lookup(v, target)``:

    * YES — the index certifies reachability: stop with True (rule for
      partial indexes *without false positives*);
    * NO — the index certifies non-reachability from ``v``: prune ``v``'s
      out-neighbours (rule for partial indexes *without false negatives*);
    * MAYBE — expand ``v`` normally.
    """
    first = index.lookup(source, target)
    if first is TriState.YES:
        return True
    if first is TriState.NO:
        return source == target
    if source == target:
        return True
    deadline = current_deadline()
    expanded = 0
    seen = bytearray(graph.num_vertices)
    seen[source] = 1
    queue: deque[int] = deque((source,))
    while queue:
        v = queue.popleft()
        if deadline is not None:
            expanded += 1
            if not expanded % CHECK_STRIDE:
                deadline.check()
        for w in graph.out_neighbors(v):
            if w == target:
                return True
            if seen[w]:
                continue
            seen[w] = 1
            probe = index.lookup(w, target)
            if probe is TriState.YES:
                return True
            if probe is TriState.NO:
                continue  # prune: nothing past w reaches target
            queue.append(w)
    return False


def guided_query_bidirectional(
    graph: DiGraph, index: "ReachabilityIndex", source: int, target: int
) -> bool:
    """Exact reachability via index-guided *bidirectional* BFS.

    The §5 pruning rules applied on both frontiers: the forward frontier
    prunes vertices the index certifies cannot reach ``target``; the
    backward frontier prunes vertices certified unreachable *from*
    ``source``.  A YES certificate on either side terminates.  Like plain
    BiBFS, the smaller frontier expands each round, which helps on graphs
    with fan-out in both directions.
    """
    first = index.lookup(source, target)
    if first is TriState.YES:
        return True
    if first is TriState.NO:
        return source == target
    if source == target:
        return True
    deadline = current_deadline()
    n = graph.num_vertices
    seen_fwd = bytearray(n)
    seen_bwd = bytearray(n)
    seen_fwd[source] = 1
    seen_bwd[target] = 1
    frontier_fwd = [source]
    frontier_bwd = [target]
    while frontier_fwd and frontier_bwd:
        if deadline is not None:
            deadline.check()
        if len(frontier_fwd) <= len(frontier_bwd):
            next_frontier: list[int] = []
            for v in frontier_fwd:
                for w in graph.out_neighbors(v):
                    if seen_bwd[w]:
                        return True
                    if seen_fwd[w]:
                        continue
                    seen_fwd[w] = 1
                    probe = index.lookup(w, target)
                    if probe is TriState.YES:
                        return True
                    if probe is TriState.NO:
                        continue  # nothing past w reaches target
                    next_frontier.append(w)
            frontier_fwd = next_frontier
        else:
            next_frontier = []
            for v in frontier_bwd:
                for u in graph.in_neighbors(v):
                    if seen_fwd[u]:
                        return True
                    if seen_bwd[u]:
                        continue
                    seen_bwd[u] = 1
                    probe = index.lookup(source, u)
                    if probe is TriState.YES:
                        return True
                    if probe is TriState.NO:
                        continue  # source reaches nothing before u
                    next_frontier.append(u)
            frontier_bwd = next_frontier
    return False


class ReachabilityIndex(ABC):
    """Abstract base for plain reachability indexes (§3).

    Subclasses set the class attribute :attr:`metadata` and implement
    :meth:`build`, :meth:`lookup` and :meth:`size_in_entries`.  ``query`` is
    exact for every index: complete indexes answer from ``lookup`` alone,
    partial ones fall back to guided traversal.
    """

    metadata: ClassVar[IndexMetadata]

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    def __init_subclass__(cls, **kwargs: object) -> None:
        """Instrument every concrete ``build`` with per-phase observation."""
        super().__init_subclass__(**kwargs)
        raw = cls.__dict__.get("build")
        if isinstance(raw, classmethod) and not getattr(
            raw.__func__, "_obs_wrapped", False
        ):
            cls.build = _instrumented_build(raw)

    # -- construction ---------------------------------------------------
    @classmethod
    @abstractmethod
    def build(cls, graph: DiGraph, **params: object) -> "ReachabilityIndex":
        """Construct the index over ``graph``.

        DAG-only indexes raise :class:`repro.errors.NotADAGError` on cyclic
        input; wrap them with :func:`repro.core.condensed.condense_for` for
        general graphs.
        """

    @property
    def build_report(self):
        """The :class:`~repro.obs.build.BuildReport` of this build, or None.

        Attached by the automatic build instrumentation; absent only on
        instances constructed directly through ``__init__``.
        """
        return getattr(self, "_build_report", None)

    # -- probing --------------------------------------------------------
    @abstractmethod
    def lookup(self, source: int, target: int) -> TriState:
        """Raw index probe; MAYBE only for partial indexes."""

    def lookup_batch(self, pairs: Sequence[tuple[int, int]]) -> list[TriState]:
        """Raw index probes for a batch of ``(source, target)`` pairs.

        Semantically identical to ``[lookup(s, t) for s, t in pairs]``
        — answers come back in input order and duplicates are answered
        like any other pair.  The default is exactly that loop;
        subclasses override it where batching genuinely amortises work
        (probe-array locals, shared label merges, one traversal per
        distinct source).
        """
        lookup = self.lookup
        return [lookup(s, t) for s, t in pairs]

    def query_batch(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """Exact reachability answers for a batch of pairs.

        The batched counterpart of :meth:`query`: the whole batch is
        validated up front (a :class:`~repro.errors.QueryError` is
        raised before *any* pair is evaluated), answers return in input
        order, and empty batches return ``[]``.  Complete indexes answer
        from :meth:`lookup_batch` alone.  Partial indexes trust their
        YES/NO certificates and resolve the remaining MAYBE pairs with
        one shared bit-parallel traversal — all targets of one source
        share a frontier, and distinct sources advance together — rather
        than one guided traversal per pair.
        """
        self._check_pairs(pairs)
        if not pairs:
            return []
        probes = self.lookup_batch(pairs)
        complete = self.metadata.complete
        yes, no = TriState.YES, TriState.NO
        answers: list[bool | None] = []
        unresolved: list[int] = []
        for position, ((source, target), probe) in enumerate(zip(pairs, probes)):
            if source == target:
                answers.append(True)
            elif probe is yes:
                answers.append(True)
            elif probe is no:
                answers.append(False)
            elif complete:
                raise QueryError(
                    f"{type(self).__name__} is complete but answered MAYBE"
                )
            else:
                answers.append(None)
                unresolved.append(position)
        if unresolved:
            with TRACER.span(
                "index.kernel_sweep",
                index=self.metadata.name,
                pairs=len(unresolved),
            ):
                resolved = batch_reachable(
                    csr_of(self._graph), [pairs[i] for i in unresolved]
                )
            for position, answer in zip(unresolved, resolved):
                answers[position] = answer
        if TRACER.enabled:
            self._record_batch_routes(len(pairs), len(unresolved))
        return answers

    def query(self, source: int, target: int) -> bool:
        """Exact reachability answer."""
        self._check_query(source, target)
        if TRACER.enabled:
            return self._query_observed(source, target)
        if source == target:
            return True
        if self.metadata.complete:
            result = self.lookup(source, target)
            if result is TriState.MAYBE:
                raise QueryError(
                    f"{type(self).__name__} is complete but answered MAYBE"
                )
            return result is TriState.YES
        return guided_query(self._graph, self, source, target)

    # -- observability ---------------------------------------------------
    def _routed_answer(
        self, source: int, target: int
    ) -> tuple[bool, str, TriState | None]:
        """Answer plus routing attribution; shared by explain and tracing.

        The routes (and their exactness argument) mirror :meth:`query`:
        complete indexes answer from the probe alone, partial ones trust
        YES/NO certificates and fall back to index-guided traversal on
        MAYBE.  ``explain`` and the traced query path both call this,
        which is what guarantees explain-vs-query agreement.
        """
        if source == target:
            return True, "trivial", None
        probe = self.lookup(source, target)
        if self.metadata.complete:
            if probe is TriState.MAYBE:
                raise QueryError(
                    f"{type(self).__name__} is complete but answered MAYBE"
                )
            return probe is TriState.YES, "label_probe", probe
        if probe is TriState.YES:
            return True, "certain", probe
        if probe is TriState.NO:
            return False, "certain", probe
        return (
            guided_query(self._graph, self, source, target),
            "guided_traversal",
            probe,
        )

    def _query_observed(self, source: int, target: int) -> bool:
        """The traced scalar query path (tracer enabled only)."""
        with TRACER.span(
            "index.query", index=self.metadata.name, source=source, target=target
        ) as span:
            answer, route, _probe = self._routed_answer(source, target)
            span.annotate(route=route, answer=answer)
            global_registry().counter(f"index.route.{route}").increment()
            return answer

    def _record_batch_routes(self, total: int, swept: int) -> None:
        """Attribute one ``query_batch`` call's pairs to their routes."""
        registry = global_registry()
        certain = total - swept
        if certain:
            route = "label_probe" if self.metadata.complete else "certain"
            registry.counter(f"index.route.{route}").increment(certain)
        if swept:
            registry.counter("index.route.kernel_sweep").increment(swept)

    def explain(self, source: int, target: int) -> Explanation:
        """The routed decision path of ``query(source, target)``.

        Always agrees with :meth:`query` (both trust the same probe and
        fall back to the same exact traversal); unlike ``query`` it is
        not gated on the tracer — explaining is an explicit request.
        """
        self._check_query(source, target)
        answer, route, probe = self._routed_answer(source, target)
        return Explanation(
            index=self.metadata.name,
            source=source,
            target=target,
            answer=answer,
            route=route,
            probe=probe,
            details=self._route_details(route, probe),
        )

    def _route_details(self, route: str, probe: TriState | None) -> tuple[str, ...]:
        meta = self.metadata
        if route == "trivial":
            return ("source equals target: reachable by the empty path",)
        if route == "label_probe":
            return (
                f"complete {meta.framework} index: answered "
                f"{probe.value} from one label probe",
            )
        if route == "certain":
            return (
                f"partial {meta.framework} index: the {probe.value} "
                "certificate is exact, no traversal needed",
            )
        return (
            "partial index answered MAYBE: resolved by index-guided BFS "
            "(probes prune the frontier)",
        )

    # -- set enumeration -------------------------------------------------
    def reachable_from(self, source: int) -> frozenset[int]:
        """Every vertex reachable from ``source`` (including itself).

        The single-source *enumeration* query — "list everything this
        vertex reaches" — answered exactly for every family.  The
        default walks the CSR snapshot (output-sensitive: only the
        answer set and its edges are touched); families with a better
        representation override :meth:`_enumerate_fast` — TC reads a
        closure bitset, 2-hop labelings join through an inverted hub
        index, interval indexes scan the postorder range.  All paths
        return the same frozen vertex-set type.
        """
        self._check_vertex(source)
        if not TRACER.enabled:
            return self._enumerate_routed(source, forward=True)[0]
        return self._enumerate_observed(source, forward=True)

    def reaching_to(self, target: int) -> frozenset[int]:
        """Every vertex that reaches ``target`` (including itself).

        The reverse enumeration — "list everything that reaches this
        vertex" — with the same routing contract as
        :meth:`reachable_from`.
        """
        self._check_vertex(target)
        if not TRACER.enabled:
            return self._enumerate_routed(target, forward=False)[0]
        return self._enumerate_observed(target, forward=False)

    def explain_reachable_from(self, source: int) -> SetExplanation:
        """The routed decision path of ``reachable_from(source)``.

        Always agrees with :meth:`reachable_from` (both call the same
        routed enumeration); like :meth:`explain` it works without the
        tracer and bumps no counters.
        """
        self._check_vertex(source)
        vertices, route, details = self._enumerate_routed(source, forward=True)
        return SetExplanation(
            index=self.metadata.name,
            vertex=source,
            direction="from",
            count=len(vertices),
            route=route,
            details=details,
        )

    def explain_reaching_to(self, target: int) -> SetExplanation:
        """The routed decision path of ``reaching_to(target)``."""
        self._check_vertex(target)
        vertices, route, details = self._enumerate_routed(target, forward=False)
        return SetExplanation(
            index=self.metadata.name,
            vertex=target,
            direction="to",
            count=len(vertices),
            route=route,
            details=details,
        )

    def _enumerate_observed(self, vertex: int, forward: bool) -> frozenset[int]:
        """The traced enumeration path (tracer enabled only)."""
        with TRACER.span(
            "index.enumerate",
            index=self.metadata.name,
            vertex=vertex,
            direction="from" if forward else "to",
        ) as span:
            vertices, route, _details = self._enumerate_routed(vertex, forward)
            span.annotate(route=route, count=len(vertices))
            global_registry().counter(f"index.route.{route}").increment()
            return vertices

    def _enumerate_routed(
        self, vertex: int, forward: bool
    ) -> tuple[frozenset[int], str, tuple[str, ...]]:
        """Set answer plus routing attribution; explain and the public
        enumeration share this, which guarantees their agreement."""
        fast = self._enumerate_fast(vertex, forward)
        if fast is not None:
            return fast
        csr = csr_of(self._graph)
        members = (
            descendants_set(csr, vertex) if forward else ancestors_set(csr, vertex)
        )
        kind = "descendant" if forward else "ancestor"
        return (
            frozenset(members),
            "enum_traversal",
            (
                f"default {kind} traversal over the CSR snapshot reached "
                f"{len(members)} vertices",
            ),
        )

    def _enumerate_fast(
        self, vertex: int, forward: bool
    ) -> tuple[frozenset[int], str, tuple[str, ...]] | None:
        """A family-specific enumeration fast path, or None to fall back.

        Overrides must return exactly the set the default traversal
        would (the differential matrix tests enforce this) together
        with their route name and human-readable details.
        """
        return None

    # -- accounting -----------------------------------------------------
    @abstractmethod
    def size_in_entries(self) -> int:
        """Index size in label/interval/word entries (the survey's metric)."""

    def estimated_bytes(self) -> int:
        """Serialized index payload in bytes, the indexed graph excluded.

        The concrete counterpart of :meth:`size_in_entries` — the number
        a size budget (FERRARI-style index-size restriction) is stated
        in.  Uniform across every family: measured from the pickled
        instance minus the graph's own representation.
        """
        from repro.persistence import serialized_size_bytes

        return serialized_size_bytes(self, include_graph=False)

    def size_report(self) -> SizeReport:
        """Both size metrics (entries and bytes) as one uniform report."""
        return _size_report_of(self)

    @property
    def graph(self) -> DiGraph:
        """The indexed graph (mutated in place by dynamic indexes)."""
        return self._graph

    # -- dynamic operations ----------------------------------------------
    def insert_edge(self, source: int, target: int) -> None:
        """Insert an edge and maintain the index (dynamic indexes only)."""
        raise UnsupportedOperationError(
            f"{self.metadata.name} does not support edge insertion"
        )

    def delete_edge(self, source: int, target: int) -> None:
        """Delete an edge and maintain the index (dynamic indexes only)."""
        raise UnsupportedOperationError(
            f"{self.metadata.name} does not support edge deletion"
        )

    # -- helpers ----------------------------------------------------------
    def _check_query(self, source: int, target: int) -> None:
        n = self._graph.num_vertices
        if not (0 <= source < n and 0 <= target < n):
            raise QueryError(
                f"query ({source}, {target}) out of range for |V|={n}"
            )

    def _check_vertex(self, vertex: int) -> None:
        n = self._graph.num_vertices
        if not 0 <= vertex < n:
            raise QueryError(f"vertex {vertex} out of range for |V|={n}")

    def _check_pairs(self, pairs: Sequence[tuple[int, int]]) -> None:
        """Validate a whole batch before evaluating any of it."""
        n = self._graph.num_vertices
        for source, target in pairs:
            if not (0 <= source < n and 0 <= target < n):
                raise QueryError(
                    f"query ({source}, {target}) out of range for |V|={n}"
                )

    def __getstate__(self) -> dict[str, object]:
        """State for pickling/deep-copying, safe under concurrent queries."""
        return _state_without_query_caches(self)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self._graph.num_vertices}, "
            f"entries={self.size_in_entries()})"
        )


def _state_without_query_caches(index: object) -> dict[str, object]:
    """``__dict__`` minus transient query-time memoisation.

    Labeled indexes memoise parsed constraints on the instance while
    answering (``_constraint_cache``), so a pickle or deep copy taken
    while other threads are querying — the serving tier's incremental
    patch path — must not walk that dict mid-mutation.  The snapshot is
    retried because a concurrent first query can grow ``__dict__``
    itself during iteration.
    """
    for _attempt in range(64):
        try:
            state = dict(index.__dict__)
            break
        except RuntimeError:  # __dict__ grew under a concurrent reader
            continue
    else:  # pragma: no cover - needs a pathological scheduler
        raise RuntimeError(
            f"could not snapshot {type(index).__name__}.__dict__ under load"
        )
    state.pop("_constraint_cache", None)
    return state


class LabelConstrainedIndex(ABC):
    """Abstract base for path-constrained reachability indexes (§4).

    ``query(s, t, constraint)`` takes the constraint as surface syntax or a
    parsed :class:`~repro.traversal.regex.RegexNode`.  Implementations
    declare which constraint family they support through
    ``metadata.constraint`` and raise
    :class:`~repro.errors.UnsupportedConstraintError` otherwise.
    """

    metadata: ClassVar[IndexMetadata]

    def __init__(self, graph: LabeledDiGraph) -> None:
        self._graph = graph

    def __init_subclass__(cls, **kwargs: object) -> None:
        """Instrument every concrete ``build`` with per-phase observation."""
        super().__init_subclass__(**kwargs)
        raw = cls.__dict__.get("build")
        if isinstance(raw, classmethod) and not getattr(
            raw.__func__, "_obs_wrapped", False
        ):
            cls.build = _instrumented_build(raw)

    @classmethod
    @abstractmethod
    def build(cls, graph: LabeledDiGraph, **params: object) -> "LabelConstrainedIndex":
        """Construct the index over the labeled graph."""

    @property
    def build_report(self):
        """The :class:`~repro.obs.build.BuildReport` of this build, or None."""
        return getattr(self, "_build_report", None)

    @abstractmethod
    def query(self, source: int, target: int, constraint: str | RegexNode) -> bool:
        """Exact path-constrained reachability answer."""

    @abstractmethod
    def size_in_entries(self) -> int:
        """Index size in label entries."""

    def estimated_bytes(self) -> int:
        """Serialized index payload in bytes, the indexed graph excluded."""
        from repro.persistence import serialized_size_bytes

        return serialized_size_bytes(self, include_graph=False)

    def size_report(self) -> SizeReport:
        """Both size metrics (entries and bytes) as one uniform report."""
        return _size_report_of(self)

    @property
    def graph(self) -> LabeledDiGraph:
        """The indexed graph."""
        return self._graph

    def insert_edge(self, source: int, target: int, label: object) -> None:
        """Insert a labeled edge and maintain the index (dynamic only)."""
        raise UnsupportedOperationError(
            f"{self.metadata.name} does not support edge insertion"
        )

    def delete_edge(self, source: int, target: int, label: object) -> None:
        """Delete a labeled edge and maintain the index (dynamic only)."""
        raise UnsupportedOperationError(
            f"{self.metadata.name} does not support edge deletion"
        )

    def _check_query(self, source: int, target: int) -> None:
        n = self._graph.num_vertices
        if not (0 <= source < n and 0 <= target < n):
            raise QueryError(
                f"query ({source}, {target}) out of range for |V|={n}"
            )

    def __getstate__(self) -> dict[str, object]:
        """State for pickling/deep-copying, safe under concurrent queries."""
        return _state_without_query_caches(self)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self._graph.num_vertices}, "
            f"entries={self.size_in_entries()})"
        )
