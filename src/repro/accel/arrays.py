"""Numpy CSR arrays and shared-memory graph snapshots.

:class:`CSRArrays` freezes a :class:`~repro.kernels.csr.CSRGraph` (or
anything with the same attribute shape) into contiguous ``int64``
offset/index arrays — the layout the packed bitset kernels gather and
scatter over — plus a lazily built *level schedule*: topological levels
with each level's predecessor lists pre-concatenated, so a DAG sweep
becomes one fancy-indexed gather + one ``reduceat`` per level instead of
one Python iteration per vertex.

The same arrays travel across process boundaries without pickling:
:meth:`CSRArrays.to_shared` copies the four arrays into a single
:class:`multiprocessing.shared_memory.SharedMemory` block and returns a
tiny picklable :class:`SharedCSRHandle` (name + sizes); workers call
:meth:`CSRArrays.from_shared` to attach read-only views, reconstruct
whatever they need, and close.  The parent owns the block's lifetime —
create, hand out the handle, unlink when every worker is done.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

try:
    import numpy as np
except ImportError:  # the pure-Python fallback never imports this module
    np = None

from repro.graphs.digraph import DiGraph

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

    from repro.kernels.csr import CSRGraph

__all__ = [
    "CSRArrays",
    "SharedCSRHandle",
    "arrays_of",
    "digraph_from_arrays",
    "gather_ranges",
]


def gather_ranges(indptr, indices, verts):
    """Concatenate ``indices[indptr[v]:indptr[v+1]]`` for every ``v`` in order.

    The classic vectorized multi-range gather: one ``repeat`` + one
    ``arange`` instead of a Python loop over vertices.
    """
    starts = indptr[verts]
    counts = indptr[verts + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    flat = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)
    return indices[flat]


@dataclass(frozen=True)
class SharedCSRHandle:
    """A picklable pointer to one shared-memory CSR snapshot.

    Everything a worker needs to attach: the block name plus the two
    sizes that determine every array offset.  Pickling this is a few
    dozen bytes regardless of graph size — that is the entire point.
    """

    name: str
    num_vertices: int
    num_edges: int
    creator_pid: int = 0


class CSRArrays:
    """Contiguous ``int64`` CSR arrays with a cached level schedule."""

    __slots__ = (
        "num_vertices",
        "num_edges",
        "out_indptr",
        "out_indices",
        "in_indptr",
        "in_indices",
        "_fwd_schedule",
        "_bwd_schedule",
    )

    def __init__(
        self,
        num_vertices: int,
        out_indptr,
        out_indices,
        in_indptr,
        in_indices,
    ) -> None:
        self.num_vertices = num_vertices
        self.num_edges = int(len(out_indices))
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        self._fwd_schedule: tuple | None | bool = False  # False = not computed
        self._bwd_schedule: tuple | None | bool = False

    @classmethod
    def from_csr(cls, csr: "CSRGraph") -> "CSRArrays":
        """Freeze a CSR snapshot's Python lists into numpy arrays."""
        return cls(
            csr.num_vertices,
            np.asarray(csr.out_indptr, dtype=np.int64),
            np.asarray(csr.out_indices, dtype=np.int64),
            np.asarray(csr.in_indptr, dtype=np.int64),
            np.asarray(csr.in_indices, dtype=np.int64),
        )

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "CSRArrays":
        """Flatten a :class:`DiGraph` directly (no CSRGraph required)."""
        out = graph._out
        inn = graph._in
        n = len(out)
        out_counts = np.fromiter((len(x) for x in out), dtype=np.int64, count=n)
        in_counts = np.fromiter((len(x) for x in inn), dtype=np.int64, count=n)
        m = int(out_counts.sum())
        return cls(
            n,
            np.concatenate(([0], np.cumsum(out_counts))),
            np.fromiter((w for x in out for w in x), dtype=np.int64, count=m),
            np.concatenate(([0], np.cumsum(in_counts))),
            np.fromiter((u for x in inn for u in x), dtype=np.int64, count=m),
        )

    # -- level schedule ---------------------------------------------------
    def schedule(self, forward: bool):
        """The DAG level schedule for one sweep direction, or None if cyclic.

        ``forward=True`` orders vertices by longest-path-from-source
        levels with in-neighbour gathers (the :func:`reach_masks`
        sweep); ``forward=False`` mirrors it for the reverse direction.
        Each entry is ``(verts, preds, starts)``: the level's vertices,
        their predecessor ids concatenated, and the per-vertex segment
        starts for ``np.bitwise_or.reduceat``.
        """
        cached = self._fwd_schedule if forward else self._bwd_schedule
        if cached is not False:
            return cached
        if forward:
            schedule = _level_schedule(
                self.num_vertices,
                self.in_indptr,
                self.in_indices,
                self.out_indptr,
                self.out_indices,
            )
            self._fwd_schedule = schedule
        else:
            schedule = _level_schedule(
                self.num_vertices,
                self.out_indptr,
                self.out_indices,
                self.in_indptr,
                self.in_indices,
            )
            self._bwd_schedule = schedule
        return schedule

    # -- shared memory ----------------------------------------------------
    def to_shared(self, factory=None) -> tuple["SharedMemory", SharedCSRHandle]:
        """Copy the four arrays into one fresh shared-memory block.

        Returns ``(shm, handle)``.  The caller owns ``shm`` and must
        ``close()`` + ``unlink()`` it once every attached worker is
        done.  ``factory`` overrides the SharedMemory constructor (tests
        inject failures through it).
        """
        if factory is None:
            from multiprocessing.shared_memory import SharedMemory

            factory = SharedMemory
        total = 2 * (self.num_vertices + 1) + 2 * self.num_edges
        shm = factory(create=True, size=max(8 * total, 1))
        flat = np.ndarray((total,), dtype=np.int64, buffer=shm.buf)
        cursor = 0
        for part in (
            self.out_indptr,
            self.out_indices,
            self.in_indptr,
            self.in_indices,
        ):
            flat[cursor : cursor + len(part)] = part
            cursor += len(part)
        handle = SharedCSRHandle(
            shm.name, self.num_vertices, self.num_edges, os.getpid()
        )
        return shm, handle

    @classmethod
    def from_shared(
        cls, handle: SharedCSRHandle
    ) -> tuple["CSRArrays", "SharedMemory"]:
        """Attach to a shared snapshot; arrays are read-only views.

        Returns ``(arrays, shm)``; the caller must keep ``shm`` alive
        while the views are in use and ``close()`` it afterwards (never
        ``unlink()`` — the creating process owns the block).
        """
        from multiprocessing.shared_memory import SharedMemory

        shm = SharedMemory(name=handle.name)
        # Attaching registers the name with the resource tracker again on
        # 3.11 (3.13 grew ``track=False`` for this); the registrations
        # land in a *shared* tracker daemon for multiprocessing workers,
        # where re-adding to the cache set is a no-op and the creator's
        # eventual ``unlink()`` clears the single entry — so no
        # unregister dance is needed, and attempting one here would make
        # the creator's unlink warn about the missing cache entry.
        n, m = handle.num_vertices, handle.num_edges
        total = 2 * (n + 1) + 2 * m
        flat = np.ndarray((total,), dtype=np.int64, buffer=shm.buf)
        flat.flags.writeable = False
        bounds = np.cumsum([0, n + 1, m, n + 1, m])
        parts = [flat[bounds[i] : bounds[i + 1]] for i in range(4)]
        return cls(n, *parts), shm

    def __repr__(self) -> str:
        return f"CSRArrays(|V|={self.num_vertices}, |E|={self.num_edges})"


def _level_schedule(n, pred_indptr, pred_indices, succ_indptr, succ_indices):
    """Topological levels via vectorized Kahn, or None on a cycle.

    Returns a list of ``(verts, preds, starts)`` triples, one per level
    past the first (level-0 vertices have no predecessors to merge).
    Self-loops keep their vertex's indegree positive forever, so they
    register as cycles — matching the pure-Python topo semantics.
    """
    indegree = (pred_indptr[1:] - pred_indptr[:-1]).copy()
    frontier = np.flatnonzero(indegree == 0)
    ordered = 0
    levels: list = []
    while frontier.size:
        levels.append(frontier)
        ordered += int(frontier.size)
        successors = gather_ranges(succ_indptr, succ_indices, frontier)
        if successors.size:
            np.subtract.at(indegree, successors, 1)
            frontier = np.unique(successors[indegree[successors] == 0])
        else:
            frontier = np.empty(0, dtype=np.int64)
    if ordered != n:
        return None
    schedule = []
    for verts in levels[1:]:
        counts = pred_indptr[verts + 1] - pred_indptr[verts]
        keep = counts > 0
        verts = verts[keep]
        counts = counts[keep]
        if not verts.size:
            continue
        preds = gather_ranges(pred_indptr, pred_indices, verts)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        schedule.append((verts, preds, starts))
    return schedule


def arrays_of(csr: "CSRGraph") -> CSRArrays:
    """The :class:`CSRArrays` twin of a CSR snapshot, cached on it.

    Snapshots are immutable, so the cache never invalidates — a fresh
    graph version means a fresh :class:`~repro.kernels.csr.CSRGraph`,
    which starts with an empty slot.
    """
    cached = csr._arrays_cache
    if isinstance(cached, CSRArrays):
        return cached
    arrays = CSRArrays.from_csr(csr)
    csr._arrays_cache = arrays
    return arrays


def digraph_from_arrays(arrays: CSRArrays) -> DiGraph:
    """Rebuild a mutable :class:`DiGraph` from CSR arrays, bulk-loaded.

    Populates the adjacency storage directly instead of ``add_edge``
    per edge — the reconstruction cost a shared-memory worker pays is
    one ``tolist()`` per direction, not |E| bounds-checked inserts.
    """
    n = arrays.num_vertices
    graph = DiGraph(n)
    out_flat = arrays.out_indices.tolist()
    out_ptr = arrays.out_indptr.tolist()
    in_flat = arrays.in_indices.tolist()
    in_ptr = arrays.in_indptr.tolist()
    graph._out = [out_flat[out_ptr[v] : out_ptr[v + 1]] for v in range(n)]
    graph._in = [in_flat[in_ptr[v] : in_ptr[v + 1]] for v in range(n)]
    graph._out_sets = [set(neighbors) for neighbors in graph._out]
    graph._num_edges = arrays.num_edges
    return graph
