"""Optional numpy acceleration underneath the pure-Python kernels.

The survey's fastest indexes (TC bitsets, 2-hop label merges, O'Reach's
batched observations, PReaCH's contraction-order sweeps) all assume
machine-word-parallel set operations.  The pure-Python kernels emulate
those with big-int words — correct, portable, but interpreter-bound.
This package drops an array-backed layer underneath the same kernel API:

* :mod:`repro.accel.arrays` — :class:`CSRArrays`, numpy ``int64``
  offset/index arrays frozen from a CSR snapshot, exportable to
  :mod:`multiprocessing.shared_memory` so process-pool shard builds
  attach to one read-only snapshot instead of unpickling a graph copy;
* :mod:`repro.accel.bitset` — packed ``uint64[n_vertices, n_words]``
  bitset kernels: a level-synchronous DAG sweep driven by
  ``np.bitwise_or.reduceat`` over fancy-indexed gathers, and a
  frontier-synchronous multi-source BFS for cyclic snapshots;
* :mod:`repro.accel.labels` — vectorized 2-hop label-set
  intersection/merge for the PLL/DL/TOL probe path.

**The pure-Python path stays authoritative.**  Selection is runtime
detected (:func:`available`), every accelerated kernel is differential
tested against its pure-Python twin, and two switches force the
fallback: the ``REPRO_ACCEL=0`` environment kill switch and
:func:`set_backend` (``"python"`` | ``"numpy"`` | ``"auto"``).  Nothing
in this library imports numpy unconditionally — without it, every
entry point silently keeps its original behaviour.
"""

from __future__ import annotations

import os

__all__ = [
    "MIN_BATCH",
    "MIN_VERTICES",
    "available",
    "backend_name",
    "describe",
    "enabled",
    "backend_labels",
    "kill_switch_engaged",
    "set_backend",
    "use_for_batch",
    "use_for_graph",
]

#: Below this many vertices the numpy kernels rarely beat the
#: interpreter (fixed per-call array setup dominates); ``auto`` keeps
#: the pure-Python path.  ``set_backend("numpy")`` overrides.
MIN_VERTICES = 512

#: Minimum batch length before the vectorized label probe pays off.
MIN_BATCH = 32

#: The environment kill switch: any of these values disables the layer
#: no matter what :func:`set_backend` chose.
_KILL_VALUES = frozenset({"0", "false", "off", "no"})

_backend = "auto"  # "auto" | "python" | "numpy" (set_backend)
_numpy_module: object | None = None
_numpy_checked = False


def _numpy() -> object | None:
    """The numpy module, imported once, or None when unavailable."""
    global _numpy_module, _numpy_checked
    if not _numpy_checked:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
        _numpy_checked = True
    return _numpy_module


def available() -> bool:
    """Whether numpy is importable in this interpreter."""
    return _numpy() is not None


def kill_switch_engaged() -> bool:
    """Whether ``REPRO_ACCEL`` disables the layer (checked per call)."""
    return os.environ.get("REPRO_ACCEL", "").strip().lower() in _KILL_VALUES


def set_backend(name: str) -> None:
    """Select the kernel backend: ``"auto"``, ``"python"`` or ``"numpy"``.

    ``"python"`` forces the authoritative pure-Python kernels;
    ``"numpy"`` forces the accelerated kernels even below the size
    thresholds (differential tests use this); ``"auto"`` (the default)
    picks numpy when available and the input is large enough.  Forcing
    ``"numpy"`` without numpy installed raises ``ValueError`` so a
    misconfigured deployment fails loudly instead of silently running
    slow.  The ``REPRO_ACCEL=0`` kill switch overrides any choice.
    """
    global _backend
    if name not in ("auto", "python", "numpy"):
        raise ValueError(
            f"backend must be 'auto', 'python' or 'numpy', got {name!r}"
        )
    if name == "numpy" and not available():
        raise ValueError("backend 'numpy' requested but numpy is not installed")
    _backend = name


def enabled() -> bool:
    """Whether accelerated kernels may be selected at all right now."""
    if kill_switch_engaged() or _backend == "python":
        return False
    return available()


def backend_name() -> str:
    """The kernel layer answering large inputs: ``"numpy"`` or ``"python"``.

    This is the provenance string stamped into size/build reports and
    ``BENCH_*.json`` envelopes, so benchmark numbers always identify the
    layer that produced them.
    """
    return "numpy" if enabled() else "python"


def use_for_graph(num_vertices: int) -> bool:
    """Whether a graph kernel over ``num_vertices`` should take the numpy path."""
    if not enabled():
        return False
    return _backend == "numpy" or num_vertices >= MIN_VERTICES


def use_for_batch(batch_len: int) -> bool:
    """Whether a label probe over ``batch_len`` pairs should vectorize."""
    if not enabled():
        return False
    return _backend == "numpy" or batch_len >= MIN_BATCH


def backend_labels() -> dict[str, str]:
    """The backend identity as flat string labels for metric exposition.

    Named so it cannot collide with the :mod:`repro.accel.labels`
    submodule (importing that module would rebind a package attribute
    called ``labels``).  The OpenMetrics ``repro_accel_info`` gauge
    carries these, so every scrape records which kernel layer produced
    the latencies next to it.
    """
    numpy = _numpy()
    return {
        "backend": backend_name(),
        "selection": _backend,
        "kill_switch": "1" if kill_switch_engaged() else "0",
        "numpy_version": getattr(numpy, "__version__", None) or "absent",
    }


def describe() -> dict[str, object]:
    """A JSON-friendly status snapshot (the ``repro accel`` CLI payload)."""
    numpy = _numpy()
    return {
        "available": available(),
        "enabled": enabled(),
        "backend": backend_name(),
        "selection": _backend,
        "kill_switch": kill_switch_engaged(),
        "numpy_version": getattr(numpy, "__version__", None),
        "min_vertices": MIN_VERTICES,
        "min_batch": MIN_BATCH,
    }
