"""Vectorized 2-hop label probes for the PLL/DL/TOL/2-hop families.

The §3.2 query rule — ``s ⇝ t`` iff ``s = t``, ``s ∈ L_in(t)``,
``t ∈ L_out(s)``, or ``L_out(s) ∩ L_in(t) ≠ ∅`` — is a set
intersection per pair, which the pure-Python path answers with
``set.isdisjoint``.  For large batches this module flattens the label
sets into CSR-style hop arrays and answers *all pairs sharing a source*
in one pass: scatter ``L_out(s)`` into a boolean membership array, then
one fancy-indexed gather over the concatenated ``L_in`` segments of
every target plus one ``np.logical_or.reduceat`` decides every
intersection at once.  Work is Σ|L_in(t)| C-speed element ops per
distinct source, instead of a Python-level set probe per pair.
"""

from __future__ import annotations

from collections.abc import Sequence

try:
    import numpy as np
except ImportError:  # the pure-Python fallback never imports this module
    np = None

from repro.accel.arrays import gather_ranges

__all__ = ["LabelArrays"]


def _flatten(sets: list) -> tuple:
    """One label direction as ``(indptr, hops)`` flat int64 arrays."""
    n = len(sets)
    counts = np.fromiter((len(s) for s in sets), dtype=np.int64, count=n)
    total = int(counts.sum())
    hops = np.fromiter(
        (hop for entries in sets for hop in sorted(entries)),
        dtype=np.int64,
        count=total,
    )
    return np.concatenate(([0], np.cumsum(counts))), hops


class LabelArrays:
    """Flattened 2-hop labels with a batched coverage probe."""

    __slots__ = ("num_vertices", "out_indptr", "out_hops", "in_indptr", "in_hops")

    def __init__(self, l_in: list, l_out: list) -> None:
        self.num_vertices = len(l_in)
        self.in_indptr, self.in_hops = _flatten(l_in)
        self.out_indptr, self.out_hops = _flatten(l_out)

    def size_in_entries(self) -> int:
        """Σ |L_out(v)| + |L_in(v)| — must match the set representation."""
        return int(len(self.in_hops) + len(self.out_hops))

    def covered_many(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """The §3.2 rule over a batch, vectorized per distinct source."""
        answers: list[bool] = [False] * len(pairs)
        by_source: dict[int, list[int]] = {}
        for position, (s, _t) in enumerate(pairs):
            by_source.setdefault(s, []).append(position)
        member = np.zeros(self.num_vertices, dtype=bool)
        in_indptr = self.in_indptr
        in_hops = self.in_hops
        for s, positions in by_source.items():
            out_segment = self.out_hops[self.out_indptr[s] : self.out_indptr[s + 1]]
            member[out_segment] = True
            targets = np.fromiter(
                (pairs[p][1] for p in positions),
                dtype=np.int64,
                count=len(positions),
            )
            # s == t, t ∈ L_out(s)
            hit = (targets == s) | member[targets]
            # s ∈ L_in(t) or L_out(s) ∩ L_in(t): one gather over the
            # concatenated L_in segments, one reduceat back to targets.
            counts = in_indptr[targets + 1] - in_indptr[targets]
            nonempty = counts > 0
            if nonempty.any():
                gathered = gather_ranges(in_indptr, in_hops, targets)
                entry_hits = member[gathered] | (gathered == s)
                bounds = np.concatenate(([0], np.cumsum(counts)[:-1]))
                hit[nonempty] |= np.logical_or.reduceat(
                    entry_hits, bounds[nonempty]
                )
            for position, answer in zip(positions, hit.tolist()):
                answers[position] = answer
            member[out_segment] = False
        return answers
